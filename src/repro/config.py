"""Configuration dataclasses shared across the GIANT reproduction.

Every stochastic component in the library accepts either an explicit
``numpy.random.Generator`` or an integer seed.  The helpers here centralise
seed handling so that a whole pipeline run is reproducible from a single
integer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .errors import ConfigError


def make_rng(seed_or_rng: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from a seed, generator, or None."""
    if seed_or_rng is None:
        return np.random.default_rng()
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    if isinstance(seed_or_rng, (int, np.integer)):
        return np.random.default_rng(int(seed_or_rng))
    raise ConfigError(f"expected int seed or numpy Generator, got {type(seed_or_rng)!r}")


@dataclass
class MiningConfig:
    """Parameters for attention-phrase mining (paper Section 3.1).

    Attributes:
        visit_threshold: minimum random-walk visiting probability ``delta_v``
            for a query/document to stay in a query-doc cluster.
        walk_steps: number of random-walk propagation rounds.
        restart_prob: restart probability of the random walk.
        max_cluster_queries: cap on queries kept per cluster.
        max_cluster_docs: cap on documents kept per cluster.
        merge_threshold: TF-IDF similarity threshold ``delta_m`` for merging
            near-duplicate attention phrases during normalization.
        event_min_len: minimum subtitle length ``L_l`` (tokens) for event
            candidates (paper uses 6 characters for Chinese; we use tokens).
        event_max_len: maximum subtitle length ``L_h``.
    """

    visit_threshold: float = 0.02
    walk_steps: int = 4
    restart_prob: float = 0.15
    max_cluster_queries: int = 10
    max_cluster_docs: int = 10
    merge_threshold: float = 0.6
    event_min_len: int = 3
    event_max_len: int = 20

    def validate(self) -> None:
        if not 0.0 < self.visit_threshold < 1.0:
            raise ConfigError("visit_threshold must be in (0, 1)")
        if not 0.0 <= self.restart_prob < 1.0:
            raise ConfigError("restart_prob must be in [0, 1)")
        if self.event_min_len > self.event_max_len:
            raise ConfigError("event_min_len must be <= event_max_len")
        if self.walk_steps < 1:
            raise ConfigError("walk_steps must be >= 1")


@dataclass
class LinkingConfig:
    """Parameters for attention-phrase linking (paper Section 3.2).

    Attributes:
        category_threshold: ``delta_g`` — minimum P(category | phrase) for an
            attention-category isA edge (paper: 0.3).
        correlate_distance: maximum Euclidean distance between entity
            embeddings for a correlate edge.
        embedding_dim: dimensionality of entity co-occurrence embeddings.
        hinge_margin: margin of the hinge loss for entity embeddings.
        min_cooccurrence: minimum co-occurrence count for a positive
            entity pair.
    """

    category_threshold: float = 0.3
    correlate_distance: float = 1.0
    embedding_dim: int = 16
    hinge_margin: float = 1.0
    min_cooccurrence: int = 2

    def validate(self) -> None:
        if not 0.0 < self.category_threshold <= 1.0:
            raise ConfigError("category_threshold must be in (0, 1]")
        if self.embedding_dim < 2:
            raise ConfigError("embedding_dim must be >= 2")


@dataclass
class GCTSPConfig:
    """Hyper-parameters of the GCTSP-Net (paper Section 5.2).

    Defaults follow the paper: 5-layer R-GCN, hidden size 32, B=5 bases.
    """

    num_layers: int = 5
    hidden_size: int = 32
    num_bases: int = 5
    learning_rate: float = 0.01
    epochs: int = 30
    l2: float = 1e-4
    seed: int = 0

    def validate(self) -> None:
        if self.num_layers < 1:
            raise ConfigError("num_layers must be >= 1")
        if self.hidden_size < 1:
            raise ConfigError("hidden_size must be >= 1")
        if self.num_bases < 1:
            raise ConfigError("num_bases must be >= 1")


@dataclass
class GiantConfig:
    """Top-level configuration bundling all pipeline stages."""

    mining: MiningConfig = field(default_factory=MiningConfig)
    linking: LinkingConfig = field(default_factory=LinkingConfig)
    gctsp: GCTSPConfig = field(default_factory=GCTSPConfig)
    seed: int = 0

    def validate(self) -> None:
        self.mining.validate()
        self.linking.validate()
        self.gctsp.validate()
