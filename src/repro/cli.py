"""Command-line interface for the GIANT reproduction.

Subcommands::

    python -m repro.cli build    --days 4 --out ontology.json
    python -m repro.cli build    --days 4 --out ontology.json \
                                 --log-dir ./delta-log
    python -m repro.cli stats    --ontology ontology.json
    python -m repro.cli tag      --ontology ontology.json --title "..." --body "..."
    python -m repro.cli query    --ontology ontology.json --q "best economy cars"
    python -m repro.cli showcase --ontology ontology.json
    python -m repro.cli serve    --ontology ontology.json --shards 4 \
                                 --q "best economy cars" --compare
    python -m repro.cli serve    --from-log ./delta-log --shards 4 --compare
    python -m repro.cli serve    --from-log ./delta-log --remote-shards 2 \
                                 --q "best economy cars" --compare
    python -m repro.cli serve    --from-log ./delta-log --shards 2 \
                                 --rebalance-to 4 --compare
    python -m repro.cli serve    --ontology ontology.json --shards 4 \
                                 --listen 127.0.0.1:8750

``build`` generates a synthetic world, trains a small GCTSP-Net, runs the
full pipeline and writes the ontology JSON; with ``--log-dir`` it also
appends the run's delta stream to a durable replicated log (and lets the
snapshot catalog compact it).  The other commands operate on a saved
ontology — or, for ``serve``, on a delta log directory (``--from-log``):
the serving store is then bootstrapped from catalog snapshot + log tail,
and ``--remote-shards N`` runs the cluster's shards in follower-fed
worker processes behind RPC.  Entities for NER are reconstructed from
the ontology's entity nodes, so a saved ontology (or log) is
self-sufficient.
"""

from __future__ import annotations

import argparse
import os
import sys

from .apps.query import QueryUnderstander
from .apps.tagging import DocumentTagger
from .config import GCTSPConfig
from .core.ontology import NodeType
from .core.serialize import load_ontology, save_ontology
from .text.ner import NerTagger
from .text.tokenizer import tokenize


def _build(args: argparse.Namespace) -> int:
    from .core.features import NodeFeatureExtractor
    from .core.gctsp import GCTSPNet, prepare_example
    from .datasets import build_cmd, split_dataset
    from .pipeline import GiantPipeline
    from .synth.querylog import QueryLogGenerator, build_click_graph
    from .synth.world import WorldConfig, build_world
    from .text.dependency import DependencyParser

    world = build_world(WorldConfig(num_days=args.days, seed=args.seed,
                                    num_extra_domains=args.extra_domains))
    days = QueryLogGenerator(world).generate_days()
    graph = build_click_graph(days)
    sessions = [s for d in days for s in d.sessions]
    pos, ner = world.register_text_models()

    model = None
    if args.train:
        extractor = NodeFeatureExtractor(pos, ner)
        parser = DependencyParser(pos)
        cmd = build_cmd(world, examples_per_concept=2)
        train, _dev, _test = split_dataset(cmd)
        examples = [
            prepare_example(e.queries, e.titles, extractor, parser,
                            gold_tokens=e.gold_tokens)
            for e in train[:60]
        ]
        model = GCTSPNet(GCTSPConfig(num_layers=3, hidden_size=24,
                                     num_bases=4, epochs=args.epochs))
        model.fit(examples)

    pipeline = GiantPipeline(
        graph, pos, ner, concept_model=model,
        categories=sorted({c[2] for c in world.categories}),
    )
    ontology = pipeline.run(sessions=sessions)
    save_ontology(ontology, args.out)
    print(f"wrote {args.out}: {ontology.stats()}")
    if args.log_dir:
        from .errors import DeltaGapError, OntologyError
        from .replication import DeltaLog, SnapshotCatalog

        try:
            with DeltaLog(args.log_dir,
                          segment_max_bytes=args.log_segment_bytes,
                          fsync=args.fsync) as log:
                appended = log.extend(pipeline.deltas)
                catalog = SnapshotCatalog(
                    log, compact_bytes=args.compact_bytes,
                    snapshot_format=args.snapshot_format)
                compacted = catalog.maybe_compact(ontology.store)
                print(f"log {args.log_dir}: +{appended} deltas, versions "
                      f"{log.first_version}..{log.last_version} in "
                      f"{len(log.segments())} segment(s)"
                      + (f"; compacted at v{compacted}" if compacted
                         else f"; snapshot at v{catalog.latest_version}"))
        except (DeltaGapError, OntologyError) as exc:
            # Typically: --log-dir points at a log holding a different
            # build's stream. The ontology JSON was already written.
            print(f"delta log error: {exc}", file=sys.stderr)
            return 1
    return 0


def _load_with_ner(path: str):
    ontology = load_ontology(path)
    ner = NerTagger()
    for node in ontology.nodes(NodeType.ENTITY):
        ner.register(node.phrase, "MISC")
    return ontology, ner


def _format_metric(value) -> str:
    if isinstance(value, dict):  # a histogram's snapshot state
        return (f"count={value.get('count', 0)} "
                f"avg={value.get('avg', 0.0):.6g} "
                f"p50={value.get('p50', 0.0):.6g} "
                f"p95={value.get('p95', 0.0):.6g} "
                f"p99={value.get('p99', 0.0):.6g} "
                f"max={value.get('max', 0.0):.6g}")
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _print_obs_status(status: dict) -> None:
    tracer = status.get("tracer") or {}
    print(f"tracer: enabled={tracer.get('enabled')} "
          f"process={tracer.get('process')} "
          f"trace_dir={tracer.get('trace_dir')} "
          f"spans_written={tracer.get('spans_written')}")
    views = status.get("views")
    if views:
        print(f"views: registered={views.get('views')} "
              f"version={views.get('version')} "
              f"deltas_folded={views.get('deltas_folded')} "
              f"rows_folded={views.get('rows_folded')} "
              f"rehydrations={views.get('rehydrations')} "
              f"stale={views.get('stale')} "
              f"maintain_p95={views.get('maintain_p95'):.6g}")
    print("metrics:")
    for name, value in sorted((status.get("metrics") or {}).items()):
        print(f"  {name:52s} {_format_metric(value)}")
    shards = (status.get("backend") or {}).get("shards") or []
    for shard in shards:
        worker_tracer = shard.get("tracer") or {}
        print(f"shard worker {worker_tracer.get('process')}: "
              f"spans_written={worker_tracer.get('spans_written')}")
        for name, value in sorted((shard.get("metrics") or {}).items()):
            print(f"  {name:52s} {_format_metric(value)}")


def _stats_connect(args: argparse.Namespace) -> int:
    """Fetch a live server's ``obs_status`` over RPC and pretty-print
    its registry snapshot (counters, gauges, latency percentiles) —
    or emit the raw payload with ``--json`` for scripts/dashboards."""
    import asyncio
    import json

    from .serving.rpc import RpcClient

    address = _parse_listen(args.connect)
    if address is None:
        print(f"--connect expects HOST:PORT, got {args.connect!r}",
              file=sys.stderr)
        return 2

    async def _run() -> dict:
        client = await RpcClient.connect(*address)
        try:
            return await client.call("obs_status")
        finally:
            await client.close()

    status = asyncio.run(_run())
    if getattr(args, "json", False):
        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        _print_obs_status(status)
    return 0


def _stats(args: argparse.Namespace) -> int:
    if bool(args.ontology) == bool(args.connect):
        print("pass exactly one of --ontology / --connect",
              file=sys.stderr)
        return 2
    if args.connect:
        return _stats_connect(args)
    ontology, _ner = _load_with_ner(args.ontology)
    for key, value in ontology.stats().items():
        print(f"{key:12s} {value}")
    return 0


def _print_watch(watch: dict) -> None:
    """One ``obs_watch`` frame: collector/recorder summaries, SLO
    verdicts, and the latest value of every derived series."""
    collector = watch.get("collector")
    if collector is None:
        print("collector: not configured (serve with --collect-interval)")
    else:
        print(f"collector: interval={collector.get('interval')} "
              f"samples={collector.get('samples_taken')} "
              f"series={collector.get('series')} "
              f"last_sampled_at={collector.get('last_sampled_at')}")
    for verdict in watch.get("slo") or []:
        print(f"slo {verdict.get('slo', '?'):24s} {verdict.get('verdict')}")
    series = watch.get("series") or {}
    derived = {name: points for name, points in sorted(series.items())
               if name.rsplit(".", 1)[-1] in ("rate", "p50", "p95", "p99")
               and points}
    for name, points in derived.items():
        t, value = points[-1]
        print(f"  {name:52s} {value:.6g} (t={t:.3f}, {len(points)} pts)")
    recorder = watch.get("recorder") or {}
    print(f"recorder: events={recorder.get('events_recorded')} "
          f"held={recorder.get('events_held')} "
          f"anomalies={recorder.get('anomalies')} "
          f"dumps={recorder.get('dumps_written')} "
          f"last_dump={recorder.get('last_dump_path')}")


def _watch(args: argparse.Namespace) -> int:
    """Live telemetry view: poll a running server's ``obs_watch`` at a
    fixed interval, printing collector series tails, SLO burn-rate
    verdicts, and the flight-recorder summary each frame."""
    import asyncio
    import json

    from .serving.rpc import RpcClient

    address = _parse_listen(args.connect)
    if address is None:
        print(f"--connect expects HOST:PORT, got {args.connect!r}",
              file=sys.stderr)
        return 2

    async def _run() -> None:
        client = await RpcClient.connect(*address)
        frames = 0
        try:
            while True:
                watch = await client.call("obs_watch", points=args.points)
                if args.json:
                    print(json.dumps(watch, sort_keys=True))
                else:
                    if frames:
                        print()
                    _print_watch(watch)
                frames += 1
                if args.count and frames >= args.count:
                    return
                await asyncio.sleep(args.interval)
        finally:
            await client.close()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("watch stopped")
    return 0


def _tag(args: argparse.Namespace) -> int:
    ontology, ner = _load_with_ner(args.ontology)
    tagger = DocumentTagger(ontology, ner, coherence_threshold=args.threshold)
    title = tokenize(args.title)
    sentences = [tokenize(s) for s in args.body.split(".") if s.strip()]
    result = tagger.tag("cli-doc", title, sentences)
    print("concepts:", result.concepts[:5])
    print("events:  ", result.events[:5])
    print("topics:  ", result.topics[:5])
    return 0


def _query(args: argparse.Namespace) -> int:
    ontology, _ner = _load_with_ner(args.ontology)
    understander = QueryUnderstander(ontology)
    analysis = understander.analyze(args.q)
    print("concepts:       ", analysis.concepts[:3])
    print("entities:       ", analysis.entities[:3])
    print("rewrites:       ", analysis.rewrites)
    print("recommendations:", analysis.recommendations)
    return 0


def _parse_listen(listen: str) -> "tuple[str, int] | None":
    """``HOST:PORT`` -> (host, port), or None when malformed."""
    host, _, port_text = listen.rpartition(":")
    # isascii() guards against exotic "digits" like '²' that isdigit()
    # accepts but int() rejects; 0 means "bind an ephemeral port".
    if not host or not (port_text.isascii() and port_text.isdigit()):
        return None
    port = int(port_text)
    if port > 65535:
        return None
    return host, port


def _serve_rpc(backend, host: str, port: int,
               args: argparse.Namespace) -> int:
    """Put an async micro-batching front over ``backend`` behind RPC."""
    import asyncio

    from .serving.aio import AsyncOntologyService
    from .serving.rpc import RpcServer

    async def _run() -> None:
        async with AsyncOntologyService(
                backend, max_batch_size=args.max_batch_size,
                max_delay=args.max_delay) as service:
            server = RpcServer(service, host, port)
            bound_host, bound_port = await server.start()
            print(f"RPC serving on {bound_host}:{bound_port} "
                  f"(length-prefixed JSON; Ctrl-C to stop)")
            try:
                await server.serve_forever()
            finally:
                await server.close()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _load_from_log(log_dir: str, readonly: bool = True,
                   snapshot_format: str = "json"):
    """Bootstrap a serving ontology (and NER) from a delta log directory
    via snapshot + tail; returns (ontology, ner, log, catalog, snapshot,
    tail) so callers reuse the fetched halves instead of re-reading.

    The log is opened read-only by default: a serve process must never
    repair (or truncate) a directory a live builder may still be
    appending to.  ``--rebalance-to`` with remote shards needs to append
    the ring-epoch record, so that path opens the log writable — the
    serve process then *owns* the directory.
    """
    from .core.ontology import AttentionOntology
    from .core.store import OntologyStore
    from .replication import DeltaLog, SnapshotCatalog

    log = DeltaLog(log_dir, readonly=readonly)
    catalog = SnapshotCatalog(log, readonly=readonly,
                              snapshot_format=snapshot_format)
    snapshot, snap_version = catalog.latest()
    tail = log.read(snap_version if snapshot is not None else 0)
    store = OntologyStore.bootstrap(snapshot, tail)
    print(f"log {log_dir}: versions {log.first_version}.."
          f"{log.last_version}, snapshot at v{snap_version}; "
          f"bootstrapped store at v{store.version}")
    ontology = AttentionOntology(store=store)
    ner = NerTagger()
    for node in ontology.nodes(NodeType.ENTITY):
        ner.register(node.phrase, "MISC")
    return ontology, ner, log, catalog, snapshot, tail


def _serve(args: argparse.Namespace) -> int:
    """Shard an ontology (saved file or delta log) and serve requests
    scatter-gather — in-process, or with --remote-shards across worker
    processes follower-fed from the published log."""
    from .cluster import ClusterService
    from .serving import OntologyService

    # Validate the listen address up front: a malformed --listen should
    # fail fast, not after minutes of ontology load + shard bootstrap.
    address = None
    if args.listen:
        address = _parse_listen(args.listen)
        if address is None:
            print(f"--listen expects HOST:PORT, got {args.listen!r}",
                  file=sys.stderr)
            return 2
    if bool(args.ontology) == bool(args.from_log):
        print("pass exactly one of --ontology / --from-log",
              file=sys.stderr)
        return 2
    if args.remote_shards and not args.from_log:
        print("--remote-shards requires --from-log (shard workers "
              "bootstrap from the published delta log)", file=sys.stderr)
        return 2
    if args.wire == "binary" and not args.remote_shards:
        print("--wire binary applies to the remote shard-read RPC; "
              "add --remote-shards N", file=sys.stderr)
        return 2

    if args.trace_dir:
        from .obs import TRACE_DIR_ENV, configure_tracer

        # Env first, so spawned shard workers inherit the span-log dir;
        # then this process's own tracer (spans land in spans-serve.jsonl).
        os.environ[TRACE_DIR_ENV] = args.trace_dir
        configure_tracer(args.trace_dir, process="serve")
        print(f"tracing spans to {args.trace_dir}")

    from .obs import RECORDER_DIR_ENV, configure_recorder

    if args.recorder_dir:
        # Same env-first rule as the tracer: spawned shard workers
        # inherit the dump directory, so a worker anomaly lands next to
        # the parent's flight-<serve>-*.jsonl dumps.
        os.environ[RECORDER_DIR_ENV] = args.recorder_dir
        print(f"flight-recorder dumps to {args.recorder_dir}")
    configure_recorder(args.recorder_dir or None, process="serve",
                       slow_call_seconds=args.slow_call)

    collector = None
    if args.collect_interval > 0:
        from .obs import (
            configure_collector,
            configure_slo_engine,
            default_slos,
        )

        collector = configure_collector(interval=args.collect_interval)
        configure_slo_engine(collector, default_slos())
        collector.start()
        print(f"collecting metrics every {args.collect_interval}s")

    tagger_options = {"coherence_threshold": args.threshold}
    publisher = None
    log = catalog = snapshot = None
    tail = []
    if args.from_log:
        # A remote rebalance appends the ring-epoch record to the log,
        # so that combination opens it writable (this process must own
        # the directory); every other path stays read-only.
        writable = bool(args.remote_shards and args.rebalance_to)
        ontology, ner, log, catalog, snapshot, tail = \
            _load_from_log(args.from_log, readonly=not writable,
                           snapshot_format=args.snapshot_format)
    else:
        ontology, ner = _load_with_ner(args.ontology)

    cluster = None
    try:
        if args.remote_shards:
            from .cluster import RemoteClusterService
            from .replication import PublisherThread

            publisher = PublisherThread(log, catalog)
            host, port = publisher.start()
            print(f"publisher on {host}:{port}; starting "
                  f"{args.remote_shards} shard worker process(es)")
            cluster = RemoteClusterService((host, port),
                                           num_shards=args.remote_shards,
                                           ner=ner,
                                           tagger_options=tagger_options,
                                           wire=args.wire,
                                           trace_dir=args.trace_dir or None,
                                           recorder_dir=args.recorder_dir
                                           or None)
        elif args.from_log:
            cluster = ClusterService(num_shards=args.shards, ner=ner,
                                     tagger_options=tagger_options,
                                     snapshot=snapshot, deltas=tail)
        else:
            cluster = ClusterService(num_shards=args.shards, ner=ner,
                                     tagger_options=tagger_options,
                                     ontology=ontology)

        if args.rebalance_to:
            if args.remote_shards:
                delta = cluster.rebalance(args.rebalance_to,
                                          publish=publisher.publish)
            else:
                delta = cluster.rebalance(args.rebalance_to)
                if delta is not None:
                    # Keep the --compare oracle's version line aligned
                    # with the cluster (the ring op changes no content).
                    ontology.store.apply_delta(delta)
            moved = cluster.last_rebalance or {}
            print(f"rebalanced to {cluster.num_shards} shards (ring epoch "
                  f"{moved.get('epoch')}): moved "
                  f"{moved.get('moved_nodes')} node records")

        stats = cluster.stats()
        mode = "remote worker" if args.remote_shards else "in-process"
        # The log's recorded ring epoch is authoritative over --shards/
        # --remote-shards, so report the cluster's actual count.
        print(f"cluster: {cluster.num_shards} {mode} shards at stream "
              f"version {cluster.version}")
        for line in stats["shards"]:
            print(f"  shard {line['shard']}: owned={line['owned']} "
                  f"ghosts={line['ghosts']} version={line['version']}")
        print("ontology:", stats["ontology"])

        queries = args.q or []
        if not queries:
            # No queries given: interpret one per sampled concept phrase.
            queries = [f"best {node.phrase}"
                       for node in ontology.nodes(NodeType.CONCEPT)[:3]]
        analyses = cluster.interpret_queries(queries)
        for analysis in analyses:
            print(f"query {analysis.query!r}: "
                  f"concepts={analysis.concepts[:2]} "
                  f"rewrites={analysis.rewrites[:2]}")

        tagged = None
        request = None
        if args.title:
            title = tokenize(args.title)
            sentences = [tokenize(s) for s in args.body.split(".")
                         if s.strip()]
            request = ("cli-doc", title, sentences)
            [tagged] = cluster.tag_documents([request])
            print("tag concepts:", tagged.concepts[:5])
            print("tag events:  ", tagged.events[:5])

        if args.compare:
            single = OntologyService(ontology, ner=ner,
                                     tagger_options=tagger_options)
            mismatch = single.interpret_queries(queries) != analyses
            if request is not None:
                [direct] = single.tag_documents([request])
                mismatch = mismatch or direct != tagged
            if mismatch:
                print("compare: MISMATCH between cluster and single store")
                return 1
            print("compare: cluster results identical to single store")

        # Last, so --q/--compare still run (and a failed compare refuses
        # to serve) before the cluster goes behind the socket.
        if address is not None:
            return _serve_rpc(cluster, address[0], address[1], args)
        return 0
    finally:
        if collector is not None:
            collector.stop()
        if args.remote_shards and cluster is not None:
            cluster.close()
        if publisher is not None:
            publisher.stop()
        if log is not None:
            log.close()


def _showcase(args: argparse.Namespace) -> int:
    ontology, _ner = _load_with_ner(args.ontology)
    print("== concepts ==")
    for node in ontology.nodes(NodeType.CONCEPT)[: args.limit]:
        instances = [e.phrase for e in ontology.entities_of_concept(node.phrase)]
        print(f"  {node.phrase!r} -> {instances[:4]}")
    print("== topics ==")
    for node in ontology.nodes(NodeType.TOPIC)[: args.limit]:
        print(f"  {node.phrase!r}")
    return 0


def _audit(args: argparse.Namespace) -> int:
    import json
    import pathlib
    import tempfile

    from .audit import generate_schedule, replay_artifact, run_campaign

    if args.connect:
        return _audit_connect(args)
    if args.replay:
        if args.log_dir:
            report = replay_artifact(args.replay, args.log_dir)
        else:
            with tempfile.TemporaryDirectory(prefix="repro-audit-") as tmp:
                report = replay_artifact(args.replay,
                                         pathlib.Path(tmp) / "log")
    else:
        schedule = generate_schedule(
            seed=args.seed, steps=args.steps, start_shards=args.shards,
            rebalance_to=args.rebalance_to, chunk_nodes=args.chunk_nodes,
            sessions=args.sessions)
        if args.log_dir:
            report = run_campaign(schedule, args.log_dir, wire=args.wire)
        else:
            with tempfile.TemporaryDirectory(prefix="repro-audit-") as tmp:
                report = run_campaign(schedule, pathlib.Path(tmp) / "log",
                                      wire=args.wire)
    if args.json:
        print(json.dumps(report, indent=1, sort_keys=True))
    else:
        rebalance = report.get("rebalance") or {}
        latencies = sorted(
            rebalance.get("interleaved_read_latencies") or [])
        print(f"campaign seed={report.get('seed')}: "
              f"{report['ops']} ops, {report['reads']} reads, "
              f"{report['writes']} writes, "
              f"{len(report['faults'])} faults, "
              f"final version {report['final_version']}")
        if latencies:
            p99 = latencies[min(len(latencies) - 1,
                                int(len(latencies) * 0.99))]
            print(f"rebalance: {rebalance.get('transfer_chunks')} chunks "
                  f"of <= {rebalance.get('chunk_nodes')} nodes, "
                  f"{len(latencies)} interleaved reads, "
                  f"p99 {p99 * 1000:.2f} ms")
        for violation in report["violations"]:
            print(f"VIOLATION [{violation['kind']}] session "
                  f"{violation['session']} {violation['method']} "
                  f"@v{violation['version']}: {violation['detail']}")
        if report.get("artifact"):
            print(f"artifact: {report['artifact']}")
    return 1 if report["violations"] else 0


def _audit_connect(args: argparse.Namespace) -> int:
    """Stamped probe sessions against an already-running ``serve
    --listen`` process.  Without the server's delta log there is no
    oracle, so only the session-local guarantees (stamp presence,
    session echo, monotonic reads) are checkable here — the full
    value-level audit needs ``--campaign``'s self-hosted topology."""
    import asyncio

    from .serving.rpc import RpcClient

    address = _parse_listen(args.connect)
    if address is None:
        print(f"malformed --connect {args.connect!r} (want HOST:PORT)")
        return 2
    queries = args.q or ["audit probe query"]

    async def probe() -> "tuple[int, int]":
        clients: dict = {}
        last: dict = {}
        observed = violations = 0
        try:
            for _ in range(args.rounds):
                for index in range(args.sessions):
                    session = f"cli-{index}"
                    client = clients.get(session)
                    if client is None:
                        client = await RpcClient.connect(*address)
                        clients[session] = client
                    _result, stamp = await client.call_stamped(
                        "interpret_queries", queries, session=session)
                    observed += 1
                    if stamp is None or "version" not in stamp:
                        violations += 1
                        print(f"VIOLATION [unstamped] session {session}")
                        continue
                    version = int(stamp["version"])
                    if stamp.get("session") != session:
                        violations += 1
                        print(f"VIOLATION [session-mismatch] session "
                              f"{session} echoed {stamp.get('session')!r}")
                    previous = last.get(session)
                    if previous is not None and version < previous:
                        violations += 1
                        print(f"VIOLATION [monotonic-reads] session "
                              f"{session}: {previous} -> {version}")
                    last[session] = max(version, previous or 0)
        finally:
            for client in clients.values():
                await client.close()
        return observed, violations

    observed, violations = asyncio.run(probe())
    print(f"probed {observed} stamped reads over {args.sessions} "
          f"session(s): {violations} violation(s)")
    return 1 if violations else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser("build", help="build an ontology from synthetic logs")
    p_build.add_argument("--days", type=int, default=4)
    p_build.add_argument("--seed", type=int, default=0)
    p_build.add_argument("--extra-domains", type=int, default=0)
    p_build.add_argument("--epochs", type=int, default=8)
    p_build.add_argument("--train", action="store_true",
                         help="train a GCTSP-Net (otherwise alignment fallback)")
    p_build.add_argument("--out", default="ontology.json")
    p_build.add_argument("--log-dir", default="",
                         help="append the run's delta stream to a durable "
                              "replicated log at this directory")
    p_build.add_argument("--log-segment-bytes", type=int, default=1 << 20,
                         help="segment roll size for --log-dir")
    p_build.add_argument("--compact-bytes", type=int, default=256 * 1024,
                         help="un-folded log bytes that trigger snapshot "
                              "compaction for --log-dir")
    p_build.add_argument("--fsync", action="store_true",
                         help="fsync every log append (power-loss "
                              "durability)")
    p_build.add_argument("--snapshot-format", choices=["json", "columnar"],
                         default="json",
                         help="encoding for --log-dir catalog snapshots: "
                              "human-inspectable JSON (default) or packed "
                              "columnar segments")
    p_build.set_defaults(func=_build)

    p_stats = sub.add_parser(
        "stats", help="print node/edge counts, or a live server's "
                      "telemetry with --connect")
    p_stats.add_argument("--ontology", default="",
                         help="saved ontology JSON to summarize")
    p_stats.add_argument("--connect", default="",
                         help="HOST:PORT of a running `serve --listen` "
                              "process — fetch and pretty-print its "
                              "obs_status registry snapshot instead")
    p_stats.add_argument("--json", action="store_true",
                         help="with --connect: print the raw obs_status "
                              "payload as JSON (machine-readable)")
    p_stats.set_defaults(func=_stats)

    p_watch = sub.add_parser(
        "watch", help="live telemetry: poll a running server's obs_watch "
                      "(collector series, SLO verdicts, flight recorder)")
    p_watch.add_argument("--connect", required=True,
                         help="HOST:PORT of a running `serve --listen` "
                              "process")
    p_watch.add_argument("--interval", type=float, default=2.0,
                         help="seconds between polls")
    p_watch.add_argument("--count", type=int, default=0,
                         help="stop after N frames (0 = until Ctrl-C)")
    p_watch.add_argument("--points", type=int, default=30,
                         help="series tail length per frame")
    p_watch.add_argument("--json", action="store_true",
                         help="one JSON obs_watch payload per line "
                              "instead of the pretty view")
    p_watch.set_defaults(func=_watch)

    p_tag = sub.add_parser("tag", help="tag a document")
    p_tag.add_argument("--ontology", required=True)
    p_tag.add_argument("--title", required=True)
    p_tag.add_argument("--body", default="")
    p_tag.add_argument("--threshold", type=float, default=0.02)
    p_tag.set_defaults(func=_tag)

    p_query = sub.add_parser("query", help="analyze a search query")
    p_query.add_argument("--ontology", required=True)
    p_query.add_argument("--q", required=True)
    p_query.set_defaults(func=_query)

    p_serve = sub.add_parser(
        "serve", help="shard an ontology and serve scatter-gather requests")
    p_serve.add_argument("--ontology", default="",
                         help="saved ontology JSON (or use --from-log)")
    p_serve.add_argument("--from-log", default="",
                         help="bootstrap the serving store from a delta "
                              "log directory (catalog snapshot + tail)")
    p_serve.add_argument("--remote-shards", type=int, default=0,
                         help="run N shards in worker processes follower-"
                              "fed from the published log (needs "
                              "--from-log)")
    p_serve.add_argument("--shards", type=int, default=4)
    p_serve.add_argument("--rebalance-to", type=int, default=0,
                         help="grow/shrink the cluster to N shards via a "
                              "consistent-hash ring-epoch flip before "
                              "serving (with --remote-shards the ring "
                              "record is appended to the log, so this "
                              "process must own the log directory)")
    p_serve.add_argument("--q", action="append",
                         help="query to interpret (repeatable)")
    p_serve.add_argument("--title", default="",
                         help="optional document title to tag")
    p_serve.add_argument("--body", default="")
    p_serve.add_argument("--threshold", type=float, default=0.02)
    p_serve.add_argument("--compare", action="store_true",
                         help="verify cluster output against a single store")
    p_serve.add_argument("--listen", default="",
                         help="HOST:PORT — serve the cluster over the "
                              "length-prefixed JSON RPC protocol (async "
                              "micro-batched front) instead of exiting")
    p_serve.add_argument("--max-batch-size", type=int, default=32,
                         help="micro-batcher flush size for --listen")
    p_serve.add_argument("--max-delay", type=float, default=0.005,
                         help="micro-batcher flush deadline (seconds)")
    p_serve.add_argument("--wire", choices=["json", "binary"],
                         default="json",
                         help="shard-read response encoding for "
                              "--remote-shards workers: JSON (default) or "
                              "negotiated packed-binary frames "
                              "(byte-identical results, lower codec cost)")
    p_serve.add_argument("--snapshot-format", choices=["json", "columnar"],
                         default="json",
                         help="encoding for any snapshot this process "
                              "records to the --from-log catalog")
    p_serve.add_argument("--trace-dir", default="",
                         help="append request spans to JSON-lines logs "
                              "in this directory (the whole process "
                              "tree: server, batcher, shard workers); "
                              "export with repro.obs.write_chrome_trace")
    p_serve.add_argument("--collect-interval", type=float, default=0.0,
                         help="sample the metrics registry into in-memory "
                              "time series every N seconds (enables the "
                              "obs_watch RPC's series and SLO verdicts; "
                              "0 disables collection)")
    p_serve.add_argument("--recorder-dir", default="",
                         help="dump flight-recorder anomaly rings as "
                              "JSON-lines files in this directory (the "
                              "whole process tree, like --trace-dir)")
    p_serve.add_argument("--slow-call", type=float, default=0.5,
                         help="seconds above which an RPC dispatch or a "
                              "scatter straggler is recorded as a "
                              "slow-call anomaly")
    p_serve.set_defaults(func=_serve)

    p_audit = sub.add_parser(
        "audit", help="online consistency audit: run a seeded fault-"
                      "injection campaign against a self-hosted cluster, "
                      "or stamped monotonic probes against --connect")
    p_audit.add_argument("--connect", default="",
                         help="HOST:PORT of a running `serve --listen` "
                              "process — stamped probe sessions checking "
                              "the session-local guarantees only (no log "
                              "access, so no value oracle)")
    p_audit.add_argument("--replay", default="",
                         help="violation artifact JSON to re-run (the "
                              "shrink loop) instead of generating a "
                              "schedule")
    p_audit.add_argument("--seed", type=int, default=0)
    p_audit.add_argument("--steps", type=int, default=18,
                         help="traffic volume knob for the generated "
                              "schedule")
    p_audit.add_argument("--shards", type=int, default=2,
                         help="shard workers the campaign topology starts "
                              "with")
    p_audit.add_argument("--rebalance-to", type=int, default=3,
                         help="target size of the mid-traffic chunked "
                              "rebalance")
    p_audit.add_argument("--chunk-nodes", type=int, default=2,
                         help="max nodes per transfer chunk during the "
                              "staged rebalance")
    p_audit.add_argument("--sessions", type=int, default=3,
                         help="concurrent client sessions")
    p_audit.add_argument("--rounds", type=int, default=5,
                         help="with --connect: probe rounds per session")
    p_audit.add_argument("--q", action="append",
                         help="with --connect: probe query (repeatable)")
    p_audit.add_argument("--log-dir", default="",
                         help="directory for the campaign's delta log "
                              "(default: a temporary directory)")
    p_audit.add_argument("--wire", choices=["json", "binary"],
                         default="json",
                         help="shard-read response encoding in the "
                              "campaign topology")
    p_audit.add_argument("--json", action="store_true",
                         help="print the full campaign report as JSON")
    p_audit.set_defaults(func=_audit)

    p_show = sub.add_parser("showcase", help="print sample concepts/topics")
    p_show.add_argument("--ontology", required=True)
    p_show.add_argument("--limit", type=int, default=10)
    p_show.set_defaults(func=_showcase)

    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
