"""Rule-based dependency parser.

QTIG construction (paper Algorithm 2) adds a typed, bi-directional edge for
every syntactic dependency between non-adjacent tokens.  The production
system uses a full statistical parser; the GIANT algorithms only need arcs
that are *consistent* across queries and titles so that shared structure
(e.g. the compound "hayao miyazaki ... film") is visible to the R-GCN.

This parser is a deterministic head-finding algorithm over POS tags:

* noun phrases: maximal DET/ADJ/NUM/NOUN/PROPN runs; the last noun-like
  token is the NP head; earlier tokens attach to it (det / amod / nummod /
  compound).
* verbs: the first verb is the sentence root; the NP head immediately left
  of a verb attaches as nsubj, the first NP head right of it as dobj.
* adpositions: attach to the following NP head (case); that NP head attaches
  to the preceding head as nmod.
* punctuation attaches to the root.

Arc labels: det amod nummod compound nsubj dobj case nmod advmod punct dep.
"""

from __future__ import annotations

from dataclasses import dataclass

from .pos import PosTagger

DEP_LABELS: tuple[str, ...] = (
    "det",
    "amod",
    "nummod",
    "compound",
    "nsubj",
    "dobj",
    "case",
    "nmod",
    "advmod",
    "punct",
    "dep",
    "root",
)

_NOMINAL = {"NOUN", "PROPN", "PRON"}
_NP_MEMBER = {"DET", "ADJ", "NUM", "NOUN", "PROPN"}


@dataclass(frozen=True)
class DependencyArc:
    """A directed dependency arc ``head -> dependent`` with a label."""

    head: int
    dependent: int
    label: str


class DependencyParser:
    """Deterministic dependency parser built on :class:`PosTagger` output."""

    def __init__(self, pos_tagger: "PosTagger | None" = None) -> None:
        self._pos = pos_tagger or PosTagger()

    @property
    def pos_tagger(self) -> PosTagger:
        return self._pos

    def parse(self, tokens: list[str], tags: "list[str] | None" = None) -> list[DependencyArc]:
        """Parse ``tokens`` and return the arc list.

        Args:
            tokens: token strings.
            tags: optional pre-computed POS tags (must align with tokens).
        """
        n = len(tokens)
        if n == 0:
            return []
        if tags is None:
            tags = self._pos.tag(tokens)
        if len(tags) != n:
            raise ValueError("tags must align with tokens")

        heads: list[int] = [-1] * n  # head index per token, -1 = unattached
        labels: list[str] = ["dep"] * n

        np_head_of: list[int] = [-1] * n  # for each token, head of its NP
        np_heads: list[int] = []

        # Pass 1: find noun phrases and attach internal modifiers.
        i = 0
        while i < n:
            if tags[i] in _NP_MEMBER:
                j = i
                while j + 1 < n and tags[j + 1] in _NP_MEMBER:
                    j += 1
                # Head = last nominal token in the run, else last token.
                head = j
                for k in range(j, i - 1, -1):
                    if tags[k] in _NOMINAL:
                        head = k
                        break
                for k in range(i, j + 1):
                    np_head_of[k] = head
                    if k == head:
                        continue
                    heads[k] = head
                    if tags[k] == "DET":
                        labels[k] = "det"
                    elif tags[k] == "ADJ":
                        labels[k] = "amod"
                    elif tags[k] == "NUM":
                        labels[k] = "nummod"
                    else:
                        labels[k] = "compound"
                np_heads.append(head)
                i = j + 1
            else:
                i += 1

        # Pass 2: pick the root (first verb, else first NP head, else token 0).
        root = next((k for k in range(n) if tags[k] == "VERB"), -1)
        if root == -1:
            root = np_heads[0] if np_heads else 0
        heads[root] = root
        labels[root] = "root"

        # Pass 3: verb arguments.
        for k in range(n):
            if tags[k] != "VERB":
                continue
            if k != root and heads[k] == -1:
                heads[k] = root
                labels[k] = "dep"
            left = next((h for h in reversed(np_heads) if h < k), None)
            if left is not None and heads[left] == -1:
                heads[left] = k
                labels[left] = "nsubj"
            right = next((h for h in np_heads if h > k), None)
            if right is not None and heads[right] == -1:
                heads[right] = k
                labels[right] = "dobj"

        # Pass 4: adpositions and their objects.
        for k in range(n):
            if tags[k] == "ADP":
                obj = next((h for h in np_heads if h > k), None)
                if obj is not None:
                    heads[k] = obj
                    labels[k] = "case"
                    if heads[obj] == -1:
                        prev = next((h for h in reversed(np_heads) if h < k), None)
                        if prev is not None:
                            heads[obj] = prev
                            labels[obj] = "nmod"

        # Pass 5: adverbs attach to nearest verb (else root); leftovers to root.
        for k in range(n):
            if heads[k] != -1:
                continue
            if tags[k] == "ADV":
                verb = min(
                    (v for v in range(n) if tags[v] == "VERB"),
                    key=lambda v: abs(v - k),
                    default=root,
                )
                heads[k] = verb
                labels[k] = "advmod"
            elif tags[k] == "PUNCT":
                heads[k] = root
                labels[k] = "punct"
            else:
                heads[k] = root
                labels[k] = "dep"

        return [
            DependencyArc(heads[k], k, labels[k])
            for k in range(n)
            if k != root and heads[k] != -1
        ]
