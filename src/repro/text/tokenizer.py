"""Deterministic word tokenizer.

Queries and titles in the synthetic click logs are whitespace-delimited
English-style text.  The tokenizer lower-cases, splits punctuation into
separate tokens and preserves intra-word hyphens (``fuel-efficient`` stays a
single token, mirroring how the paper's Chinese segmenter keeps multi-char
words together).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_TOKEN_RE = re.compile(
    r"[A-Za-z0-9]+(?:[-'][A-Za-z0-9]+)*"  # words, hyphenated words, contractions
    r"|[^\sA-Za-z0-9]"  # any single punctuation mark
)


@dataclass(frozen=True)
class Token:
    """A token with its surface form and character offsets."""

    text: str
    start: int
    end: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.text


def tokenize(text: str, lowercase: bool = True) -> list[str]:
    """Split ``text`` into a list of token strings.

    Args:
        text: raw input string.
        lowercase: lower-case token surface forms (default True; the click
            graph merges tokens by identity so casing must be normalised).

    Returns:
        List of token strings in input order.
    """
    tokens = [m.group(0) for m in _TOKEN_RE.finditer(text)]
    if lowercase:
        tokens = [t.lower() for t in tokens]
    return tokens


def tokenize_with_offsets(text: str, lowercase: bool = True) -> list[Token]:
    """Tokenize returning :class:`Token` objects with character offsets."""
    out = []
    for m in _TOKEN_RE.finditer(text):
        surface = m.group(0).lower() if lowercase else m.group(0)
        out.append(Token(surface, m.start(), m.end()))
    return out


def detokenize(tokens: list[str]) -> str:
    """Join tokens back into a display string (punctuation unspaced)."""
    pieces: list[str] = []
    for tok in tokens:
        if pieces and re.fullmatch(r"[^\sA-Za-z0-9]", tok):
            pieces[-1] = pieces[-1] + tok
        else:
            pieces.append(tok)
    return " ".join(pieces)
