"""English stopword list used throughout phrase mining.

The paper repeatedly filters "non-stop words" — when counting query-token
coverage (CoverRank), when validating random-walk clusters, and when
comparing normalized phrases.  This module is the single source of truth for
that predicate.
"""

from __future__ import annotations

STOPWORDS: frozenset[str] = frozenset(
    """
    a an the this that these those which what who whom whose
    i you he she it we they me him her us them my your his its our their
    is are was were be been being am
    do does did doing have has had having
    will would shall should can could may might must
    and or but if then else when while because so than as
    of in on at by for with about against between into through during
    before after above below to from up down out off over under again
    not no nor only own same too very just also
    s t don now ll re ve d m o y
    how where why all any both each few more most other some such
    there here
    ?  . , ! ; : ' " ( ) [ ] { } - — ...
    """.split()
)

# Tokens that are pure punctuation (subset of STOPWORDS, used by CoverRank).
PUNCTUATION: frozenset[str] = frozenset(".,!?;:'\"()[]{}-—…|/\\")


def is_stopword(token: str) -> bool:
    """Return True if ``token`` is a stopword or punctuation mark."""
    return token in STOPWORDS or (len(token) == 1 and not token.isalnum())


def content_words(tokens: list[str]) -> list[str]:
    """Filter ``tokens`` down to non-stop, non-punctuation words."""
    return [t for t in tokens if not is_stopword(t)]
