"""Lexicon + suffix-rule part-of-speech tagger.

QTIG node features include a POS-tag embedding (paper Section 3.1, "Node
Classification with R-GCN").  A deterministic tagger is sufficient — the
R-GCN only needs *consistent* tags, not linguistically perfect ones — and
determinism keeps every experiment reproducible.

Tagset (a compact universal-style set):
    NOUN PROPN VERB ADJ ADV DET ADP PRON NUM CONJ PART PUNCT X
"""

from __future__ import annotations

POS_TAGS: tuple[str, ...] = (
    "NOUN",
    "PROPN",
    "VERB",
    "ADJ",
    "ADV",
    "DET",
    "ADP",
    "PRON",
    "NUM",
    "CONJ",
    "PART",
    "PUNCT",
    "X",
)

_DETERMINERS = {"a", "an", "the", "this", "that", "these", "those", "some", "any", "each", "every"}
_PRONOUNS = {"i", "you", "he", "she", "it", "we", "they", "me", "him", "her", "us", "them", "what", "who", "which", "whose"}
_ADPOSITIONS = {
    "of", "in", "on", "at", "by", "for", "with", "about", "from", "to",
    "into", "over", "under", "between", "during", "against", "through",
}
_CONJUNCTIONS = {"and", "or", "but", "nor", "so", "yet", "because", "while", "when", "if", "than", "as"}
_PARTICLES = {"not", "'s", "s"}
_COMMON_VERBS = {
    "is", "are", "was", "were", "be", "been", "being", "am",
    "do", "does", "did", "have", "has", "had", "having",
    "will", "would", "can", "could", "may", "might", "shall", "should", "must",
    "wins", "win", "won", "launches", "launch", "launched", "announces",
    "announce", "announced", "releases", "release", "released", "resigns",
    "resign", "resigned", "explodes", "explode", "exploded", "imposes",
    "impose", "imposed", "raises", "raise", "raised", "bans", "ban", "banned",
    "signs", "sign", "signed", "beats", "beat", "defeats", "defeat",
    "defeated", "unveils", "unveil", "unveiled", "acquires", "acquire",
    "acquired", "holds", "hold", "held", "opens", "open", "opened",
    "starts", "start", "started", "ends", "end", "ended", "visits", "visit",
    "visited", "meets", "meet", "met", "recalls", "recall", "recalled",
    "sues", "sue", "sued", "buy", "buys", "bought", "sell", "sells", "sold",
    "review", "reviews", "reviewed", "watch", "watched", "committed",
    "commit", "commits", "get", "gets", "got", "make", "makes", "made",
    "choose", "chose", "drive", "drives", "drove", "play", "plays", "played",
    "delays", "delay", "delayed", "cancels", "cancel", "cancelled",
}
_COMMON_ADVERBS = {"very", "most", "really", "quite", "too", "also", "just", "now", "here", "there", "officially", "again"}
_COMMON_ADJECTIVES = {
    "best", "top", "new", "old", "famous", "classic", "classical", "popular",
    "great", "good", "bad", "cheap", "affordable", "reliable", "fast",
    "slow", "big", "small", "long", "short", "high", "low", "hot",
    "upcoming", "latest", "major", "minor", "free", "safe",
}

_ADJ_SUFFIXES = ("ous", "ful", "ive", "able", "ible", "ic", "al", "ish", "less", "ant", "ent")
_ADV_SUFFIXES = ("ly",)
_VERB_SUFFIXES = ("ize", "ise", "ify", "ate")


class PosTagger:
    """Deterministic POS tagger with an extensible lexicon.

    Domain generators (``repro.synth``) register their proper nouns so the
    tagger distinguishes PROPN entities from common NOUNs.
    """

    def __init__(self) -> None:
        self._lexicon: dict[str, str] = {}
        for word in _DETERMINERS:
            self._lexicon[word] = "DET"
        for word in _PRONOUNS:
            self._lexicon[word] = "PRON"
        for word in _ADPOSITIONS:
            self._lexicon[word] = "ADP"
        for word in _CONJUNCTIONS:
            self._lexicon[word] = "CONJ"
        for word in _PARTICLES:
            self._lexicon[word] = "PART"
        for word in _COMMON_VERBS:
            self._lexicon[word] = "VERB"
        for word in _COMMON_ADVERBS:
            self._lexicon[word] = "ADV"
        for word in _COMMON_ADJECTIVES:
            self._lexicon[word] = "ADJ"

    def register(self, word: str, tag: str) -> None:
        """Register a word with a fixed POS tag (e.g. PROPN gazetteer)."""
        if tag not in POS_TAGS:
            raise ValueError(f"unknown POS tag {tag!r}")
        self._lexicon[word.lower()] = tag

    def register_proper_nouns(self, words: "list[str] | set[str]") -> None:
        """Register many proper nouns at once."""
        for word in words:
            for part in word.lower().split():
                self._lexicon.setdefault(part, "PROPN")

    def tag_word(self, word: str) -> str:
        """Tag a single token."""
        if not word:
            return "X"
        if len(word) == 1 and not word.isalnum():
            return "PUNCT"
        if word.replace(".", "").replace("-", "").isdigit():
            return "NUM"
        lower = word.lower()
        tag = self._lexicon.get(lower)
        if tag is not None:
            return tag
        for suffix in _ADV_SUFFIXES:
            if lower.endswith(suffix) and len(lower) > len(suffix) + 2:
                return "ADV"
        for suffix in _ADJ_SUFFIXES:
            if lower.endswith(suffix) and len(lower) > len(suffix) + 2:
                return "ADJ"
        for suffix in _VERB_SUFFIXES:
            if lower.endswith(suffix) and len(lower) > len(suffix) + 2:
                return "VERB"
        return "NOUN"

    def tag(self, tokens: list[str]) -> list[str]:
        """Tag a token sequence, with small contextual corrections."""
        tags = [self.tag_word(t) for t in tokens]
        for i, tag in enumerate(tags):
            # "top 5" / "best 10": number after ADJ stays NUM; but a NOUN
            # reading of an -ed word after a DET becomes ADJ ("the famous").
            if tag == "VERB" and i > 0 and tags[i - 1] == "DET" and tokens[i].endswith("ed"):
                tags[i] = "ADJ"
        return tags
