"""Similarity kernels used across mining, linking and applications.

* cosine over numpy vectors — story-tree fm()/fg() terms (Eq. 9-10);
* cosine over sparse dict vectors — TF-IDF similarities (Eq. 11, phrase
  normalization, document tagging coherence);
* longest common subsequence — LCS-based event/topic tagging (Section 4);
* jaccard — cluster sanity checks and ablations.
"""

from __future__ import annotations

import math

import numpy as np


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two dense vectors (0.0 if either is zero)."""
    na = float(np.linalg.norm(a))
    nb = float(np.linalg.norm(b))
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(np.dot(a, b) / (na * nb))


def dict_cosine(a: "dict[str, float]", b: "dict[str, float]") -> float:
    """Cosine similarity of two sparse dict vectors."""
    if not a or not b:
        return 0.0
    if len(a) > len(b):
        a, b = b, a
    dot = sum(w * b.get(k, 0.0) for k, w in a.items())
    na = math.sqrt(sum(w * w for w in a.values()))
    nb = math.sqrt(sum(w * w for w in b.values()))
    if na == 0.0 or nb == 0.0:
        return 0.0
    return dot / (na * nb)


def tfidf_similarity(tokens_a: list[str], tokens_b: list[str],
                     idf: "dict[str, float] | None" = None) -> float:
    """TF-IDF cosine between two token lists with optional external IDF.

    When ``idf`` is None all tokens weigh 1.0 (pure TF cosine). This is the
    similarity used for the entity-set term fe() of Eq. (11).
    """
    from collections import Counter

    ca = Counter(tokens_a)
    cb = Counter(tokens_b)
    weight = (lambda t: idf.get(t, 1.0)) if idf is not None else (lambda t: 1.0)
    va = {t: c * weight(t) for t, c in ca.items()}
    vb = {t: c * weight(t) for t, c in cb.items()}
    return dict_cosine(va, vb)


def longest_common_subsequence(a: list[str], b: list[str]) -> int:
    """Length of the longest common subsequence of two token lists.

    Dynamic programming, O(len(a) * len(b)); inputs here are phrase-vs-title
    so sizes stay small.
    """
    if not a or not b:
        return 0
    m, n = len(a), len(b)
    prev = [0] * (n + 1)
    for i in range(1, m + 1):
        cur = [0] * (n + 1)
        ai = a[i - 1]
        for j in range(1, n + 1):
            if ai == b[j - 1]:
                cur[j] = prev[j - 1] + 1
            else:
                cur[j] = max(prev[j], cur[j - 1])
        prev = cur
    return prev[n]


def jaccard(a: "set[str] | list[str]", b: "set[str] | list[str]") -> float:
    """Jaccard similarity of two token collections."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 0.0
    return len(sa & sb) / len(sa | sb)
