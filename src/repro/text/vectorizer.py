"""TF-IDF vectorization over token lists.

Used for attention-phrase normalization (context-enriched phrase
representations, paper Section 3.1), document-concept coherence scoring in
document tagging (Section 4), and the entity-set similarity term of the
story-tree event similarity (Eq. 11).

Vectors are sparse ``dict[token, weight]`` maps; at GIANT's vocabulary sizes
this is faster and clearer than building scipy sparse matrices for the mostly
pairwise similarity computations the pipeline performs.
"""

from __future__ import annotations

import math
from collections import Counter


class TfidfVectorizer:
    """Fit document frequencies on a corpus; transform token lists to TF-IDF.

    The vectorizer is intentionally minimal: smooth IDF
    ``log((1 + N) / (1 + df)) + 1`` and L2-normalised vectors, matching the
    conventional formulation.
    """

    def __init__(self) -> None:
        self._df: Counter[str] = Counter()
        self._num_docs = 0

    @property
    def num_docs(self) -> int:
        return self._num_docs

    def fit(self, corpus: "list[list[str]]") -> "TfidfVectorizer":
        """Count document frequencies over ``corpus`` (lists of tokens)."""
        for doc in corpus:
            self._df.update(set(doc))
            self._num_docs += 1
        return self

    def partial_fit(self, doc: list[str]) -> None:
        """Incorporate one more document into the document frequencies."""
        self._df.update(set(doc))
        self._num_docs += 1

    def idf(self, token: str) -> float:
        """Smoothed inverse document frequency of ``token``."""
        df = self._df.get(token, 0)
        return math.log((1.0 + self._num_docs) / (1.0 + df)) + 1.0

    def transform(self, doc: list[str]) -> dict[str, float]:
        """Return the L2-normalised TF-IDF vector of a token list."""
        if not doc:
            return {}
        counts = Counter(doc)
        vec = {tok: count * self.idf(tok) for tok, count in counts.items()}
        norm = math.sqrt(sum(w * w for w in vec.values()))
        if norm == 0.0:
            return {}
        return {tok: w / norm for tok, w in vec.items()}

    def similarity(self, doc_a: list[str], doc_b: list[str]) -> float:
        """Cosine similarity between the TF-IDF vectors of two token lists."""
        va = self.transform(doc_a)
        vb = self.transform(doc_b)
        if len(va) > len(vb):
            va, vb = vb, va
        return sum(w * vb.get(tok, 0.0) for tok, w in va.items())
