"""NLP substrate for the GIANT reproduction.

The paper's production system runs a Chinese NLP stack (word segmentation,
POS tagging, NER, dependency parsing).  The GIANT algorithms only consume the
*outputs* of that stack — token identities, tag embeddings and dependency
arcs — so this package provides an English-token equivalent: a deterministic
tokenizer, a lexicon/suffix POS tagger, a gazetteer NER, a rule-based
dependency parser, TF-IDF vectorization and PPMI-SVD word embeddings.
"""

from .tokenizer import tokenize, Token
from .stopwords import STOPWORDS, is_stopword, content_words
from .pos import PosTagger, POS_TAGS
from .ner import NerTagger, NER_TAGS
from .dependency import DependencyParser, DependencyArc
from .vectorizer import TfidfVectorizer
from .similarity import (
    cosine_similarity,
    dict_cosine,
    tfidf_similarity,
    longest_common_subsequence,
    jaccard,
)
from .embeddings import WordEmbeddings

__all__ = [
    "tokenize",
    "Token",
    "STOPWORDS",
    "is_stopword",
    "content_words",
    "PosTagger",
    "POS_TAGS",
    "NerTagger",
    "NER_TAGS",
    "DependencyParser",
    "DependencyArc",
    "TfidfVectorizer",
    "cosine_similarity",
    "dict_cosine",
    "tfidf_similarity",
    "longest_common_subsequence",
    "jaccard",
    "WordEmbeddings",
]
