"""Word embeddings: deterministic hash vectors + PPMI-SVD corpus training.

The paper uses directional skip-gram vectors (Song et al. 2018) for the
trigger-similarity term fg() of the story-tree event similarity (Eq. 10) and
to initialise LSTM baselines, plus BERT phrase encodings for fm() (Eq. 9).
Neither model is available offline, so this module provides the standard
count-based equivalent: positive PMI co-occurrence statistics factorised with
truncated SVD — the classic result that SVD-of-PPMI approximates skip-gram
with negative sampling (Levy & Goldberg 2014).

Out-of-vocabulary words fall back to a deterministic hash-seeded Gaussian
vector so that similarity is well defined for every token.
"""

from __future__ import annotations

import hashlib
from collections import Counter

import numpy as np


def _hash_vector(word: str, dim: int) -> np.ndarray:
    """Deterministic unit-norm Gaussian vector derived from the word hash."""
    digest = hashlib.sha256(word.encode("utf-8")).digest()
    seed = int.from_bytes(digest[:8], "little")
    rng = np.random.default_rng(seed)
    vec = rng.standard_normal(dim)
    norm = np.linalg.norm(vec)
    return vec / norm if norm > 0 else vec


class WordEmbeddings:
    """Trainable word-vector table with deterministic OOV fallback.

    Usage::

        emb = WordEmbeddings(dim=32)
        emb.train(corpus)            # corpus: list of token lists
        v = emb.vector("film")       # numpy array, unit norm
        s = emb.similarity("film", "movie")
    """

    def __init__(self, dim: int = 32, window: int = 3) -> None:
        if dim < 2:
            raise ValueError("dim must be >= 2")
        self.dim = dim
        self.window = window
        self._vectors: dict[str, np.ndarray] = {}
        self._trained = False

    def __contains__(self, word: str) -> bool:
        return word in self._vectors

    def __len__(self) -> int:
        return len(self._vectors)

    def train(self, corpus: "list[list[str]]", min_count: int = 1) -> "WordEmbeddings":
        """Fit PPMI-SVD vectors on ``corpus`` (list of token lists)."""
        word_counts: Counter[str] = Counter()
        for sent in corpus:
            word_counts.update(sent)
        vocab = sorted(w for w, c in word_counts.items() if c >= min_count)
        if not vocab:
            self._trained = True
            return self
        index = {w: i for i, w in enumerate(vocab)}
        n = len(vocab)

        cooc: Counter[tuple[int, int]] = Counter()
        for sent in corpus:
            ids = [index[t] for t in sent if t in index]
            for i, wi in enumerate(ids):
                lo = max(0, i - self.window)
                hi = min(len(ids), i + self.window + 1)
                for j in range(lo, hi):
                    if j != i:
                        cooc[(wi, ids[j])] += 1

        total = sum(cooc.values())
        if total == 0:
            for w in vocab:
                self._vectors[w] = _hash_vector(w, self.dim)
            self._trained = True
            return self

        row_sums = np.zeros(n)
        for (i, _j), c in cooc.items():
            row_sums[i] += c

        # Build dense PPMI (vocab sizes here are a few thousand at most).
        ppmi = np.zeros((n, n))
        for (i, j), c in cooc.items():
            pmi = np.log((c * total) / (row_sums[i] * row_sums[j] + 1e-12) + 1e-12)
            if pmi > 0:
                ppmi[i, j] = pmi

        k = min(self.dim, n - 1)
        if k < 1:
            vectors = np.ones((n, 1))
        else:
            try:
                from scipy.sparse.linalg import svds
                from scipy.sparse import csr_matrix

                u, s, _vt = svds(csr_matrix(ppmi), k=k)
                order = np.argsort(-s)
                vectors = u[:, order] * np.sqrt(s[order])
            except Exception:
                u, s, _vt = np.linalg.svd(ppmi, full_matrices=False)
                vectors = u[:, :k] * np.sqrt(s[:k])

        if vectors.shape[1] < self.dim:
            pad = np.zeros((n, self.dim - vectors.shape[1]))
            vectors = np.hstack([vectors, pad])

        for w, i in index.items():
            vec = vectors[i]
            norm = np.linalg.norm(vec)
            self._vectors[w] = vec / norm if norm > 0 else _hash_vector(w, self.dim)
        self._trained = True
        return self

    def vector(self, word: str) -> np.ndarray:
        """Unit-norm vector for ``word`` (hash fallback when OOV)."""
        vec = self._vectors.get(word)
        if vec is None:
            vec = _hash_vector(word, self.dim)
        return vec

    def encode_phrase(self, tokens: list[str]) -> np.ndarray:
        """Mean-of-word-vectors phrase encoding (unit norm)."""
        if not tokens:
            return np.zeros(self.dim)
        mat = np.stack([self.vector(t) for t in tokens])
        vec = mat.mean(axis=0)
        norm = np.linalg.norm(vec)
        return vec / norm if norm > 0 else vec

    def similarity(self, word_a: str, word_b: str) -> float:
        """Cosine similarity between two word vectors."""
        return float(np.dot(self.vector(word_a), self.vector(word_b)))
