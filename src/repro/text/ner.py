"""Gazetteer-based named entity recognizer.

The production GIANT system uses an in-house Chinese NER.  Here entities come
from the synthetic world's gazetteer (and any user-registered names), matched
greedily longest-first, producing per-token BIO-style tags that feed the QTIG
node features and the event key-element heuristics.

Tagset: PER ORG LOC PROD WORK MISC O (B-/I- prefixes in BIO output).
"""

from __future__ import annotations

NER_TAGS: tuple[str, ...] = ("PER", "ORG", "LOC", "PROD", "WORK", "MISC", "O")


class NerTagger:
    """Longest-match gazetteer NER over token sequences."""

    def __init__(self) -> None:
        # Maps token tuple -> entity type.
        self._gazetteer: dict[tuple[str, ...], str] = {}
        self._max_len = 1

    def register(self, name: str, entity_type: str) -> None:
        """Register an entity surface form with its type."""
        if entity_type not in NER_TAGS or entity_type == "O":
            raise ValueError(f"unknown entity type {entity_type!r}")
        key = tuple(name.lower().split())
        if not key:
            raise ValueError("entity name must be non-empty")
        self._gazetteer[key] = entity_type
        self._max_len = max(self._max_len, len(key))

    def register_many(self, names: "dict[str, str]") -> None:
        """Register a mapping of surface form -> entity type."""
        for name, etype in names.items():
            self.register(name, etype)

    def __len__(self) -> int:
        return len(self._gazetteer)

    def tag(self, tokens: list[str]) -> list[str]:
        """Return a BIO tag per token (``B-PER``, ``I-PER``, ..., ``O``)."""
        n = len(tokens)
        tags = ["O"] * n
        i = 0
        lowered = [t.lower() for t in tokens]
        while i < n:
            matched = False
            for span in range(min(self._max_len, n - i), 0, -1):
                key = tuple(lowered[i : i + span])
                etype = self._gazetteer.get(key)
                if etype is not None:
                    tags[i] = f"B-{etype}"
                    for j in range(i + 1, i + span):
                        tags[j] = f"I-{etype}"
                    i += span
                    matched = True
                    break
            if not matched:
                i += 1
        return tags

    def entity_spans(self, tokens: list[str]) -> list[tuple[int, int, str]]:
        """Return (start, end, type) spans; ``end`` is exclusive."""
        tags = self.tag(tokens)
        spans: list[tuple[int, int, str]] = []
        i = 0
        while i < len(tags):
            if tags[i].startswith("B-"):
                etype = tags[i][2:]
                j = i + 1
                while j < len(tags) and tags[j] == f"I-{etype}":
                    j += 1
                spans.append((i, j, etype))
                i = j
            else:
                i += 1
        return spans

    def entities(self, tokens: list[str]) -> list[str]:
        """Return matched entity surface strings (space-joined)."""
        return [" ".join(tokens[s:e]) for s, e, _ in self.entity_spans(tokens)]
