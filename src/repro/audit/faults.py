"""Fault-injection primitives for the audit campaign.

:class:`FaultInjector` is the campaign's hand on the chaos levers — it
owns no policy (the seeded schedule decides *when*), just the
mechanics, each of which maps to a real failure mode of the fabric:

* :meth:`kill_worker` — a shard worker process dies mid-traffic
  (``terminate_worker``); the next read through its proxy surfaces
  :class:`~repro.errors.ShardUnavailableError` and the serving view's
  recovery hook respawns it.
* :meth:`restart_worker` — an operator-driven ``restart_shard``: reap,
  respawn from snapshot + tail, all-or-nothing proxy swap.
* :meth:`delay_follower` / :meth:`partition_follower` / :meth:`heal` —
  publisher-side injected latency or refusal on one follower's log
  reads (:meth:`~repro.replication.publisher.LogPublisher
  .inject_fault`), lagging or cutting off a worker without touching its
  process.
* :meth:`sync_workers` + :meth:`gc_log` — drive every *worker* to the
  log head, then snapshot-and-GC the log so a consumer still sitting on
  the old prefix (the parent's routing client is unregistered on
  purpose) meets :class:`~repro.errors.DeltaGapError` and must
  re-bootstrap.

Every injection is counted under the ``audit.faults`` metrics scope and
recorded (kind ``fault.injected``) on the flight recorder — a violation
dump therefore shows the fault weather around it.
"""

from __future__ import annotations

from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.recorder import get_recorder


class FaultInjector:
    """Chaos levers over one live campaign topology.

    Args:
        remote: the :class:`~repro.cluster.remote.RemoteClusterService`
            under test.
        publisher: the :class:`~repro.replication.publisher
            .PublisherThread` feeding it.
        catalog: the publisher's :class:`~repro.replication.catalog
            .SnapshotCatalog` (needed for :meth:`gc_log`).
        registry: metrics registry for the ``audit.faults`` scope.
    """

    def __init__(self, remote, publisher, catalog=None,
                 registry: "MetricsRegistry | None" = None) -> None:
        self._remote = remote
        self._publisher = publisher
        self._catalog = catalog
        registry = registry if registry is not None else get_registry()
        self._metrics = registry.scope("audit.faults")
        self.injected: "list[dict]" = []

    def _note(self, kind: str, **fields) -> None:
        self._metrics.counter(kind).inc()
        self.injected.append(dict(fields, kind=kind))
        get_recorder().record("fault.injected", "audit",
                              fault=kind, **fields)

    # ------------------------------------------------------------------
    def kill_worker(self, shard_id: int) -> None:
        """Terminate a shard worker outright, stale proxy left seated."""
        self._remote.terminate_worker(shard_id)
        self._note("kill_worker", shard=shard_id)

    def restart_worker(self, shard_id: int) -> dict:
        """Operator restart: reap + respawn + all-or-nothing swap."""
        line = self._remote.restart_shard(shard_id)
        self._note("restart_worker", shard=shard_id)
        return line

    # ------------------------------------------------------------------
    def delay_follower(self, follower: str, seconds: float) -> None:
        """Every log fetch/wait by ``follower`` sleeps ``seconds``."""
        self._publisher.inject_fault(follower, delay=seconds)
        self._note("delay_follower", follower=follower, seconds=seconds)

    def partition_follower(self, follower: str) -> None:
        """Cut ``follower`` off from the log (its fetches fail)."""
        self._publisher.inject_fault(follower, partition=True)
        self._note("partition_follower", follower=follower)

    def heal(self, follower: "str | None" = None) -> None:
        """Heal one follower's partition+delay, or all of them."""
        if follower is None:
            self._publisher.clear_faults()
        else:
            self._publisher.inject_fault(follower, delay=0.0,
                                         partition=False)
        self._note("heal", follower=follower or "*")

    # ------------------------------------------------------------------
    def sync_workers(self, version: int) -> None:
        """Drive every worker replica to ``version`` directly (bypassing
        the parent), leaving the parent's router behind — the setup for
        a GC-under-lag fault.  Only safe with no reads in flight."""
        for replica in self._remote.replicas:
            replica.sync(version)
        self._note("sync_workers", version=version)

    def gc_log(self, store) -> int:
        """Snapshot ``store`` (which must be at the log head) into the
        catalog on the publisher's loop thread; segment GC then drops
        every log prefix below the registered-follower floor, stranding
        any unregistered consumer that still needs it."""
        if self._catalog is None:
            raise ValueError("gc_log needs the publisher's catalog")
        version = self._publisher.call(
            lambda: self._catalog.record(store))
        self._note("gc_log", version=version)
        return version
