"""Seeded, replayable fault-injection campaigns over a live cluster.

A campaign is a *recorded schedule* — a JSON-able op list mixing delta
publishes, per-session stamped reads and writes, and fault injections
(worker kills/restarts, follower delay/partition, GC-under-lag, one
mid-traffic **chunked** rebalance) — driven against a real
:class:`~repro.cluster.remote.RemoteClusterService` behind a real
:class:`~repro.serving.rpc.RpcServer`.  Every serving call goes through
:meth:`RpcClient.call_stamped` with the op's session id and is handed
to the :class:`~repro.audit.log.AuditLog` for online checking.

Same artifact discipline as the consistency harness: when a run ends
with violations, the schedule + report is written to
``$REPRO_AUDIT_ARTIFACTS`` — the file alone reproduces the failure
(:func:`replay_artifact`) and shrinks by deleting ops from the JSON.

The schedule drives ops *sequentially* (each op fully awaited), so the
oracle sees writes in the exact order the serving side executed them;
the only concurrency is read traffic interleaved with
``rebalance_step`` calls during the staged resize — reads only, all
stamped at the pre-flip version, which is precisely the window the
auditor exists to check.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import random
import time
from typing import Any

from ..apps.story_tree import EventRecord
from ..cluster import RemoteClusterService
from ..core.ontology import AttentionOntology, EdgeType, NodeType
from ..core.store import OntologyStore
from ..errors import ReproError
from ..replication import DeltaLog, PublisherThread, SnapshotCatalog
from ..serving.aio import AsyncOntologyService
from ..serving.rpc import RpcClient, RpcServer
from ..text.ner import NerTagger
from ..text.tokenizer import tokenize
from .faults import FaultInjector
from .log import AuditLog

#: Where failing campaigns drop their shrinkable schedule artifacts.
AUDIT_ARTIFACTS_ENV = "REPRO_AUDIT_ARTIFACTS"

#: Serving options every campaign component shares (cluster under test,
#: oracle) — they must match for byte-comparability.
TAGGER_OPTIONS = {"coherence_threshold": 0.01, "lcs_threshold": 0.6}

_ADJS = ["brisk", "coral", "ember", "frosty", "molten", "quiet",
         "vivid", "zonal"]
_NOUNS = ["anchor", "circuit", "harbor", "ledger", "orchard", "prism",
          "relay", "turbine"]

_TYPES = {"category": NodeType.CATEGORY, "concept": NodeType.CONCEPT,
          "entity": NodeType.ENTITY, "event": NodeType.EVENT,
          "topic": NodeType.TOPIC}
_EDGES = {"isA": EdgeType.ISA, "involve": EdgeType.INVOLVE,
          "correlate": EdgeType.CORRELATE}


# ----------------------------------------------------------------------
# schedule generation (pure: same seed -> same JSON-able schedule)
# ----------------------------------------------------------------------
def generate_schedule(seed: int = 0, steps: int = 18,
                      start_shards: int = 2, rebalance_to: int = 3,
                      chunk_nodes: int = 2, sessions: int = 3) -> dict:
    """A seeded campaign schedule covering the whole fault matrix:
    worker kill (+ recovery reads), operator restart, follower delay,
    GC under a lagging consumer, and one mid-traffic chunked rebalance
    with interleaved read probes — wrapped in randomized delta/read/
    write traffic across ``sessions`` client sessions."""
    rng = random.Random(seed)
    serial = 0
    concepts: "list[str]" = []
    entities: "list[str]" = []
    profiled: "set[str]" = set()
    session_ids = [f"s{i}" for i in range(max(1, sessions))]

    def fresh(kind: str) -> str:
        nonlocal serial
        serial += 1
        return f"{rng.choice(_ADJS)} {rng.choice(_NOUNS)} {kind} {serial}"

    def delta_spec(op: str = "delta") -> dict:
        spec = {"op": op, "nodes": [], "edges": [], "aliases": [],
                "payloads": []}
        concept = fresh("systems")
        spec["nodes"].append(["concept", concept,
                              {"support": rng.randrange(1, 9)}])
        concepts.append(concept)
        for _ in range(rng.randrange(2, 4)):
            entity = fresh("unit")
            spec["nodes"].append(["entity", entity, {}])
            entities.append(entity)
            spec["edges"].append(["concept", rng.choice(concepts),
                                  "entity", entity, "isA"])
        if rng.random() < 0.5:
            spec["aliases"].append(["concept", rng.choice(concepts),
                                    fresh("alias")])
        if rng.random() < 0.5:
            spec["payloads"].append(["concept", rng.choice(concepts),
                                     {"clicks": rng.randrange(1, 99)}])
        return spec

    def read_op(session: str) -> dict:
        kinds = ["tag", "query", "neighborhood", "concepts"]
        if session in profiled:
            kinds += ["interests", "recsys"]
        kind = rng.choice(kinds)
        op = {"op": "read", "session": session, "kind": kind}
        if kind == "tag":
            sample = rng.sample(entities, min(len(entities), 2))
            op["docs"] = [["doc", " ".join(sample) or "probe",
                           [f"all about {phrase}" for phrase in sample]]]
        elif kind == "query":
            op["queries"] = [f"best {rng.choice(concepts)}",
                             f"{rng.choice(entities)} review"]
        elif kind == "neighborhood":
            op["concept"] = rng.choice(concepts)
            op["depth"] = 2
        elif kind == "concepts":
            op["entity"] = rng.choice(entities)
        else:
            op["user"] = f"u-{session}"
            op["k"] = 3
        return op

    def write_op(session: str) -> dict:
        if rng.random() < 0.65 or len(entities) < 2:
            profiled.add(session)
            pool = concepts + entities
            return {"op": "write", "session": session, "kind": "profile",
                    "user": f"u-{session}",
                    "tags": rng.sample(pool, min(2, len(pool)))}
        phrase = fresh("launch")
        return {"op": "write", "session": session, "kind": "story",
                "events": [[phrase, "launch",
                            rng.sample(entities, 2), day]
                           for day in range(2)],
                "read": phrase, "limit": 3}

    def traffic(count: int) -> "list[dict]":
        block = []
        for _ in range(count):
            roll = rng.random()
            if roll < 0.3:
                block.append(delta_spec())
            elif roll < 0.7:
                block.append(read_op(rng.choice(session_ids)))
            else:
                block.append(write_op(rng.choice(session_ids)))
        return block

    ops: "list[dict]" = [delta_spec("seed")]
    # Every session writes its profile early, so interests/recsys reads
    # are meaningful (and read-your-writes checkable) everywhere after.
    for session in session_ids:
        ops.append(write_op(session))
        profiled.add(session)
    ops += traffic(max(2, steps // 4))
    # Worker kill, then scatter reads through the dead worker's stale
    # proxy: the typed-recovery regression (bugfix a) under audit.
    ops.append({"op": "kill", "shard": rng.randrange(start_shards)})
    ops.append(read_op(rng.choice(session_ids)))
    ops.append(read_op(rng.choice(session_ids)))
    ops += traffic(2)
    ops.append({"op": "restart", "shard": rng.randrange(start_shards)})
    ops += traffic(2)
    follower = f"shard-{rng.randrange(start_shards)}"
    ops.append({"op": "delay", "follower": follower, "seconds": 0.05})
    ops.append(delta_spec())
    ops.append(read_op(rng.choice(session_ids)))
    ops.append({"op": "heal", "follower": follower})
    ops += traffic(2)
    # GC the log under the (deliberately unregistered) parent: the next
    # sync meets the gap, rebuilds the router, and the view catalog must
    # rehydrate — checked by the interests read right after.
    ops.append({"op": "lag_gc",
                "deltas": [delta_spec(), delta_spec(), delta_spec()]})
    ops.append(read_op(rng.choice(session_ids)))
    ops.append({"op": "read", "session": session_ids[0],
                "kind": "interests", "user": f"u-{session_ids[0]}", "k": 3})
    ops += traffic(2)
    probes = [read_op(rng.choice(session_ids)) for _ in range(3)]
    ops.append({"op": "rebalance", "num_shards": rebalance_to,
                "chunk_nodes": chunk_nodes, "probes": probes})
    ops.append(read_op(rng.choice(session_ids)))
    ops += traffic(max(2, steps // 6))
    return {"seed": seed, "start_shards": start_shards, "ops": ops}


# ----------------------------------------------------------------------
# schedule replay (the live campaign)
# ----------------------------------------------------------------------
def _find(producer: AttentionOntology, type_name: str, phrase: str):
    node = producer.find(_TYPES[type_name], phrase)
    if node is None:
        raise ReproError(f"schedule references unknown {phrase!r}")
    return node


def _apply_spec(producer: AttentionOntology, ner: NerTagger,
                spec: dict) -> Any:
    """Commit one delta spec on the producer (the campaign's builder
    mirror) and return the delta; entities register with the shared
    NER so the cluster and the oracle tag identically."""
    producer.begin_delta("audit-script")
    for type_name, phrase, payload in spec.get("nodes", []):
        producer.add_node(_TYPES[type_name], phrase,
                          payload=payload or None)
        if type_name == "entity":
            ner.register(phrase, "MISC")
    for src_t, src, dst_t, dst, edge in spec.get("edges", []):
        producer.add_edge(_find(producer, src_t, src).node_id,
                          _find(producer, dst_t, dst).node_id,
                          _EDGES[edge])
    for type_name, phrase, alias in spec.get("aliases", []):
        producer.add_alias(_find(producer, type_name, phrase).node_id,
                           alias)
    for type_name, phrase, payload in spec.get("payloads", []):
        producer.update_payload(_find(producer, type_name, phrase).node_id,
                                payload)
    return producer.commit_delta()


def _read_call(op: dict, producer: AttentionOntology
               ) -> "tuple[str, tuple, dict]":
    """Lower a read op to ``(method, args, kwargs)`` — the same values
    go over the RPC and into the oracle."""
    kind = op["kind"]
    if kind == "tag":
        docs = [(doc_id, tokenize(title),
                 [tokenize(sentence) for sentence in sentences])
                for doc_id, title, sentences in op["docs"]]
        return "tag_documents", (docs,), {}
    if kind == "query":
        return "interpret_queries", (list(op["queries"]),), {}
    if kind == "neighborhood":
        node = _find(producer, "concept", op["concept"])
        return "neighborhood", (node.node_id,), {"depth": op.get("depth", 2)}
    if kind == "concepts":
        return "concepts_of_entity", (op["entity"],), {}
    if kind == "interests":
        return "user_interests", (op["user"],), {"k": op.get("k", 3)}
    if kind == "recsys":
        return "recommend_for_user", (op["user"],), {"k": op.get("k", 3)}
    if kind == "follow":
        return "follow_ups", (op["read"],), {"limit": op.get("limit", 3)}
    raise ReproError(f"unknown read kind {kind!r}")


async def _drive(schedule: dict, backend, remote: RemoteClusterService,
                 publisher: PublisherThread,
                 producer: AttentionOntology, ner: NerTagger,
                 audit: AuditLog, injector: FaultInjector,
                 report: dict) -> None:
    async with AsyncOntologyService(backend) as aio:
        server = RpcServer(aio)
        host, port = await server.start()
        clients: "dict[str, RpcClient]" = {}

        async def issue(session: str, method: str, args: tuple,
                        kwargs: dict) -> float:
            client = clients.get(session)
            if client is None:
                client = clients[session] = await RpcClient.connect(host,
                                                                    port)
            start = time.perf_counter()
            result, stamp = await client.call_stamped(
                method, *args, session=session, **kwargs)
            elapsed = time.perf_counter() - start
            audit.observe(session, method, args, kwargs, result, stamp)
            return elapsed

        async def issue_read(op: dict) -> float:
            method, args, kwargs = _read_call(op, producer)
            elapsed = await issue(op["session"], method, args, kwargs)
            report["reads"] += 1
            return elapsed

        async def issue_write(op: dict) -> None:
            session = op["session"]
            if op["kind"] == "profile":
                await issue(session, "record_read",
                            (op["user"], list(op["tags"])), {})
            else:
                events = [EventRecord(phrase=phrase, trigger=trigger,
                                      entities=list(involved), day=day)
                          for phrase, trigger, involved, day
                          in op["events"]]
                await issue(session, "track_events", (events,), {})
                await issue(session, "follow_ups", (op["read"],),
                            {"limit": op.get("limit", 3)})
            report["writes"] += 1

        async def do_rebalance(op: dict) -> None:
            # Stage the resize, then interleave one stamped probe read
            # with every transfer chunk: the window the throttled
            # rebalance exists to protect, measured and audited.
            probes = op.get("probes") or []
            pending = await aio._call(
                "begin_rebalance", op["num_shards"],
                publish=publisher.publish,
                chunk_nodes=op.get("chunk_nodes", 2))
            latencies: "list[float]" = []
            cursor = 0
            if remote.rebalance_staged:
                while pending:
                    step = asyncio.ensure_future(
                        aio._call("rebalance_step"))
                    reads = []
                    if probes:
                        reads.append(issue_read(probes[cursor
                                                       % len(probes)]))
                        cursor += 1
                    results = await asyncio.gather(step, *reads)
                    pending = results[0]
                    latencies.extend(results[1:])
                ring_delta = await aio._call("finish_rebalance")
                # The ring record is in the log now; the producer must
                # cross it too or its next commit overlaps the stream.
                producer.store.apply_delta(ring_delta)
            report["rebalance"] = {
                "num_shards": op["num_shards"],
                "chunk_nodes": op.get("chunk_nodes", 2),
                "transfer_chunks": (remote.last_rebalance or {}).get(
                    "transfer_chunks", 0),
                "interleaved_read_latencies": latencies,
            }

        try:
            for op in schedule["ops"]:
                kind = op["op"]
                if kind == "seed":
                    continue  # applied before the cluster came up
                report["ops"] += 1
                if kind == "delta":
                    delta = _apply_spec(producer, ner, op)
                    publisher.publish([delta])
                    await aio._call("refresh", [delta])
                elif kind == "read":
                    await issue_read(op)
                elif kind == "write":
                    await issue_write(op)
                elif kind == "kill":
                    injector.kill_worker(op["shard"])
                elif kind == "restart":
                    injector.restart_worker(op["shard"])
                elif kind == "delay":
                    injector.delay_follower(op["follower"], op["seconds"])
                elif kind == "heal":
                    injector.heal(op.get("follower"))
                elif kind == "lag_gc":
                    # Publish fresh deltas, pull the auditor and every
                    # *worker* to the new head, then GC: the registered
                    # floor is at head, so the unregistered parent's
                    # prefix drops and its next sync re-bootstraps.
                    for spec in op["deltas"]:
                        publisher.publish([_apply_spec(producer, ner,
                                                       spec)])
                    audit.catch_up()
                    injector.sync_workers(producer.store.version)
                    injector.gc_log(producer.store)
                    await aio._call("sync")
                elif kind == "rebalance":
                    await do_rebalance(op)
                else:
                    raise ReproError(f"unknown campaign op {kind!r}")
        finally:
            for client in clients.values():
                await client.close()
            await server.close()


def run_campaign(schedule: dict, log_dir, *, backend_rig=None,
                 wire: str = "json", name: "str | None" = None) -> dict:
    """Run one campaign schedule end to end; returns the report dict
    (``violations`` empty on a clean run).  ``backend_rig`` wraps the
    live :class:`RemoteClusterService` before serving — the test hook
    for deliberately-buggy backends the auditor must catch.  On
    violations the schedule + report is written under
    ``$REPRO_AUDIT_ARTIFACTS`` (path in ``report["artifact"]``)."""
    ops = schedule.get("ops") or []
    if not ops or ops[0].get("op") != "seed":
        raise ReproError("a campaign schedule must start with a seed op")
    producer = AttentionOntology()
    ner = NerTagger()
    seed_delta = _apply_spec(producer, ner, ops[0])
    log = DeltaLog(log_dir, segment_max_bytes=512)
    log.append(seed_delta)
    catalog = SnapshotCatalog(log, compact_bytes=1, retain_segments=0)
    catalog.record(OntologyStore.bootstrap(None, [seed_delta]))
    report: dict = {"seed": schedule.get("seed"), "ops": 0, "reads": 0,
                    "writes": 0, "rebalance": None}
    start_shards = int(schedule.get("start_shards", 2))
    with PublisherThread(log, catalog) as publisher:
        with RemoteClusterService(publisher.address,
                                  num_shards=start_shards, ner=ner,
                                  tagger_options=TAGGER_OPTIONS,
                                  wire=wire) as remote:
            backend = remote if backend_rig is None else backend_rig(remote)
            audit = AuditLog(publisher.address, ner=ner,
                             tagger_options=TAGGER_OPTIONS)
            injector = FaultInjector(remote, publisher, catalog)
            try:
                asyncio.run(_drive(schedule, backend, remote, publisher,
                                   producer, ner, audit, injector,
                                   report))
            finally:
                audit.close()
    report["faults"] = list(injector.injected)
    report["violations"] = [v.to_dict() for v in audit.violations]
    report["final_version"] = producer.store.version
    if report["violations"]:
        path = _write_artifact(schedule, report, name)
        if path is not None:
            report["artifact"] = str(path)
    return report


def replay_artifact(path, log_dir) -> dict:
    """Re-run the schedule recorded in a violation artifact — the
    shrink loop: delete ops from the JSON, replay, repeat."""
    payload = json.loads(pathlib.Path(path).read_text())
    return run_campaign(payload["schedule"], log_dir)


def _write_artifact(schedule: dict, report: dict,
                    name: "str | None") -> "pathlib.Path | None":
    root = os.environ.get(AUDIT_ARTIFACTS_ENV)
    if not root:
        return None
    directory = pathlib.Path(root)
    directory.mkdir(parents=True, exist_ok=True)
    label = name or "campaign"
    path = directory / f"audit-{label}-seed{schedule.get('seed', 0)}.json"
    path.write_text(json.dumps({"schedule": schedule, "report": report},
                               indent=1, sort_keys=True))
    return path
