"""The online audit log: stamped observations vs. the delta-log oracle.

:class:`AuditLog` is a *follower* of the published delta log (it
registers as ``"auditor"``, so segment GC waits for it like any other
consumer) that maintains a private single-store
:class:`~repro.serving.service.OntologyService` — the oracle.  Each
stamped observation ``(session, method, args, result, stamp)`` handed to
:meth:`observe` is checked online:

1. the stamp must be present and echo the session id;
2. the stamp's version must be >= the session's previous stamp
   (**monotonic reads**);
3. the oracle is advanced to the stamped version by fetching the log
   tail (the stamp names the exact state the serving side claims it
   answered from — the micro-batcher serializes reads against refresh,
   so a stamp never lands mid-batch);
4. the observed payload must byte-equal (``rpc.dumps``) the oracle's
   answer — for profile/story *writes* the call is applied to the
   oracle and its return value compared, which is what makes the
   session's later reads **read-your-writes** checkable; a scatter
   merge torn across versions equals the oracle at *no* version and
   surfaces here as a **version-consistency** violation.

An observation stamped *behind* the oracle (a concurrent session
already dragged the oracle forward) cannot be value-checked against
history — it still gets the monotonic check and is counted in
``unchecked``.  Violations are recorded on the
:class:`~repro.obs.recorder.FlightRecorder` (kind ``audit.violation``,
an anomaly — the surrounding ring dumps) and kept on
:attr:`AuditLog.violations` for the campaign's artifact.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Any

from ..core.store import OntologyDelta, OntologyStore
from ..errors import ReproError
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.recorder import get_recorder
from ..replication.follower import SyncLogClient
from ..serving.rpc import dumps
from ..serving.service import OntologyService

#: Methods that mutate serving-side session state (profiles / story
#: tracker).  They are *applied* to the oracle rather than compared
#: read-only, so the oracle carries every session's writes in arrival
#: order — the precondition for read-your-writes checking.
WRITE_METHODS = frozenset({"record_read", "track_events"})

#: Methods whose payloads are telemetry, not serving answers — stamped
#: observations of these get the session checks but no value check.
UNCHECKED_METHODS = frozenset({"stats", "obs_status", "obs_watch",
                               "obs_dump", "refresh"})

#: Profile/story endpoints: a divergence here is the session failing to
#: see its own writes; anywhere else it is a torn or stale merge.
_SESSION_SCOPED = frozenset({"record_read", "track_events",
                             "user_interests", "recommend_for_user",
                             "follow_ups"})


@dataclasses.dataclass
class Violation:
    """One audited guarantee broken, with enough context to shrink."""

    kind: str          # monotonic-reads | read-your-writes | ...
    session: str
    method: str
    version: int       # the stamped version (or -1 when unstamped)
    detail: str

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class AuditLog:
    """Online session-guarantee checker against the published log.

    Args:
        publisher_address: ``(host, port)`` of the
            :class:`~repro.replication.publisher.LogPublisher` that is
            the campaign's system of record.
        ner / duet / tagger_options: the serving stack configuration the
            cluster under test runs with — the oracle must tag and
            interpret with the same models to be byte-comparable.
        follower_id: the auditor's name in the publisher's follower
            table; registering pins the segment-GC floor so the oracle
            can always fetch the tail it still needs (call
            :meth:`catch_up` before a campaign GCs the log on purpose).
        registry: metrics registry for the ``audit`` scope.
    """

    def __init__(self, publisher_address: "tuple[int, int]", *,
                 ner=None, duet=None,
                 tagger_options: "dict[str, Any] | None" = None,
                 follower_id: str = "auditor",
                 registry: "MetricsRegistry | None" = None) -> None:
        host, port = publisher_address
        registry = registry if registry is not None else get_registry()
        self._metrics = registry.scope("audit")
        self._observed = self._metrics.counter("observed")
        self._violations_counter = self._metrics.counter("violations")
        self._unchecked = self._metrics.counter("unchecked")
        self._client = SyncLogClient.connect(host, port,
                                             follower_id=follower_id)
        snapshot, version = self._client.latest_snapshot()
        tail = self._client.fetch(version if snapshot is not None else 0)
        store = OntologyStore.bootstrap(snapshot, tail)
        self._client.register(store.version)
        self._oracle = OntologyService(store, ner=ner, duet=duet,
                                       tagger_options=tagger_options,
                                       registry=registry)
        # Fetched-but-not-yet-applied deltas (a fetch can overshoot the
        # stamped version the oracle is advancing to).
        self._tail: "deque[OntologyDelta]" = deque()
        self._sessions: "dict[str, int]" = {}
        self.violations: "list[Violation]" = []

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Store version the oracle currently holds."""
        return self._oracle.version

    @property
    def oracle(self) -> OntologyService:
        return self._oracle

    def catch_up(self) -> int:
        """Advance the oracle to the log head (and move the auditor's
        GC-floor pin there).  A campaign calls this *before* forcing a
        log GC, so the fault never collides with the auditor's own
        tail."""
        applied = 0
        if self._tail:
            applied += self._oracle.refresh(list(self._tail))
            self._tail.clear()
        while True:
            deltas = self._client.fetch(self._oracle.version)
            if not deltas:
                return applied
            applied += self._oracle.refresh(deltas)

    def close(self) -> None:
        self._client.close()

    # ------------------------------------------------------------------
    def observe(self, session: str, method: str, args: tuple,
                kwargs: dict, result: Any,
                stamp: "dict | None") -> "Violation | None":
        """Check one stamped call against the session guarantees;
        returns the violation (already recorded) or ``None``."""
        self._observed.inc()
        session = str(session)
        if stamp is None or "version" not in stamp:
            return self._flag("unstamped", session, method, -1,
                              "the serving side answered without a "
                              "stamp; stamped reads are the auditor's "
                              "only observable")
        version = int(stamp["version"])
        if stamp.get("session") != session:
            return self._flag("session-mismatch", session, method, version,
                              f"stamp echoed session "
                              f"{stamp.get('session')!r}")
        last = self._sessions.get(session)
        self._sessions[session] = max(version, last or 0)
        if last is not None and version < last:
            return self._flag(
                "monotonic-reads", session, method, version,
                f"session went backwards: previous read was stamped "
                f"{last}, this one {version}")
        if method in UNCHECKED_METHODS:
            return None
        if version < self._oracle.version:
            # A concurrent session already advanced the oracle past this
            # stamp; history is gone, so only the session checks above
            # apply.  (Campaign write ops serialize, so writes are never
            # skipped — a skipped *write* would poison later checks.)
            if method in WRITE_METHODS:
                raise ReproError(
                    f"audit write {method} stamped {version} behind the "
                    f"oracle ({self._oracle.version}); the campaign must "
                    f"serialize writes")
            self._unchecked.inc()
            return None
        self._advance(version)
        try:
            expected = getattr(self._oracle, method)(*args, **kwargs)
        except Exception as exc:
            return self._flag("oracle-error", session, method, version,
                              f"the oracle refused the call: {exc!r}")
        if dumps(result) != dumps(expected):
            kind = "read-your-writes" if method in _SESSION_SCOPED \
                else "value-divergence"
            return self._flag(
                kind, session, method, version,
                f"payload diverges from the oracle at version {version} "
                f"(got {dumps(result)[:160]!r}..., oracle "
                f"{dumps(expected)[:160]!r}...)")
        return None

    # ------------------------------------------------------------------
    def _advance(self, target: int) -> None:
        """Replay the log into the oracle up to exactly ``target``.
        The auditor pins the GC floor, so a gap here is a hard auditing
        error, not a recoverable follower condition."""
        while self._oracle.version < target:
            if not self._tail:
                fetched = self._client.fetch(self._oracle.version)
                if not fetched:
                    raise ReproError(
                        f"a read was stamped at version {target} but the "
                        f"published log ends at {self._oracle.version} — "
                        f"the serving side claims state the system of "
                        f"record does not have")
                self._tail.extend(fetched)
            batch = []
            while self._tail and self._tail[0].version <= target:
                batch.append(self._tail.popleft())
            if not batch:
                raise ReproError(
                    f"stamp {target} falls inside delta batch "
                    f"{self._tail[0].base_version}..{self._tail[0].version}"
                    f" — stamps must land on batch boundaries")
            self._oracle.refresh(batch)

    def _flag(self, kind: str, session: str, method: str, version: int,
              detail: str) -> Violation:
        violation = Violation(kind=kind, session=session, method=method,
                              version=version, detail=detail)
        self.violations.append(violation)
        self._violations_counter.inc()
        get_recorder().record("audit.violation", f"session-{session}",
                              violation=kind, method=method,
                              version=version, detail=detail)
        return violation
