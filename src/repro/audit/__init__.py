"""Online black-box consistency auditing + fault injection (DESIGN.md §15).

The serving fabric is treated as a black box, after Huang et al.'s
snapshot-isolation checking discipline: every read a campaign client
issues carries a *session id* and comes back *stamped* with the store
version the serving side answered at (the ``"stamp"`` key riding the
RPC envelope next to ``"trace"``).  The :class:`AuditLog` replays the
published :class:`~repro.replication.log.DeltaLog` — the system of
record — into a private single-store oracle and checks each stamped
observation online:

* **monotonic reads** — a session's stamp versions never go backwards;
* **read-your-writes** — a session's profile/story writes are applied
  to the oracle in arrival order, so its later reads must reflect them;
* **version-consistent merges** — a read's payload must byte-equal
  (``rpc.dumps``) the oracle's answer at the stamped version; a scatter
  merge torn across two versions matches *no* single version and fails.

The :class:`FaultInjector` supplies the weather: worker kills and
restarts, injected follower delays and partitions at the log publisher,
log GC under a lagging consumer, and mid-traffic chunked rebalances.
:func:`generate_schedule` / :func:`run_campaign` tie both together into
a seeded, replayable campaign whose failure artifact (a JSON op/fault
schedule written to ``$REPRO_AUDIT_ARTIFACTS``) shrinks by deleting
ops, exactly like the consistency-harness op lists.
"""

from .campaign import (
    AUDIT_ARTIFACTS_ENV,
    generate_schedule,
    replay_artifact,
    run_campaign,
)
from .faults import FaultInjector
from .log import AuditLog, Violation

__all__ = [
    "AUDIT_ARTIFACTS_ENV",
    "AuditLog",
    "FaultInjector",
    "Violation",
    "generate_schedule",
    "replay_artifact",
    "run_campaign",
]
