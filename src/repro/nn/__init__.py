"""Neural-network substrate: a from-scratch reverse-mode autograd on numpy.

The paper trains its models (R-GCN node classifiers, LSTM-CRF baselines, a
seq2seq summarizer, the Duet matching network, GBDT relation classifiers)
with standard deep-learning frameworks.  None are available offline, so this
package implements the needed subset: a small tape-based autograd engine
(:mod:`repro.nn.autograd`), layers built on it, and optimizers.

Model dimensions in the paper are laptop-sized (5-layer R-GCN with hidden 32,
B=5 bases; BiLSTM hidden 25), so pure-numpy training is fast enough for the
full benchmark suite.
"""

from .autograd import Tensor, no_grad
from . import functional
from .layers import Module, Parameter, Linear, Embedding, Sequential, ReLU, Tanh, Dropout
from .optim import SGD, Adam
from .lstm import LSTMCell, LSTM, BiLSTM
from .crf import LinearChainCRF
from .rgcn import RGCNLayer, RGCN
from .attention import DotAttention
from .seq2seq import Seq2SeqSummarizer
from .duet import DuetMatcher
from .gbdt import GradientBoostedClassifier, DecisionTreeRegressor
from .data import batch_indices, epoch_order, stratified_split, pad_sequences
from .checkpoint import save_checkpoint, load_checkpoint

__all__ = [
    "Tensor",
    "no_grad",
    "functional",
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "Sequential",
    "ReLU",
    "Tanh",
    "Dropout",
    "SGD",
    "Adam",
    "LSTMCell",
    "LSTM",
    "BiLSTM",
    "LinearChainCRF",
    "RGCNLayer",
    "RGCN",
    "DotAttention",
    "Seq2SeqSummarizer",
    "DuetMatcher",
    "GradientBoostedClassifier",
    "DecisionTreeRegressor",
    "batch_indices",
    "epoch_order",
    "stratified_split",
    "pad_sequences",
    "save_checkpoint",
    "load_checkpoint",
]
