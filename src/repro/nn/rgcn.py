"""Relational Graph Convolutional Network with basis decomposition.

Implements Eq. (5)-(6) of the paper (following Schlichtkrull et al. 2017):

    h_v^{l+1} = sigma( sum_r sum_{w in N_r(v)} (1/c_vw) W_r^l h_w^l + W_0^l h_v^l )

with basis decomposition  W_r^l = sum_b a_{rb}^l V_b^l  so the per-relation
parameter count stays bounded as |R| grows (QTIGs have a relation per
dependency label and direction).

The graph is presented as a list of per-relation *normalised* adjacency
matrices A_r (dense; QTIGs have at most a few hundred nodes), so one layer is
``sigma( sum_r A_r H W_r + H W_0 )``.
"""

from __future__ import annotations

import numpy as np

from .autograd import Tensor, stack
from .layers import Module, Parameter, _glorot


def normalize_adjacency(adj: np.ndarray) -> np.ndarray:
    """Row-normalise an adjacency matrix (c_vw = |N_r(v)|, paper default)."""
    adj = np.asarray(adj, dtype=np.float64)
    deg = adj.sum(axis=1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        norm = np.where(deg > 0, adj / deg, 0.0)
    return norm


class RGCNLayer(Module):
    """One R-GCN layer with basis decomposition over ``num_relations``."""

    def __init__(self, in_dim: int, out_dim: int, num_relations: int,
                 num_bases: int, rng: "np.random.Generator | None" = None,
                 activation: str = "relu") -> None:
        rng = rng or np.random.default_rng(0)
        if num_bases < 1:
            raise ValueError("num_bases must be >= 1")
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.num_relations = num_relations
        self.num_bases = min(num_bases, num_relations) if num_relations > 0 else num_bases
        # V_b in R^{B x in x out}; a_{rb} in R^{R x B}; W_0 self-loop.
        self.bases = Parameter(
            np.stack([_glorot(rng, in_dim, out_dim) for _ in range(self.num_bases)])
        )
        self.coefficients = Parameter(rng.standard_normal((num_relations, self.num_bases)) * 0.3)
        self.self_weight = Parameter(_glorot(rng, in_dim, out_dim))
        self.bias = Parameter(np.zeros(out_dim))
        if activation not in ("relu", "tanh", "none"):
            raise ValueError(f"unknown activation {activation!r}")
        self.activation = activation

    def forward(self, h: Tensor, adjacencies: "list[np.ndarray]") -> Tensor:
        """Apply the layer.

        Args:
            h: node features (N, in_dim).
            adjacencies: per-relation row-normalised adjacency matrices
                (each (N, N)); length must equal ``num_relations``.
        """
        if len(adjacencies) != self.num_relations:
            raise ValueError(
                f"expected {self.num_relations} adjacency matrices, got {len(adjacencies)}"
            )
        out = h @ self.self_weight + self.bias
        # Flatten bases to (B, in*out) so W_r for all r comes from one matmul.
        bases_flat = self.bases.reshape(self.num_bases, self.in_dim * self.out_dim)
        weights_flat = self.coefficients @ bases_flat  # (R, in*out)
        for r, adj in enumerate(adjacencies):
            if not adj.any():
                continue
            w_r = weights_flat[r].reshape(self.in_dim, self.out_dim)
            out = out + Tensor(adj) @ (h @ w_r)
        if self.activation == "relu":
            return out.relu()
        if self.activation == "tanh":
            return out.tanh()
        return out


class RGCN(Module):
    """Multi-layer R-GCN stack ending in per-node logits.

    This is the encoder + node classifier of the GCTSP-Net: the paper stacks
    5 layers of hidden size 32 with B=5 bases and a per-node softmax output.
    """

    def __init__(self, in_dim: int, hidden_dim: int, num_classes: int,
                 num_relations: int, num_layers: int = 5, num_bases: int = 5,
                 rng: "np.random.Generator | None" = None) -> None:
        rng = rng or np.random.default_rng(0)
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.layers: list[RGCNLayer] = []
        dim = in_dim
        for _ in range(num_layers):
            self.layers.append(
                RGCNLayer(dim, hidden_dim, num_relations, num_bases, rng=rng)
            )
            dim = hidden_dim
        self.output = RGCNLayer(dim, num_classes, num_relations, num_bases,
                                rng=rng, activation="none")

    def forward(self, features: "Tensor | np.ndarray",
                adjacencies: "list[np.ndarray]") -> Tensor:
        h = features if isinstance(features, Tensor) else Tensor(features)
        for layer in self.layers:
            h = layer(h, adjacencies)
        return self.output(h, adjacencies)
