"""Optimizers: SGD with momentum and Adam."""

from __future__ import annotations

import numpy as np

from .layers import Parameter


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, params, lr: float) -> None:
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def clip_grad_norm(self, max_norm: float) -> float:
        """Scale all gradients so their global L2 norm is <= ``max_norm``.

        Returns the pre-clip norm.
        """
        total = 0.0
        for p in self.params:
            if p.grad is not None:
                total += float((p.grad ** 2).sum())
        norm = np.sqrt(total)
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for p in self.params:
                if p.grad is not None:
                    p.grad *= scale
        return norm

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with decoupled-style weight decay."""

    def __init__(self, params, lr: float = 0.001, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * p.data
            p.data -= self.lr * update
