"""LSTM, BiLSTM sequence encoders built on the autograd engine.

Used by the LSTM-CRF baselines (paper Section 5.2: BiLSTM hidden size 25 per
direction over 200-d word embeddings) and by the TextSummary seq2seq model.
"""

from __future__ import annotations

import numpy as np

from .autograd import Tensor, concat, stack
from .layers import Module, Parameter, _glorot


class LSTMCell(Module):
    """A single LSTM cell with fused gate weights."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: "np.random.Generator | None" = None) -> None:
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Parameter(_glorot(rng, input_size, 4 * hidden_size))
        self.w_hh = Parameter(_glorot(rng, hidden_size, 4 * hidden_size))
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget-gate bias = 1
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, h: Tensor, c: Tensor) -> tuple[Tensor, Tensor]:
        """One step. ``x``: (D,), ``h``/``c``: (H,). Returns (h', c')."""
        gates = x @ self.w_ih + h @ self.w_hh + self.bias
        hs = self.hidden_size
        i = gates[0:hs].sigmoid()
        f = gates[hs : 2 * hs].sigmoid()
        g = gates[2 * hs : 3 * hs].tanh()
        o = gates[3 * hs : 4 * hs].sigmoid()
        c_new = f * c + i * g
        h_new = o * c_new.tanh()
        return h_new, c_new


class LSTM(Module):
    """Unidirectional LSTM over a (T, D) sequence; returns (T, H)."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: "np.random.Generator | None" = None, reverse: bool = False) -> None:
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size
        self.reverse = reverse

    def forward(self, inputs: Tensor) -> Tensor:
        seq_len = inputs.shape[0]
        h = Tensor(np.zeros(self.hidden_size))
        c = Tensor(np.zeros(self.hidden_size))
        order = range(seq_len - 1, -1, -1) if self.reverse else range(seq_len)
        outputs: list[Tensor | None] = [None] * seq_len
        for t in order:
            h, c = self.cell(inputs[t], h, c)
            outputs[t] = h
        return stack([o for o in outputs], axis=0)  # type: ignore[misc]

    def final_state(self, inputs: Tensor) -> tuple[Tensor, Tensor]:
        """Run the sequence and return the final (h, c)."""
        seq_len = inputs.shape[0]
        h = Tensor(np.zeros(self.hidden_size))
        c = Tensor(np.zeros(self.hidden_size))
        order = range(seq_len - 1, -1, -1) if self.reverse else range(seq_len)
        for t in order:
            h, c = self.cell(inputs[t], h, c)
        return h, c


class BiLSTM(Module):
    """Bidirectional LSTM; concatenates forward/backward states to (T, 2H)."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: "np.random.Generator | None" = None) -> None:
        rng = rng or np.random.default_rng(0)
        self.forward_lstm = LSTM(input_size, hidden_size, rng=rng, reverse=False)
        self.backward_lstm = LSTM(input_size, hidden_size, rng=rng, reverse=True)
        self.hidden_size = hidden_size

    def forward(self, inputs: Tensor) -> Tensor:
        fw = self.forward_lstm(inputs)
        bw = self.backward_lstm(inputs)
        return concat([fw, bw], axis=1)
