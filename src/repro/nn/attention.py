"""Dot-product attention for the seq2seq TextSummary baseline."""

from __future__ import annotations

import numpy as np

from .autograd import Tensor
from .functional import softmax
from .layers import Module, Linear


class DotAttention(Module):
    """Luong-style general attention: score = q^T W k."""

    def __init__(self, query_dim: int, key_dim: int,
                 rng: "np.random.Generator | None" = None) -> None:
        self.project = Linear(query_dim, key_dim, rng=rng, bias=False)

    def forward(self, query: Tensor, keys: Tensor) -> tuple[Tensor, Tensor]:
        """Attend ``query`` (Q,) over ``keys`` (T, K).

        Returns:
            (context, weights): context (K,) and attention weights (T,).
        """
        projected = self.project(query)  # (K,)
        scores = keys @ projected  # (T,)
        weights = softmax(scores, axis=0)
        context = weights @ keys  # (K,)
        return context, weights
