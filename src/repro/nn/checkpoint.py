"""Model checkpointing: save/load Module state dicts as ``.npz`` files.

Production GIANT serves trained models behind RPC workers; being able to
persist and reload trained GCTSP-Nets (and any other ``repro.nn.Module``)
is the reproduction's equivalent — train once in the benchmark harness,
reuse everywhere.
"""

from __future__ import annotations

import numpy as np

from .layers import Module


def save_checkpoint(module: Module, path: str) -> None:
    """Write all parameters of ``module`` to a compressed ``.npz`` file."""
    state = module.state_dict()
    if not state:
        raise ValueError("module has no parameters to save")
    np.savez_compressed(path, **state)


def load_checkpoint(module: Module, path: str) -> Module:
    """Load parameters saved by :func:`save_checkpoint` into ``module``.

    The module must already have the same architecture (shapes are
    validated by ``load_state_dict``).
    """
    with np.load(path) as data:
        module.load_state_dict({key: data[key] for key in data.files})
    return module
