"""Gradient-boosted decision trees for binary classification.

The paper trains "a classifier such as GBDT based on manual features" for
concept-entity isA edges (Section 3.2).  This module implements the standard
algorithm: CART regression trees fit to the negative gradient of logistic
loss, with shrinkage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class _TreeNode:
    feature: int = -1
    threshold: float = 0.0
    left: "._TreeNode | None" = None
    right: "._TreeNode | None" = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeRegressor:
    """CART regression tree (variance reduction splits)."""

    def __init__(self, max_depth: int = 3, min_samples_leaf: int = 2) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._root: "._TreeNode | None" = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "DecisionTreeRegressor":
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be 2-D")
        if len(features) != len(targets):
            raise ValueError("features/targets length mismatch")
        self._root = self._build(features, targets, depth=0)
        return self

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _TreeNode:
        node = _TreeNode(value=float(y.mean()) if len(y) else 0.0)
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf or np.allclose(y, y[0]):
            return node
        best_gain = 0.0
        best = None
        parent_sse = float(((y - y.mean()) ** 2).sum())
        for feature in range(x.shape[1]):
            column = x[:, feature]
            values = np.unique(column)
            if len(values) < 2:
                continue
            thresholds = (values[:-1] + values[1:]) / 2.0
            # Cap candidate thresholds for speed on large feature sets.
            if len(thresholds) > 64:
                idx = np.linspace(0, len(thresholds) - 1, 64).astype(int)
                thresholds = thresholds[idx]
            for thr in thresholds:
                mask = column <= thr
                n_left = int(mask.sum())
                if n_left < self.min_samples_leaf or len(y) - n_left < self.min_samples_leaf:
                    continue
                left_y, right_y = y[mask], y[~mask]
                sse = float(((left_y - left_y.mean()) ** 2).sum()) + float(
                    ((right_y - right_y.mean()) ** 2).sum()
                )
                gain = parent_sse - sse
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best = (feature, float(thr), mask)
        if best is None:
            return node
        feature, thr, mask = best
        node.feature = feature
        node.threshold = thr
        node.left = self._build(x[mask], y[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], depth + 1)
        return node

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features[None, :]
        out = np.empty(len(features))
        for i, row in enumerate(features):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out


class GradientBoostedClassifier:
    """Binary GBDT with logistic loss.

    F_0 = log-odds prior; each stage fits a tree to the residual
    ``y - sigmoid(F)`` and is added with learning-rate shrinkage.
    """

    def __init__(self, n_estimators: int = 30, learning_rate: float = 0.2,
                 max_depth: int = 3, min_samples_leaf: int = 2) -> None:
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._trees: list[DecisionTreeRegressor] = []
        self._prior = 0.0

    @staticmethod
    def _sigmoid(x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "GradientBoostedClassifier":
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels, dtype=np.float64)
        if x.ndim != 2 or len(x) != len(y):
            raise ValueError("bad training data shapes")
        if len(np.unique(y)) < 2:
            # Degenerate single-class dataset: predict the prior only.
            pos = float(y.mean())
            self._prior = np.log((pos + 1e-9) / (1 - pos + 1e-9))
            self._trees = []
            return self
        pos = float(y.mean())
        self._prior = np.log(pos / (1.0 - pos))
        scores = np.full(len(y), self._prior)
        self._trees = []
        for _stage in range(self.n_estimators):
            residual = y - self._sigmoid(scores)
            tree = DecisionTreeRegressor(self.max_depth, self.min_samples_leaf)
            tree.fit(x, residual)
            update = tree.predict(x)
            scores = scores + self.learning_rate * update
            self._trees.append(tree)
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        x = np.asarray(features, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        scores = np.full(len(x), self._prior)
        for tree in self._trees:
            scores = scores + self.learning_rate * tree.predict(x)
        return scores

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return self._sigmoid(self.decision_function(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.decision_function(features) > 0.0).astype(np.int64)
