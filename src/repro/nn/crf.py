"""Linear-chain Conditional Random Field layer.

Provides the negative log-likelihood training objective (forward algorithm
with logsumexp, differentiable through the autograd engine) and Viterbi
decoding, as used by the LSTM-CRF baselines (Huang et al. 2015).
"""

from __future__ import annotations

import numpy as np

from .autograd import Tensor
from .layers import Module, Parameter


class LinearChainCRF(Module):
    """CRF over ``num_tags`` labels with learned transition scores.

    The transition matrix has two extra virtual states: ``start`` (index
    num_tags) and ``end`` (index num_tags + 1).
    """

    def __init__(self, num_tags: int, rng: "np.random.Generator | None" = None) -> None:
        rng = rng or np.random.default_rng(0)
        if num_tags < 1:
            raise ValueError("num_tags must be >= 1")
        self.num_tags = num_tags
        self.transitions = Parameter(rng.standard_normal((num_tags + 2, num_tags + 2)) * 0.01)

    @property
    def start_idx(self) -> int:
        return self.num_tags

    @property
    def end_idx(self) -> int:
        return self.num_tags + 1

    def _score_sequence(self, emissions: Tensor, tags: np.ndarray) -> Tensor:
        """Unnormalised score of a tag path given (T, C) emissions."""
        seq_len = emissions.shape[0]
        trans = self.transitions
        score = trans[self.start_idx, int(tags[0])] + emissions[0, int(tags[0])]
        for t in range(1, seq_len):
            score = score + trans[int(tags[t - 1]), int(tags[t])] + emissions[t, int(tags[t])]
        score = score + trans[int(tags[-1]), self.end_idx]
        return score

    def _partition(self, emissions: Tensor) -> Tensor:
        """Log partition function via the forward algorithm."""
        seq_len, num_tags = emissions.shape
        trans = self.transitions
        # alpha: (C,) log-scores of paths ending at each tag.
        alpha = trans[self.start_idx, 0 : self.num_tags] + emissions[0]
        trans_block = trans[0 : self.num_tags, 0 : self.num_tags]
        for t in range(1, seq_len):
            # scores[i, j] = alpha[i] + trans[i, j] + emission[t, j]
            scores = alpha.reshape(num_tags, 1) + trans_block + emissions[t].reshape(1, num_tags)
            alpha = scores.logsumexp(axis=0)
        final = alpha + trans[0 : self.num_tags, self.end_idx]
        return final.logsumexp(axis=0)

    def nll(self, emissions: Tensor, tags: "np.ndarray | list[int]") -> Tensor:
        """Negative log-likelihood of ``tags`` given emissions (T, C)."""
        tags = np.asarray(tags, dtype=np.int64)
        if emissions.shape[0] != len(tags):
            raise ValueError("emissions and tags length mismatch")
        if emissions.shape[0] == 0:
            raise ValueError("empty sequence")
        return self._partition(emissions) - self._score_sequence(emissions, tags)

    def decode(self, emissions: "Tensor | np.ndarray") -> list[int]:
        """Viterbi-decode the best tag sequence from (T, C) emissions."""
        em = emissions.data if isinstance(emissions, Tensor) else np.asarray(emissions)
        seq_len, num_tags = em.shape
        if seq_len == 0:
            return []
        trans = self.transitions.data
        trans_block = trans[0:num_tags, 0:num_tags]
        viterbi = trans[self.start_idx, 0:num_tags] + em[0]
        backpointers: list[np.ndarray] = []
        for t in range(1, seq_len):
            scores = viterbi[:, None] + trans_block + em[t][None, :]
            backpointers.append(scores.argmax(axis=0))
            viterbi = scores.max(axis=0)
        viterbi = viterbi + trans[0:num_tags, self.end_idx]
        best = int(viterbi.argmax())
        path = [best]
        for bp in reversed(backpointers):
            best = int(bp[best])
            path.append(best)
        path.reverse()
        return path
