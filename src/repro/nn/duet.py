"""Duet-style matching network for event/topic document tagging.

The paper (Section 4, "Document Tagging") gates event/topic tags with the
Duet model (Mitra et al. 2017), which combines a *local* exact-match signal
with a *distributed* semantic-representation signal.  This reproduction
implements both sub-networks at reduced width:

* local: a binary interaction matrix (phrase token == doc token) is pooled
  into per-phrase-token match statistics and passed through an MLP;
* distributed: mean word-embedding encodings of phrase and document are
  combined via elementwise product (Hadamard match) and an MLP.

The two scores are summed into a single matching logit.
"""

from __future__ import annotations

import numpy as np

from .autograd import Tensor
from .functional import binary_cross_entropy_with_logits
from .layers import Module, Embedding, Linear
from .optim import Adam


class DuetMatcher(Module):
    """Binary matcher: does this attention phrase match this document text?"""

    def __init__(self, vocab: "dict[str, int]", embed_dim: int = 16,
                 hidden: int = 16, max_phrase_len: int = 12,
                 rng: "np.random.Generator | None" = None) -> None:
        rng = rng or np.random.default_rng(0)
        self.vocab = dict(vocab)
        self.unk = len(self.vocab)
        self.max_phrase_len = max_phrase_len
        self.embedding = Embedding(len(self.vocab) + 1, embed_dim, rng=rng)
        # Local sub-network over pooled interaction features (3 per slot).
        self.local_fc1 = Linear(3 * max_phrase_len, hidden, rng=rng)
        self.local_fc2 = Linear(hidden, 1, rng=rng)
        # Distributed sub-network over Hadamard-matched encodings.
        self.dist_fc1 = Linear(embed_dim, hidden, rng=rng)
        self.dist_fc2 = Linear(hidden, 1, rng=rng)

    def _ids(self, tokens: list[str]) -> list[int]:
        return [self.vocab.get(t, self.unk) for t in tokens]

    def _local_features(self, phrase: list[str], doc: list[str]) -> np.ndarray:
        """Pooled exact-match statistics per phrase-token slot."""
        feats = np.zeros(3 * self.max_phrase_len)
        if not doc:
            return feats
        doc_positions = {}
        for pos, tok in enumerate(doc):
            doc_positions.setdefault(tok, []).append(pos)
        n = len(doc)
        for slot, tok in enumerate(phrase[: self.max_phrase_len]):
            positions = doc_positions.get(tok, [])
            base = 3 * slot
            feats[base] = 1.0 if positions else 0.0
            feats[base + 1] = len(positions) / n
            feats[base + 2] = 1.0 - positions[0] / n if positions else 0.0
        return feats

    def score(self, phrase: list[str], doc: list[str]) -> Tensor:
        """Matching logit for (phrase tokens, document tokens)."""
        local = Tensor(self._local_features(phrase, doc))
        local_score = self.local_fc2(self.local_fc1(local).relu())

        phrase_ids = self._ids(phrase) or [self.unk]
        doc_ids = self._ids(doc) or [self.unk]
        phrase_enc = self.embedding(phrase_ids).mean(axis=0)
        doc_enc = self.embedding(doc_ids).mean(axis=0)
        hadamard = phrase_enc * doc_enc
        dist_score = self.dist_fc2(self.dist_fc1(hadamard).relu())
        return (local_score + dist_score)[0]

    def predict(self, phrase: list[str], doc: list[str]) -> bool:
        """True if the phrase is predicted to match the document."""
        from .autograd import no_grad

        with no_grad():
            return self.score(phrase, doc).item() > 0.0

    def fit(self, examples: "list[tuple[list[str], list[str], int]]",
            epochs: int = 10, lr: float = 0.01,
            rng: "np.random.Generator | None" = None) -> list[float]:
        """Train on (phrase, doc, label) triples; returns per-epoch losses."""
        if not examples:
            raise ValueError("no training examples")
        rng = rng or np.random.default_rng(0)
        optimizer = Adam(self.parameters(), lr=lr)
        losses = []
        indices = np.arange(len(examples))
        for _epoch in range(epochs):
            rng.shuffle(indices)
            total = 0.0
            for i in indices:
                phrase, doc, label = examples[i]
                optimizer.zero_grad()
                logit = self.score(phrase, doc)
                loss = binary_cross_entropy_with_logits(
                    logit.reshape(1), np.asarray([float(label)])
                )
                loss.backward()
                optimizer.step()
                total += loss.item()
            losses.append(total / len(examples))
        return losses
