"""Seq2seq summarizer with attention — the TextSummary baseline (Table 6).

The paper configures TextSummary as: 200-d word embeddings, two-layer BiLSTM
encoder (256 hidden per direction), one-layer LSTM decoder (512 hidden) with
attention and beam-size-10 decoding.  This reproduction keeps the
architecture but scales widths down (numpy training); the benchmark harness
reports its (expectedly poor — paper EM 0.0047) phrase-generation scores.
"""

from __future__ import annotations

import numpy as np

from .autograd import Tensor, concat, no_grad
from .functional import cross_entropy, log_softmax
from .attention import DotAttention
from .layers import Module, Embedding, Linear
from .lstm import BiLSTM, LSTMCell

PAD, SOS, EOS, UNK = 0, 1, 2, 3
SPECIAL_TOKENS = ("<pad>", "<sos>", "<eos>", "<unk>")


class Vocabulary:
    """Token <-> id mapping with the four special symbols reserved."""

    def __init__(self) -> None:
        self._token_to_id: dict[str, int] = {t: i for i, t in enumerate(SPECIAL_TOKENS)}
        self._id_to_token: list[str] = list(SPECIAL_TOKENS)

    def __len__(self) -> int:
        return len(self._id_to_token)

    def add(self, token: str) -> int:
        idx = self._token_to_id.get(token)
        if idx is None:
            idx = len(self._id_to_token)
            self._token_to_id[token] = idx
            self._id_to_token.append(token)
        return idx

    def fit(self, corpus: "list[list[str]]") -> "Vocabulary":
        for sent in corpus:
            for tok in sent:
                self.add(tok)
        return self

    def encode(self, tokens: list[str]) -> list[int]:
        return [self._token_to_id.get(t, UNK) for t in tokens]

    def decode(self, ids: list[int]) -> list[str]:
        return [self._id_to_token[i] for i in ids if i >= len(SPECIAL_TOKENS)]


class Seq2SeqSummarizer(Module):
    """Encoder-decoder with attention generating a phrase from query+titles."""

    def __init__(self, vocab: Vocabulary, embed_dim: int = 32, hidden: int = 32,
                 rng: "np.random.Generator | None" = None) -> None:
        rng = rng or np.random.default_rng(0)
        self.vocab = vocab
        self.embedding = Embedding(len(vocab), embed_dim, rng=rng)
        self.encoder = BiLSTM(embed_dim, hidden, rng=rng)
        self.decoder_cell = LSTMCell(embed_dim + 2 * hidden, hidden, rng=rng)
        self.attention = DotAttention(hidden, 2 * hidden, rng=rng)
        self.out = Linear(hidden + 2 * hidden, len(vocab), rng=rng)
        self.hidden = hidden

    def _encode(self, input_ids: list[int]) -> Tensor:
        embedded = self.embedding(input_ids)
        return self.encoder(embedded)

    def loss(self, input_ids: list[int], target_ids: list[int]) -> Tensor:
        """Teacher-forced cross-entropy over the target sequence."""
        if not input_ids or not target_ids:
            raise ValueError("empty input or target")
        memory = self._encode(input_ids)  # (T, 2H)
        h = Tensor(np.zeros(self.hidden))
        c = Tensor(np.zeros(self.hidden))
        context = Tensor(np.zeros(2 * self.hidden))
        logits_steps = []
        teacher = [SOS] + list(target_ids)
        targets = list(target_ids) + [EOS]
        for tok in teacher:
            emb = self.embedding([tok])[0]
            step_in = concat([emb, context], axis=0)
            h, c = self.decoder_cell(step_in, h, c)
            context, _w = self.attention(h, memory)
            logits_steps.append(self.out(concat([h, context], axis=0)))
        from .autograd import stack

        logits = stack(logits_steps, axis=0)
        return cross_entropy(logits, np.asarray(targets))

    def generate(self, input_ids: list[int], max_len: int = 12,
                 beam_size: int = 4) -> list[int]:
        """Beam-search decode a phrase (token ids without specials)."""
        if not input_ids:
            return []
        with no_grad():
            memory = self._encode(input_ids)
            zero_h = np.zeros(self.hidden)
            zero_ctx = np.zeros(2 * self.hidden)
            # Beam entries: (score, token_ids, h, c, context, finished)
            beams = [(0.0, [], zero_h, zero_h.copy(), zero_ctx, False)]
            for _step in range(max_len + 1):
                candidates = []
                for score, toks, h_np, c_np, ctx_np, finished in beams:
                    if finished:
                        candidates.append((score, toks, h_np, c_np, ctx_np, True))
                        continue
                    prev = toks[-1] if toks else SOS
                    emb = self.embedding([prev])[0]
                    step_in = concat([emb, Tensor(ctx_np)], axis=0)
                    h, c = self.decoder_cell(step_in, Tensor(h_np), Tensor(c_np))
                    ctx, _w = self.attention(h, memory)
                    logits = self.out(concat([h, ctx], axis=0))
                    logp = log_softmax(logits, axis=0).data
                    top = np.argsort(-logp)[: beam_size + 1]
                    for tok_id in top:
                        tok_id = int(tok_id)
                        if tok_id in (PAD, SOS, UNK):
                            continue
                        new_score = score + float(logp[tok_id])
                        if tok_id == EOS:
                            candidates.append((new_score, toks, h.data, c.data, ctx.data, True))
                        else:
                            candidates.append(
                                (new_score, toks + [tok_id], h.data, c.data, ctx.data, False)
                            )
                candidates.sort(key=lambda b: -b[0])
                beams = candidates[:beam_size]
                if all(b[5] for b in beams):
                    break
            best = max(beams, key=lambda b: b[0] / max(1, len(b[1])))
            return best[1]

    def summarize(self, tokens: list[str], max_len: int = 12) -> list[str]:
        """Convenience wrapper: tokens in, generated phrase tokens out."""
        ids = self.vocab.encode(tokens)
        return self.vocab.decode(self.generate(ids, max_len=max_len))
