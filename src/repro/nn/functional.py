"""Functional building blocks: softmax, losses.

All functions take and return :class:`repro.nn.autograd.Tensor`.
"""

from __future__ import annotations

import numpy as np

from .autograd import Tensor


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (stable, built from autograd primitives)."""
    lse = x.logsumexp(axis=axis, keepdims=True)
    return (x - lse).exp()


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis``."""
    return x - x.logsumexp(axis=axis, keepdims=True)


def cross_entropy(logits: Tensor, targets: "np.ndarray | list[int]") -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and integer targets (N,)."""
    targets = np.asarray(targets, dtype=np.int64)
    logp = log_softmax(logits, axis=-1)
    n = logits.shape[0]
    picked = logp[np.arange(n), targets]
    return -picked.mean()


def binary_cross_entropy_with_logits(
    logits: Tensor, targets: "np.ndarray | list[float]",
    pos_weight: "float | None" = None,
) -> Tensor:
    """Mean BCE between raw logits and {0,1} targets.

    Uses the stable formulation ``max(x,0) - x*y + log(1+exp(-|x|))`` via the
    identity BCE(x, y) = logsumexp([0, x]) - x*y, expressed in autograd ops.

    Args:
        logits: raw scores, any shape.
        targets: same shape, values in {0, 1}.
        pos_weight: optional multiplier on positive-class terms; GIANT's node
            classification is heavily imbalanced (few phrase tokens per QTIG)
            so up-weighting positives speeds convergence.
    """
    y = np.asarray(targets, dtype=np.float64)
    zeros = Tensor(np.zeros_like(logits.data))
    from .autograd import stack

    # log(1 + exp(x)) computed stably as logsumexp over [0, x].
    pair = stack([zeros, logits], axis=0)
    log1pexp = pair.logsumexp(axis=0)
    loss = log1pexp - logits * y
    if pos_weight is not None:
        weights = np.where(y > 0.5, pos_weight, 1.0)
        loss = loss * weights
        return loss.sum() * (1.0 / weights.sum())
    return loss.mean()


def mse(pred: Tensor, targets: "np.ndarray | list[float]") -> Tensor:
    """Mean squared error."""
    y = np.asarray(targets, dtype=np.float64)
    diff = pred - y
    return (diff * diff).mean()


def hinge_pair_loss(pos_dist: Tensor, neg_dist: Tensor, margin: float = 1.0) -> Tensor:
    """Mean hinge loss ``max(0, margin + pos - neg)`` over paired distances.

    Used for the entity correlate-embedding training (paper Section 3.2,
    "Edges between Entities").
    """
    raw = pos_dist - neg_dist + margin
    return raw.relu().mean()
