"""Module/Parameter abstractions and basic layers."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .autograd import Tensor


class Parameter(Tensor):
    """A tensor that is registered as trainable."""

    def __init__(self, data: np.ndarray) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class with recursive parameter discovery.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; :meth:`parameters` walks them recursively.
    """

    training: bool = True

    def parameters(self) -> Iterator[Parameter]:
        seen: set[int] = set()
        for value in self.__dict__.values():
            yield from _collect_params(value, seen)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in self.__dict__.values():
            for mod in _collect_modules(value):
                mod.training = training

    def num_parameters(self) -> int:
        return sum(p.data.size for p in self.parameters())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def state_dict(self) -> "dict[str, np.ndarray]":
        """Flat mapping of parameter path -> array copy (for checkpoints)."""
        out: dict[str, np.ndarray] = {}
        _collect_state("", self, out)
        return out

    def load_state_dict(self, state: "dict[str, np.ndarray]") -> None:
        """Load arrays saved by :meth:`state_dict` (shapes must match)."""
        current: dict[str, np.ndarray] = {}
        _collect_state("", self, current)
        missing = set(current) - set(state)
        if missing:
            raise KeyError(f"missing parameters in state dict: {sorted(missing)}")
        params: dict[str, Parameter] = {}
        _collect_param_refs("", self, params)
        for name, param in params.items():
            array = np.asarray(state[name], dtype=np.float64)
            if array.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {array.shape} vs {param.data.shape}"
                )
            param.data = array.copy()


def _collect_params(value, seen: set[int]) -> Iterator[Parameter]:
    if isinstance(value, Parameter):
        if id(value) not in seen:
            seen.add(id(value))
            yield value
    elif isinstance(value, Module):
        for sub in value.__dict__.values():
            yield from _collect_params(sub, seen)
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _collect_params(item, seen)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _collect_params(item, seen)


def _collect_modules(value) -> Iterator["Module"]:
    if isinstance(value, Module):
        yield value
        for sub in value.__dict__.values():
            yield from _collect_modules(sub)
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _collect_modules(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _collect_modules(item)


def _walk_named(prefix: str, value, visit) -> None:
    if isinstance(value, Parameter):
        visit(prefix, value)
    elif isinstance(value, Module):
        for name, sub in value.__dict__.items():
            _walk_named(f"{prefix}.{name}" if prefix else name, sub, visit)
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            _walk_named(f"{prefix}[{i}]", item, visit)
    elif isinstance(value, dict):
        for key, item in value.items():
            _walk_named(f"{prefix}[{key}]", item, visit)


def _collect_state(prefix: str, module: "Module", out: "dict[str, np.ndarray]") -> None:
    _walk_named(prefix, module, lambda name, p: out.__setitem__(name, p.data.copy()))


def _collect_param_refs(prefix: str, module: "Module", out: "dict[str, Parameter]") -> None:
    _walk_named(prefix, module, lambda name, p: out.__setitem__(name, p))


def _glorot(rng: np.random.Generator, fan_in: int, fan_out: int,
            shape: "tuple[int, ...] | None" = None) -> np.ndarray:
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape or (fan_in, fan_out))


class Linear(Module):
    """Affine layer ``x @ W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: "np.random.Generator | None" = None, bias: bool = True) -> None:
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(_glorot(rng, in_features, out_features))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, dim: int,
                 rng: "np.random.Generator | None" = None) -> None:
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(rng.standard_normal((num_embeddings, dim)) * 0.1)

    def forward(self, ids: "np.ndarray | list[int]") -> Tensor:
        return self.weight.gather_rows(np.asarray(ids, dtype=np.int64))


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, rng: "np.random.Generator | None" = None) -> None:
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        mask = (self._rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * Tensor(mask)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for mod in self.modules:
            x = mod(x)
        return x
