"""Batching and split utilities for the numpy training loops.

The models here train example-by-example (graphs and variable-length
sequences don't batch naturally without padding machinery), but epoch
shuffling, mini-batch index iteration, and stratified splitting recur in
every training loop and baseline — this module centralises them.
"""

from __future__ import annotations

from typing import Iterator, Sequence, TypeVar

import numpy as np

from ..config import make_rng

T = TypeVar("T")


def batch_indices(n: int, batch_size: int,
                  rng: "np.random.Generator | int | None" = None,
                  shuffle: bool = True) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(n)`` in batches.

    Args:
        n: dataset size.
        batch_size: maximum batch size (last batch may be smaller).
        rng: generator or seed for shuffling.
        shuffle: randomise order each call.
    """
    if n <= 0:
        return
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    order = np.arange(n)
    if shuffle:
        make_rng(rng).shuffle(order)
    for start in range(0, n, batch_size):
        yield order[start : start + batch_size]


def epoch_order(n: int, epoch: int, seed: int = 0) -> np.ndarray:
    """Deterministic per-epoch shuffle (same seed + epoch -> same order)."""
    rng = np.random.default_rng(np.random.SeedSequence([seed, epoch]))
    order = np.arange(n)
    rng.shuffle(order)
    return order


def stratified_split(items: "Sequence[T]", labels: "Sequence",
                     test_frac: float = 0.2,
                     rng: "np.random.Generator | int | None" = None
                     ) -> tuple[list[T], list[T]]:
    """Split items into train/test keeping per-label proportions.

    Every label with at least two items contributes at least one item to
    each side when the fraction allows.
    """
    if len(items) != len(labels):
        raise ValueError("items/labels length mismatch")
    if not 0.0 < test_frac < 1.0:
        raise ValueError("test_frac must be in (0, 1)")
    rng = make_rng(rng)
    by_label: dict = {}
    for idx, label in enumerate(labels):
        by_label.setdefault(label, []).append(idx)
    train_idx: list[int] = []
    test_idx: list[int] = []
    for label in sorted(by_label, key=str):
        indices = np.array(by_label[label])
        rng.shuffle(indices)
        n_test = int(round(len(indices) * test_frac))
        if len(indices) >= 2:
            n_test = min(max(n_test, 1), len(indices) - 1)
        test_idx.extend(indices[:n_test].tolist())
        train_idx.extend(indices[n_test:].tolist())
    return ([items[i] for i in sorted(train_idx)],
            [items[i] for i in sorted(test_idx)])


def pad_sequences(sequences: "list[list[int]]", pad_value: int = 0
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Pad integer sequences to a (N, max_len) matrix + boolean mask."""
    if not sequences:
        return np.zeros((0, 0), dtype=np.int64), np.zeros((0, 0), dtype=bool)
    max_len = max(len(s) for s in sequences)
    out = np.full((len(sequences), max_len), pad_value, dtype=np.int64)
    mask = np.zeros((len(sequences), max_len), dtype=bool)
    for i, seq in enumerate(sequences):
        out[i, : len(seq)] = seq
        mask[i, : len(seq)] = True
    return out, mask
