"""Minimal reverse-mode automatic differentiation over numpy arrays.

A :class:`Tensor` wraps an ``ndarray`` and records the operations applied to
it; :meth:`Tensor.backward` walks the tape in reverse topological order and
accumulates gradients.  The op set is exactly what the GIANT models need:
elementwise arithmetic with broadcasting, matmul, nonlinearities, reductions,
indexing/gather, concat/stack, softmax/log-softmax and logsumexp (for the
CRF forward algorithm).

This is intentionally a *small* engine — no views, no in-place ops, no
device abstraction — optimised for clarity and correctness (gradients are
checked against finite differences in the test suite).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable

import numpy as np

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling tape recording (inference mode)."""
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An autograd tensor.

    Attributes:
        data: the underlying float64 ndarray.
        grad: accumulated gradient (same shape as data), or None.
        requires_grad: whether this tensor participates in autograd.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(
        self,
        data: "np.ndarray | float | int | list",
        requires_grad: bool = False,
        _parents: "tuple[Tensor, ...]" = (),
        _backward: "Callable[[np.ndarray], None] | None" = None,
    ) -> None:
        if isinstance(data, Tensor):
            raise TypeError("cannot wrap a Tensor in a Tensor")
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = requires_grad and _GRAD_ENABLED
        self.grad: "np.ndarray | None" = None
        self._parents = _parents if self.requires_grad or _parents else ()
        self._backward = _backward

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad})"

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    # ------------------------------------------------------------------
    # graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: "tuple[Tensor, ...]",
        backward: "Callable[[np.ndarray], None]",
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: "np.ndarray | None" = None) -> None:
        """Backpropagate from this tensor (defaults to d(self)/d(self)=1)."""
        if not self.requires_grad:
            raise RuntimeError("called backward on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without grad requires a scalar tensor")
            grad = np.ones_like(self.data)

        # Topological sort of the tape.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(other: "Tensor | float | int | np.ndarray") -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other):
        other = Tensor._coerce(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.data.shape))

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(data, (self,), backward)

    def __sub__(self, other):
        return self + (-Tensor._coerce(other))

    def __rsub__(self, other):
        return Tensor._coerce(other) + (-self)

    def __mul__(self, other):
        other = Tensor._coerce(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = Tensor._coerce(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data ** 2), other.data.shape)
                )

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other):
        return Tensor._coerce(other) / self

    def __pow__(self, exponent: float):
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other):
        other = Tensor._coerce(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if self.data.ndim == 2
                                     else grad * other.data)
                else:
                    g = grad @ other.data.swapaxes(-1, -2)
                    self._accumulate(_unbroadcast(g, self.data.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad) if other.data.ndim == 2
                                      else grad * self.data)
                else:
                    g = self.data.swapaxes(-1, -2) @ grad
                    other._accumulate(_unbroadcast(g, other.data.shape))

        return Tensor._make(data, (self, other), backward)

    # ------------------------------------------------------------------
    # nonlinearities
    # ------------------------------------------------------------------
    def exp(self):
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self):
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def tanh(self):
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data ** 2))

        return Tensor._make(data, (self,), backward)

    def sigmoid(self):
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def relu(self):
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis: "int | None" = None, keepdims: bool = False):
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.data.shape).copy())

        return Tensor._make(data, (self,), backward)

    def mean(self, axis: "int | None" = None, keepdims: bool = False):
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def logsumexp(self, axis: int = -1, keepdims: bool = False):
        """Numerically stable log-sum-exp along ``axis``."""
        m = self.data.max(axis=axis, keepdims=True)
        shifted = self.data - m
        sum_exp = np.exp(shifted).sum(axis=axis, keepdims=True)
        data_keep = m + np.log(sum_exp)
        softmax = np.exp(shifted) / sum_exp
        data = data_keep if keepdims else np.squeeze(data_keep, axis=axis)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad if keepdims else np.expand_dims(grad, axis)
            self._accumulate(g * softmax)

        return Tensor._make(data, (self,), backward)

    def max(self, axis: int = -1):
        """Max along axis (gradient flows to the argmax element)."""
        idx = self.data.argmax(axis=axis)
        data = self.data.max(axis=axis)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.zeros_like(self.data)
            expanded = np.expand_dims(idx, axis)
            np.put_along_axis(g, expanded, np.expand_dims(grad, axis), axis=axis)
            self._accumulate(g)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int):
        data = self.data.reshape(*shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.data.shape))

        return Tensor._make(data, (self,), backward)

    @property
    def T(self):
        return self.transpose()

    def transpose(self):
        data = self.data.T

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.T)

        return Tensor._make(data, (self,), backward)

    def __getitem__(self, key):
        data = self.data[key]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                g = np.zeros_like(self.data)
                np.add.at(g, key, grad)
                self._accumulate(g)

        return Tensor._make(data, (self,), backward)

    def gather_rows(self, indices: "np.ndarray | list[int]"):
        """Row gather: select ``self[indices]`` with scatter-add backward.

        This is the embedding-lookup primitive.
        """
        idx = np.asarray(indices, dtype=np.int64)
        data = self.data[idx]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                g = np.zeros_like(self.data)
                np.add.at(g, idx, grad)
                self._accumulate(g)

        return Tensor._make(data, (self,), backward)


# ----------------------------------------------------------------------
# free functions building multi-parent nodes
# ----------------------------------------------------------------------
def concat(tensors: "Iterable[Tensor]", axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``."""
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                sl = [slice(None)] * grad.ndim
                sl[axis] = slice(start, stop)
                t._accumulate(grad[tuple(sl)])

    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: "Iterable[Tensor]", axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = list(tensors)
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.split(grad, len(tensors), axis=axis)
        for t, g in zip(tensors, slices):
            if t.requires_grad:
                t._accumulate(np.squeeze(g, axis=axis))

    return Tensor._make(data, tuple(tensors), backward)
