"""Evaluation: metrics (EM / token-F1 / COV, macro/micro/weighted F1) and
table/figure rendering helpers for the benchmark harness."""

from .metrics import (
    exact_match,
    token_f1,
    evaluate_phrases,
    multiclass_f1,
    PhraseScores,
)
from .reporting import render_table, render_series
from .runner import PhraseMiningExperiment, MethodResult, error_analysis

__all__ = [
    "exact_match",
    "token_f1",
    "evaluate_phrases",
    "multiclass_f1",
    "PhraseScores",
    "render_table",
    "render_series",
    "PhraseMiningExperiment",
    "MethodResult",
    "error_analysis",
]
