"""Evaluation metrics.

Phrase mining (Tables 5-6): Exact Match, token-overlap F1 (SQuAD-style,
Rajpurkar et al. 2016) and coverage rate (fraction of non-empty
predictions).  Key-element recognition (Table 7): macro / micro / weighted
F1 over the four classes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np


def exact_match(predicted: list[str], gold: list[str]) -> float:
    """1.0 if the token sequences are identical, else 0.0."""
    return 1.0 if list(predicted) == list(gold) else 0.0


def token_f1(predicted: list[str], gold: list[str]) -> float:
    """Multiset token-overlap F1 between prediction and gold."""
    if not predicted or not gold:
        return 1.0 if not predicted and not gold else 0.0
    common = Counter(predicted) & Counter(gold)
    overlap = sum(common.values())
    if overlap == 0:
        return 0.0
    precision = overlap / len(predicted)
    recall = overlap / len(gold)
    return 2 * precision * recall / (precision + recall)


@dataclass
class PhraseScores:
    """Aggregate phrase-mining scores (one Table 5/6 row)."""

    em: float
    f1: float
    coverage: float
    count: int

    def as_row(self) -> dict[str, float]:
        return {"EM": self.em, "F1": self.f1, "COV": self.coverage}


def evaluate_phrases(predictions: "list[list[str]]", golds: "list[list[str]]"
                     ) -> PhraseScores:
    """Score a list of predicted phrases against gold phrases.

    EM and F1 are averaged over *non-empty* predictions (the paper pairs
    them with a separate coverage-rate column: e.g. Match has EM 0.1494 at
    COV 0.3639 — scores are conditional on producing an output).
    """
    if len(predictions) != len(golds):
        raise ValueError("predictions/golds length mismatch")
    if not predictions:
        return PhraseScores(0.0, 0.0, 0.0, 0)
    nonempty = [(p, g) for p, g in zip(predictions, golds) if p]
    coverage = len(nonempty) / len(predictions)
    if not nonempty:
        return PhraseScores(0.0, 0.0, 0.0, len(predictions))
    em = float(np.mean([exact_match(p, g) for p, g in nonempty]))
    f1 = float(np.mean([token_f1(p, g) for p, g in nonempty]))
    return PhraseScores(em, f1, coverage, len(predictions))


def multiclass_f1(y_true: "list[int] | np.ndarray", y_pred: "list[int] | np.ndarray",
                  num_classes: int) -> dict[str, float]:
    """F1-macro, F1-micro and F1-weighted for integer-labelled classes."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_true.shape != y_pred.shape:
        raise ValueError("length mismatch")
    f1s = np.zeros(num_classes)
    support = np.zeros(num_classes)
    tp_total = fp_total = fn_total = 0
    for cls in range(num_classes):
        tp = int(((y_pred == cls) & (y_true == cls)).sum())
        fp = int(((y_pred == cls) & (y_true != cls)).sum())
        fn = int(((y_pred != cls) & (y_true == cls)).sum())
        tp_total += tp
        fp_total += fp
        fn_total += fn
        denom = 2 * tp + fp + fn
        f1s[cls] = (2 * tp / denom) if denom else 0.0
        support[cls] = int((y_true == cls).sum())
    macro = float(f1s.mean())
    micro_denom = 2 * tp_total + fp_total + fn_total
    micro = (2 * tp_total / micro_denom) if micro_denom else 0.0
    weighted = float((f1s * support).sum() / support.sum()) if support.sum() else 0.0
    return {"F1-macro": macro, "F1-micro": float(micro), "F1-weighted": weighted}


def precision_recall_f1(true_set: set, pred_set: set) -> tuple[float, float, float]:
    """Set-based precision/recall/F1 (used for edge-accuracy evaluation)."""
    if not pred_set:
        return (0.0, 0.0, 0.0) if true_set else (1.0, 1.0, 1.0)
    tp = len(true_set & pred_set)
    precision = tp / len(pred_set)
    recall = tp / len(true_set) if true_set else 1.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return precision, recall, f1
