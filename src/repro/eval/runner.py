"""Experiment runner: uniform fit/extract comparison of phrase miners.

Tables 5 and 6 compare heterogeneous methods (unsupervised extractors,
sequence taggers, seq2seq, GCTSP-Net) on the same train/test split.  The
runner normalises them behind one protocol:

* a method is any object with ``extract(queries, titles) -> list[str]``;
* methods exposing ``fit_examples(train)`` are fitted first;
* results come back as (name, {EM, F1, COV}) rows ready for rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from ..datasets.examples import MiningExample
from .metrics import PhraseScores, evaluate_phrases


@runtime_checkable
class PhraseMiner(Protocol):
    """Anything that can extract a phrase from a query-title cluster."""

    def extract(self, queries: "list[list[str]]", titles: "list[list[str]]"
                ) -> list[str]:
        ...  # pragma: no cover - protocol


@dataclass
class MethodResult:
    """Scores plus raw predictions of one method."""

    name: str
    scores: PhraseScores
    predictions: list[list[str]] = field(default_factory=list)

    def as_row(self) -> tuple[str, dict[str, float]]:
        return (self.name, self.scores.as_row())


class PhraseMiningExperiment:
    """Fits and evaluates a set of phrase-mining methods on one split."""

    def __init__(self) -> None:
        self._methods: list[tuple[str, PhraseMiner, dict]] = []

    def add(self, name: str, method: PhraseMiner, **fit_kwargs) -> "PhraseMiningExperiment":
        """Register a method; ``fit_kwargs`` go to its fit_examples()."""
        if not hasattr(method, "extract"):
            raise TypeError(f"method {name!r} has no extract()")
        self._methods.append((name, method, fit_kwargs))
        return self

    def run(self, train: "list[MiningExample]", test: "list[MiningExample]"
            ) -> list[MethodResult]:
        """Fit (where supported) and evaluate every registered method."""
        results: list[MethodResult] = []
        golds = [e.gold_tokens for e in test]
        for name, method, fit_kwargs in self._methods:
            fit = getattr(method, "fit_examples", None)
            if callable(fit):
                fit(train, **fit_kwargs)
            predictions = [method.extract(e.queries, e.titles) for e in test]
            scores = evaluate_phrases(predictions, golds)
            results.append(MethodResult(name, scores, predictions))
        return results

    def rows(self, results: "list[MethodResult]") -> list[tuple[str, dict[str, float]]]:
        return [r.as_row() for r in results]


def error_analysis(result: MethodResult, test: "list[MiningExample]",
                   limit: int = 5) -> list[dict]:
    """The first ``limit`` mismatches of a method (for inspection)."""
    out = []
    for prediction, example in zip(result.predictions, test):
        if prediction != example.gold_tokens:
            out.append({
                "gold": example.gold_tokens,
                "predicted": prediction,
                "queries": example.queries,
            })
            if len(out) >= limit:
                break
    return out
