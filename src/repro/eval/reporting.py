"""Plain-text table and series renderers for the benchmark harness.

Benchmarks print the same rows/columns as the paper's tables and the same
series as its figures; these helpers keep the formatting consistent.
"""

from __future__ import annotations


def render_table(title: str, columns: list[str],
                 rows: "list[tuple[str, dict[str, float]]]",
                 precision: int = 4) -> str:
    """Render a method-by-metric table.

    Args:
        title: table caption.
        columns: metric names, in display order.
        rows: (method name, {metric: value}) pairs.
        precision: decimal places.
    """
    name_width = max([len("Method")] + [len(name) for name, _vals in rows])
    col_width = max([precision + 4] + [len(c) for c in columns]) + 2
    lines = [title, ""]
    header = "Method".ljust(name_width) + "".join(c.rjust(col_width) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for name, values in rows:
        cells = []
        for col in columns:
            value = values.get(col)
            cells.append(
                ("-" if value is None else f"{value:.{precision}f}").rjust(col_width)
            )
        lines.append(name.ljust(name_width) + "".join(cells))
    return "\n".join(lines)


def render_series(title: str, x_labels: "list[str]",
                  series: "dict[str, list[float]]", precision: int = 2,
                  unit: str = "") -> str:
    """Render figure-style series (one row per x value, one column per arm)."""
    names = list(series)
    label_width = max([len("x")] + [len(x) for x in x_labels]) + 2
    col_width = max([precision + 6] + [len(n) for n in names]) + 2
    lines = [title, ""]
    header = "x".ljust(label_width) + "".join(n.rjust(col_width) for n in names)
    lines.append(header)
    lines.append("-" * len(header))
    for i, x in enumerate(x_labels):
        cells = []
        for name in names:
            values = series[name]
            cell = f"{values[i]:.{precision}f}{unit}" if i < len(values) else "-"
            cells.append(cell.rjust(col_width))
        lines.append(str(x).ljust(label_width) + "".join(cells))
    means = {n: sum(v) / len(v) for n, v in series.items() if v}
    lines.append("-" * len(header))
    lines.append(
        "mean".ljust(label_width)
        + "".join(f"{means[n]:.{precision}f}{unit}".rjust(col_width) for n in names)
    )
    return "\n".join(lines)
