"""Common example container and split logic for CMD/EMD."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import make_rng


@dataclass
class MiningExample:
    """One query-title cluster with gold annotations.

    Attributes:
        queries: tokenized correlated queries (descending weight).
        titles: tokenized top clicked titles (descending click count).
        gold_tokens: the gold phrase tokens (concept or event).
        kind: "concept" or "event".
        token_roles: for events — token -> role (entity/trigger/location).
        source_phrase: the ground-truth phrase string.
        day: event publication day (events only; earliest article time).
        category: leaf category of the cluster's documents.
    """

    queries: list[list[str]]
    titles: list[list[str]]
    gold_tokens: list[str]
    kind: str = "concept"
    token_roles: dict[str, str] = field(default_factory=dict)
    source_phrase: str = ""
    day: int = 0
    category: str = ""

    @property
    def gold_text(self) -> str:
        return " ".join(self.gold_tokens)


def split_dataset(examples: "list[MiningExample]", seed: int = 0,
                  train_frac: float = 0.8, dev_frac: float = 0.1
                  ) -> tuple[list[MiningExample], list[MiningExample], list[MiningExample]]:
    """Shuffle and split into train/dev/test (80/10/10 by default)."""
    rng = make_rng(seed)
    order = np.arange(len(examples))
    rng.shuffle(order)
    n = len(examples)
    n_train = int(round(n * train_frac))
    n_dev = int(round(n * dev_frac))
    train = [examples[i] for i in order[:n_train]]
    dev = [examples[i] for i in order[n_train : n_train + n_dev]]
    test = [examples[i] for i in order[n_train + n_dev :]]
    return train, dev, test
