"""Concept Mining Dataset (CMD) builder.

Each example is a cluster of correlated queries and top-clicked titles for
one ground-truth concept, with the concept tokens as the gold phrase.  The
generator reuses the same query/title templates as the click-log generator
(including in-phrase modifier insertion) so examples carry the paper's
characteristic structure: gold tokens recur across texts, are sometimes
non-contiguous, and keep a consistent order.
"""

from __future__ import annotations

import numpy as np

from ..config import make_rng
from ..synth.vocab import (
    CONCEPT_MODIFIERS,
    CONCEPT_QUERY_TEMPLATES,
    CONCEPT_QUERY_TEMPLATES_NOISY,
    CONCEPT_TITLE_TEMPLATES,
    ENTITY_TITLE_TEMPLATES,
)
from ..synth.querylog import mention_with_insertion
from ..synth.world import World
from ..text.tokenizer import tokenize
from .examples import MiningExample


def build_cmd(world: World, examples_per_concept: int = 3,
              seed: int = 7, noise: float = 0.35) -> list[MiningExample]:
    """Build the CMD from a world.

    Args:
        world: ground-truth world.
        examples_per_concept: independent cluster draws per concept.
        seed: RNG seed (independent of the click-log stream).
        noise: probability that a query uses a free-form (pattern-less)
            phrasing, and that a query mentions the concept only partially
            (real queries rarely state the full canonical phrase — paper
            Figure 3).

    Returns:
        List of concept-mining examples.
    """
    rng = make_rng(seed)
    examples: list[MiningExample] = []
    for concept in world.concepts.values():
        for _draw in range(examples_per_concept):
            examples.append(_draw_example(concept, rng, noise))
    return examples


# Trailing decorations real users type; each decoration varies, so pattern
# bootstrapping cannot reliably absorb them into prefix/suffix patterns.
QUERY_DECORATIONS: tuple[str, ...] = (
    "2017", "2018", "2019", "2020", "reddit", "forum", "reviews", "ranked",
    "usa", "uk", "comparison", "guide",
)


def partial_mention(phrase: str, rng: np.random.Generator) -> str:
    """Drop one leading/inner token of a multi-token concept mention.

    "hayao miyazaki animated films" -> "miyazaki animated films": real
    queries abbreviate; the full phrase only surfaces across the cluster.
    The head noun (last token) is always kept.
    """
    tokens = phrase.split()
    if len(tokens) < 2:
        return phrase
    drop = int(rng.integers(0, len(tokens) - 1))
    return " ".join(tokens[:drop] + tokens[drop + 1 :])


def _draw_example(concept, rng: np.random.Generator,
                  noise: float = 0.35) -> MiningExample:
    num_queries = int(rng.integers(2, 5))
    queries = []
    for _k in range(num_queries):
        if rng.random() < noise:
            template = str(rng.choice(list(CONCEPT_QUERY_TEMPLATES_NOISY)))
        else:
            template = str(rng.choice(list(CONCEPT_QUERY_TEMPLATES)))
        mention = concept.phrase
        if rng.random() < noise:
            mention = partial_mention(concept.phrase, rng)
        query = template.format(mention)
        if rng.random() < noise:
            query = f"{query} {rng.choice(list(QUERY_DECORATIONS))}"
        queries.append(tokenize(query))

    titles: list[list[str]] = []
    num_titles = int(rng.integers(2, 5))
    title_idx = rng.choice(len(CONCEPT_TITLE_TEMPLATES), size=min(num_titles, len(CONCEPT_TITLE_TEMPLATES)), replace=False)
    for i in title_idx:
        # Titles mention the concept "in a more detailed manner" (paper
        # Sec. 3.1): most carry an inserted modifier inside the phrase span.
        modifier = (
            str(rng.choice(list(CONCEPT_MODIFIERS))) if rng.random() < 0.8 else None
        )
        mention = mention_with_insertion(concept.phrase, modifier)
        titles.append(tokenize(CONCEPT_TITLE_TEMPLATES[i].format(mention)))
    # One member-entity title to add realistic distractor tokens.
    if concept.members and rng.random() < 0.7:
        entity = concept.members[int(rng.integers(0, len(concept.members)))]
        template = str(rng.choice(list(ENTITY_TITLE_TEMPLATES)))
        titles.append(tokenize(template.format(entity=entity, concept=concept.phrase)))

    return MiningExample(
        queries=queries,
        titles=titles,
        gold_tokens=tokenize(concept.phrase),
        kind="concept",
        source_phrase=concept.phrase,
        category=concept.category[2],
    )
