"""Event Mining Dataset (EMD) builder.

Each example is a query-title cluster for one ground-truth event; the gold
phrase is the event phrase and the gold key elements map tokens to their
roles (entity / trigger / location).  Event headlines have the comma-
separated subtitle structure the CoverRank candidate generator and baseline
depend on.  The example day is the earliest article publication day
(paper: "We use the earliest article publication time as the time of each
event example").
"""

from __future__ import annotations

import numpy as np

from ..config import make_rng
from ..synth.vocab import (
    EVENT_QUERY_TEMPLATES,
    EVENT_TITLE_SPLIT_TEMPLATES,
    EVENT_TITLE_TEMPLATES,
)
from ..synth.world import EventSpec, World
from ..text.tokenizer import tokenize
from .examples import MiningExample


def build_emd(world: World, examples_per_event: int = 1,
              seed: int = 13, noise: float = 0.3) -> list[MiningExample]:
    """Build the EMD from a world.

    Args:
        world: ground-truth world.
        examples_per_event: independent cluster draws per event.
        seed: RNG seed.
        noise: probability that a headline splits the event phrase across
            two subtitles (defeats single-span taggers and subtitle
            ranking; graph aggregation recovers the full phrase).
    """
    rng = make_rng(seed)
    examples: list[MiningExample] = []
    for event in world.events.values():
        for _draw in range(examples_per_event):
            examples.append(_draw_example(event, rng, noise))
    return examples


def _split_headline(phrase: str, rng: np.random.Generator) -> str:
    tokens = phrase.split()
    cut = max(1, len(tokens) // 2)
    template = str(rng.choice(list(EVENT_TITLE_SPLIT_TEMPLATES)))
    return template.format(head=" ".join(tokens[:cut]),
                           tail=" ".join(tokens[cut:]))


def _token_roles(event: EventSpec, location_mentioned: bool) -> dict[str, str]:
    roles: dict[str, str] = {}
    for token in tokenize(event.entity):
        roles[token] = "entity"
    roles[event.trigger] = "trigger"
    if event.location and location_mentioned:
        for token in tokenize(event.location):
            roles[token] = "location"
    return roles


def _draw_example(event: EventSpec, rng: np.random.Generator,
                  noise: float = 0.3) -> MiningExample:
    num_queries = int(rng.integers(1, len(EVENT_QUERY_TEMPLATES) + 1))
    query_idx = rng.choice(len(EVENT_QUERY_TEMPLATES), size=num_queries, replace=False)
    queries = [tokenize(EVENT_QUERY_TEMPLATES[i].format(event.phrase)) for i in query_idx]
    queries.append(tokenize(f"{event.entity} {event.trigger}"))

    phrase = event.phrase
    location_mentioned = bool(event.location) and rng.random() < 0.7
    if location_mentioned:
        phrase = f"{phrase} in {event.location}"
    num_titles = int(rng.integers(2, len(EVENT_TITLE_TEMPLATES) + 1))
    title_idx = rng.choice(len(EVENT_TITLE_TEMPLATES), size=num_titles, replace=False)
    titles = []
    for i in title_idx:
        if rng.random() < noise:
            titles.append(tokenize(_split_headline(phrase, rng)))
        else:
            titles.append(tokenize(EVENT_TITLE_TEMPLATES[i].format(phrase)))

    return MiningExample(
        queries=queries,
        titles=titles,
        gold_tokens=tokenize(event.phrase),
        kind="event",
        token_roles=_token_roles(event, location_mentioned),
        source_phrase=event.phrase,
        day=event.day,
        category=event.category[2],
    )
