"""Dataset builders: the Concept Mining Dataset (CMD) and Event Mining
Dataset (EMD) of paper Section 5.2, constructed from the synthetic world.

Each example is a query-title cluster with a gold phrase (and, for EMD, the
gold key elements: entities, trigger, location), mirroring the datasets the
authors built from Tencent logs (10,000 / 10,668 examples; scale here is a
config knob).  Splits are 80/10/10 train/dev/test.
"""

from .examples import MiningExample, split_dataset
from .cmd import build_cmd
from .emd import build_emd

__all__ = ["MiningExample", "split_dataset", "build_cmd", "build_emd"]
