"""Hash partitioning and per-shard delta routing (DESIGN.md §6).

The cluster partitions the ontology across N shards by a **stable hash of
the canonical phrase key** (``type::phrase``, lower-cased — the same key
the store's exact-match map uses).  Ownership is decided once, at node
creation, and never moves; every component can recompute it from the
node's type and canonical phrase, so no shared mutable state is needed to
agree on placement.

:class:`ShardRouter` consumes the global :class:`~repro.core.store.
OntologyDelta` stream in order and splits each batch into per-shard
sub-deltas:

* **node / alias / payload ops** go to the owning shard only;
* **edge ops** go to the owner shard of *each* endpoint; when an edge
  crosses shards, the router first materialises a **ghost replica** of
  the foreign endpoint (a node op marked ``"ghost": true`` carrying the
  explicit node id), so each shard holds every edge incident to its
  owned nodes — the edge-cut partitioning used by distributed graph
  systems.  Ghosts never receive payload/alias updates; readers resolve
  node objects through the owner shard (see ``ShardedStoreView``).

Per-shard version lines are independent: a sub-delta's
``base_version``/``version`` count only that shard's ops, so the strict
consistency checks of :meth:`OntologyStore.apply_delta` hold shard-
locally, and the router's ``version`` mirrors the global stream.
"""

from __future__ import annotations

import hashlib

from ..core.store import NodeType, OntologyDelta
from ..errors import OntologyError


def stable_hash(key: str) -> int:
    """Process-independent 64-bit hash (``hash()`` is salted per run)."""
    digest = hashlib.blake2s(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ShardRouter:
    """Assigns nodes to shards and splits the delta stream per shard."""

    def __init__(self, num_shards: int) -> None:
        if num_shards <= 0:
            raise OntologyError("a cluster needs at least one shard")
        self._num_shards = num_shards
        self._owner: dict[str, int] = {}
        self._meta: dict[str, tuple[str, str]] = {}  # id -> (type, phrase)
        self._materialized: list[set[str]] = [set() for _ in range(num_shards)]
        self._shard_versions = [0] * num_shards
        self._version = 0

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self._num_shards

    @property
    def version(self) -> int:
        """Version of the global delta stream routed so far."""
        return self._version

    @property
    def shard_versions(self) -> tuple[int, ...]:
        """Per-shard store versions after the routed stream."""
        return tuple(self._shard_versions)

    def fast_forward(self, version: int) -> None:
        """Jump the *global* stream position to ``version`` without
        touching per-shard version lines.

        Used by snapshot bootstrap: a catalog snapshot is folded into
        one synthetic delta (``store_to_delta``, base version 0) and
        routed, after which the router's global position must realign
        with the stream the snapshot compacted — tail deltas recorded
        after the snapshot carry its ``store_version`` as their base.
        Per-shard versions stay as-is: sub-delta bounds count only each
        shard's ops, so the shard stores' replay checks already hold.
        """
        if version < self._version:
            raise OntologyError(
                f"cannot fast-forward the router backwards "
                f"({self._version} -> {version})"
            )
        self._version = version

    def shard_of_phrase(self, node_type: NodeType, phrase: str) -> int:
        """The sharding function: stable hash of the canonical phrase key."""
        return stable_hash(f"{node_type.value}::{phrase.lower()}") % self._num_shards

    def owner_of(self, node_id: str) -> int:
        """Owning shard of a routed node id."""
        try:
            return self._owner[node_id]
        except KeyError:
            raise OntologyError(f"unrouted node {node_id!r}") from None

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._owner

    def __len__(self) -> int:
        return len(self._owner)

    # ------------------------------------------------------------------
    def split(self, delta: OntologyDelta) -> "list[OntologyDelta | None]":
        """Split one global delta into per-shard sub-deltas (``None`` for
        shards the batch does not touch).

        The router must see the stream gap-free and in order — exactly
        the contract :meth:`OntologyStore.apply_delta` enforces for a
        single store.
        """
        if delta.base_version != self._version:
            raise OntologyError(
                f"delta expects stream version {delta.base_version}, "
                f"router is at {self._version}"
            )
        per_shard: list[list[dict]] = [[] for _ in range(self._num_shards)]
        for index, op in enumerate(delta.ops):
            kind = op["op"]
            if kind == "node":
                node_id = op.get("node_id")
                if node_id is None:
                    raise OntologyError(
                        "cannot route a node op without a node_id — "
                        "re-record the delta stream with a current store"
                    )
                if node_id not in self._owner:
                    shard = self.shard_of_phrase(NodeType(op["type"]),
                                                 op["phrase"])
                    self._owner[node_id] = shard
                    self._meta[node_id] = (op["type"], op["phrase"])
                    self._materialized[shard].add(node_id)
                per_shard[self._owner[node_id]].append(dict(op))
            elif kind == "alias":
                routed = dict(op)
                # Global stream position: lets replicas rank competing
                # setdefault claims on a contested alias key across
                # shards exactly as a single store would.
                routed["pos"] = delta.base_version + index + 1
                per_shard[self.owner_of(op["node_id"])].append(routed)
            elif kind == "payload":
                per_shard[self.owner_of(op["node_id"])].append(dict(op))
            elif kind == "edge":
                endpoints = (op["source"], op["target"])
                shards = {self.owner_of(nid) for nid in endpoints}
                for shard in sorted(shards):
                    for node_id in endpoints:
                        if node_id in self._materialized[shard]:
                            continue
                        type_value, phrase = self._meta[node_id]
                        per_shard[shard].append({
                            "op": "node", "type": type_value,
                            "phrase": phrase, "payload": {},
                            "node_id": node_id, "created": True,
                            "ghost": True,
                        })
                        self._materialized[shard].add(node_id)
                    per_shard[shard].append(dict(op))
            else:
                raise OntologyError(f"unknown delta op {kind!r}")
        subs: "list[OntologyDelta | None]" = []
        for shard, ops in enumerate(per_shard):
            if not ops:
                subs.append(None)
                continue
            base = self._shard_versions[shard]
            sub = OntologyDelta(stage=delta.stage, base_version=base,
                                version=base + len(ops), ops=ops)
            self._shard_versions[shard] = sub.version
            subs.append(sub)
        self._version = delta.version
        return subs
