"""Ring-based partitioning and per-shard delta routing (DESIGN.md §6/§9).

The cluster partitions the ontology across its shards by a **consistent
hash of the canonical phrase key** (``type::phrase``, lower-cased — the
same key the store's exact-match map uses) over a
:class:`~repro.cluster.ring.HashRing`.  Ownership is a pure function of
the key and the ring's current epoch, so every component recomputes it
from the node's type and canonical phrase — no shared mutable state is
needed to agree on placement, and a ring-epoch record in the stream
moves every consumer to the new placement at the same version.

:class:`ShardRouter` consumes the global :class:`~repro.core.store.
OntologyDelta` stream in order and splits each batch into per-shard
sub-deltas:

* **node / alias / payload ops** go to the owning shard only;
* **edge ops** go to the owner shard of *each* endpoint; when an edge
  crosses shards, the router first materialises a **ghost replica** of
  the foreign endpoint (a node op marked ``"ghost": true`` carrying the
  explicit node id), so each shard holds every edge incident to its
  owned nodes — the edge-cut partitioning used by distributed graph
  systems.  Ghosts never receive payload/alias updates; readers resolve
  node objects through the owner shard (see ``ShardedStoreView``).
* **ring ops** (``{"op": "ring", ...}``) are epoch flips: they are not
  split but applied via :meth:`ShardRouter.apply_ring`, which recomputes
  placement for every routed node and returns the
  :class:`RebalancePlan` — which node records move where — that the
  cluster service turns into
  :class:`~repro.cluster.ring.TransferSlice` streams.

Per-shard version lines are independent: a sub-delta's
``base_version``/``version`` count only that shard's ops, so the strict
consistency checks of :meth:`OntologyStore.apply_delta` hold shard-
locally, and the router's ``version`` mirrors the global stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.store import NodeType, OntologyDelta
from ..errors import OntologyError
from .ring import DEFAULT_VNODES, HashRing, ring_op_of, stable_hash

__all__ = ["RebalancePlan", "ShardRouter", "stable_hash"]


@dataclass
class RebalancePlan:
    """What a ring-epoch flip moves: node ids keyed by (source,
    destination) shard pair, plus the ring that now owns them.  Produced
    by :meth:`ShardRouter.apply_ring`; the cluster service (or a remote
    parent) is responsible for completing the slice transfers the plan
    describes before serving reads at the new epoch."""

    ring: HashRing
    old_num_shards: int
    # node_id -> (source shard, destination shard); only changed owners.
    moves: "dict[str, tuple[int, int]]" = field(default_factory=dict)

    @property
    def moved_nodes(self) -> int:
        """Owned node records the flip relocates — strictly fewer than a
        full re-route from version 0 whenever placement is ring-based."""
        return len(self.moves)

    def moved_into(self, shard: int) -> "list[str]":
        return sorted(node_id for node_id, (_src, dst) in self.moves.items()
                      if dst == shard)

    def moved_out_of(self, shard: int) -> "list[str]":
        return sorted(node_id for node_id, (src, _dst) in self.moves.items()
                      if src == shard)

    def by_pair(self) -> "list[tuple[tuple[int, int], list[str]]]":
        """Moves grouped by (source, destination), deterministically
        ordered — the slice-transfer work list."""
        pairs: "dict[tuple[int, int], list[str]]" = {}
        for node_id in sorted(self.moves):
            pairs.setdefault(self.moves[node_id], []).append(node_id)
        return sorted(pairs.items())


class ShardRouter:
    """Assigns nodes to shards and splits the delta stream per shard."""

    def __init__(self, num_shards: int, vnodes: int = DEFAULT_VNODES,
                 ring: "HashRing | None" = None) -> None:
        if ring is None:
            ring = HashRing(num_shards, vnodes)
        elif ring.num_shards != num_shards:
            raise OntologyError(
                f"ring has {ring.num_shards} shards, router asked for "
                f"{num_shards}")
        self._ring = ring
        self._owner: dict[str, int] = {}
        self._meta: dict[str, tuple[str, str]] = {}  # id -> (type, phrase)
        self._materialized: list[set[str]] = [set()
                                              for _ in range(ring.num_shards)]
        self._shard_versions = [0] * ring.num_shards
        self._version = 0

    @classmethod
    def from_ring(cls, ring: HashRing) -> "ShardRouter":
        return cls(ring.num_shards, ring.vnodes, ring=ring)

    # ------------------------------------------------------------------
    @property
    def ring(self) -> HashRing:
        return self._ring

    @property
    def epoch(self) -> int:
        return self._ring.epoch

    @property
    def vnodes(self) -> int:
        return self._ring.vnodes

    @property
    def num_shards(self) -> int:
        return self._ring.num_shards

    @property
    def version(self) -> int:
        """Version of the global delta stream routed so far."""
        return self._version

    @property
    def shard_versions(self) -> tuple[int, ...]:
        """Per-shard store versions after the routed stream."""
        return tuple(self._shard_versions)

    def fast_forward(self, version: int) -> None:
        """Jump the *global* stream position to ``version`` without
        touching per-shard version lines.

        Used by snapshot bootstrap: a catalog snapshot is folded into
        one synthetic delta (``store_to_delta``, base version 0) and
        routed, after which the router's global position must realign
        with the stream the snapshot compacted — tail deltas recorded
        after the snapshot carry its ``store_version`` as their base.
        Per-shard versions stay as-is: sub-delta bounds count only each
        shard's ops, so the shard stores' replay checks already hold.
        """
        if version < self._version:
            raise OntologyError(
                f"cannot fast-forward the router backwards "
                f"({self._version} -> {version})"
            )
        self._version = version

    def shard_of_phrase(self, node_type: NodeType, phrase: str) -> int:
        """The sharding function: consistent hash of the canonical
        phrase key on the current ring epoch."""
        return self._ring.shard_of_key(f"{node_type.value}::{phrase.lower()}")

    def owner_of(self, node_id: str) -> int:
        """Owning shard of a routed node id."""
        try:
            return self._owner[node_id]
        except KeyError:
            raise OntologyError(f"unrouted node {node_id!r}") from None

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._owner

    def __len__(self) -> int:
        return len(self._owner)

    # ------------------------------------------------------------------
    # ring epochs
    # ------------------------------------------------------------------
    def apply_ring(self, delta: OntologyDelta) -> RebalancePlan:
        """Flip to the ring a ring-epoch record announces.

        Recomputes placement for every routed node under the new ring,
        rewrites the ownership map, resizes per-shard bookkeeping, and
        advances the global stream position past the record.  Returns
        the :class:`RebalancePlan` of node records whose owner changed;
        the caller must complete those transfers (slice extraction from
        the sources, adoption on the destinations) before serving reads
        — the router assumes they happen and marks moved ids as
        materialised on their destinations.
        """
        op = ring_op_of(delta)
        if op is None:
            raise OntologyError("not a ring-epoch record")
        if delta.base_version != self._version:
            raise OntologyError(
                f"ring record expects stream version {delta.base_version}, "
                f"router is at {self._version}")
        ring = HashRing.from_op(op)
        if ring.epoch <= self._ring.epoch:
            raise OntologyError(
                f"ring epoch must advance ({self._ring.epoch} -> "
                f"{ring.epoch})")
        moves: "dict[str, tuple[int, int]]" = {}
        for node_id, (type_value, phrase) in self._meta.items():
            new_shard = ring.shard_of_key(f"{type_value}::{phrase.lower()}")
            old_shard = self._owner[node_id]
            if new_shard != old_shard:
                moves[node_id] = (old_shard, new_shard)
        old_num = self._ring.num_shards
        if ring.num_shards > old_num:
            self._materialized.extend(
                set() for _ in range(old_num, ring.num_shards))
            self._shard_versions.extend(
                0 for _ in range(old_num, ring.num_shards))
        elif ring.num_shards < old_num:
            del self._materialized[ring.num_shards:]
            del self._shard_versions[ring.num_shards:]
        for node_id, (_src, dst) in moves.items():
            self._owner[node_id] = dst
            self._materialized[dst].add(node_id)
        self._ring = ring
        self._version = delta.version
        return RebalancePlan(ring=ring, old_num_shards=old_num, moves=moves)

    def note_materialized(self, shard: int, node_ids) -> None:
        """Record that ``node_ids`` now have node records on ``shard``
        (slice adoption materialises moved nodes and ghost endpoints
        outside the routed stream)."""
        self._materialized[shard].update(node_ids)

    def sync_shard_version(self, shard: int, version: int) -> None:
        """Align a shard's sub-delta version line after out-of-stream
        ops (slice adoption) advanced its store."""
        if version < self._shard_versions[shard]:
            raise OntologyError(
                f"cannot rewind shard {shard} version line "
                f"({self._shard_versions[shard]} -> {version})")
        self._shard_versions[shard] = version

    # ------------------------------------------------------------------
    # routing-state export (seeding a remote worker without a snapshot)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """The full routing state as a JSON-ready dict — everything a
        freshly seeded shard worker needs to continue routing the stream
        from this exact position without folding a snapshot."""
        return {
            "ring": {"epoch": self._ring.epoch,
                     "num_shards": self._ring.num_shards,
                     "vnodes": self._ring.vnodes},
            "version": self._version,
            "owner": dict(self._owner),
            "meta": {node_id: [type_value, phrase]
                     for node_id, (type_value, phrase) in self._meta.items()},
            "materialized": [sorted(ids) for ids in self._materialized],
            "shard_versions": list(self._shard_versions),
        }

    @classmethod
    def from_state(cls, state: dict) -> "ShardRouter":
        """Rebuild a router from :meth:`export_state` output."""
        router = cls.from_ring(HashRing.from_op(state["ring"]))
        router._owner = dict(state["owner"])
        router._meta = {node_id: (meta[0], meta[1])
                        for node_id, meta in state["meta"].items()}
        router._materialized = [set(ids) for ids in state["materialized"]]
        router._shard_versions = list(state["shard_versions"])
        router._version = state["version"]
        return router

    # ------------------------------------------------------------------
    def split(self, delta: OntologyDelta) -> "list[OntologyDelta | None]":
        """Split one global delta into per-shard sub-deltas (``None`` for
        shards the batch does not touch).

        The router must see the stream gap-free and in order — exactly
        the contract :meth:`OntologyStore.apply_delta` enforces for a
        single store.  Ring-epoch records are not splittable: they go
        through :meth:`apply_ring` (the cluster service dispatches).
        """
        if ring_op_of(delta) is not None:
            raise OntologyError(
                "ring-epoch records rebalance the cluster — route them "
                "through apply_ring()/ClusterService.refresh, not split()")
        if delta.base_version != self._version:
            raise OntologyError(
                f"delta expects stream version {delta.base_version}, "
                f"router is at {self._version}"
            )
        num_shards = self._ring.num_shards
        per_shard: list[list[dict]] = [[] for _ in range(num_shards)]
        for index, op in enumerate(delta.ops):
            kind = op["op"]
            if kind == "node":
                node_id = op.get("node_id")
                if node_id is None:
                    raise OntologyError(
                        "cannot route a node op without a node_id — "
                        "re-record the delta stream with a current store"
                    )
                if node_id not in self._owner:
                    shard = self.shard_of_phrase(NodeType(op["type"]),
                                                 op["phrase"])
                    self._owner[node_id] = shard
                    self._meta[node_id] = (op["type"], op["phrase"])
                    self._materialized[shard].add(node_id)
                per_shard[self._owner[node_id]].append(dict(op))
            elif kind == "alias":
                routed = dict(op)
                # Global stream position: lets replicas rank competing
                # setdefault claims on a contested alias key across
                # shards exactly as a single store would.
                routed["pos"] = delta.base_version + index + 1
                per_shard[self.owner_of(op["node_id"])].append(routed)
            elif kind == "payload":
                per_shard[self.owner_of(op["node_id"])].append(dict(op))
            elif kind == "edge":
                endpoints = (op["source"], op["target"])
                shards = {self.owner_of(nid) for nid in endpoints}
                # Global stream position (same convention as alias ops):
                # replicas order their adjacency by it, so traversals
                # keep single-store insertion order even after a
                # rebalance interleaves adopted edges with local ones.
                routed = dict(op)
                routed["pos"] = delta.base_version + index + 1
                for shard in sorted(shards):
                    for node_id in endpoints:
                        if node_id in self._materialized[shard]:
                            continue
                        type_value, phrase = self._meta[node_id]
                        per_shard[shard].append({
                            "op": "node", "type": type_value,
                            "phrase": phrase, "payload": {},
                            "node_id": node_id, "created": True,
                            "ghost": True,
                        })
                        self._materialized[shard].add(node_id)
                    per_shard[shard].append(dict(routed))
            else:
                raise OntologyError(f"unknown delta op {kind!r}")
        subs: "list[OntologyDelta | None]" = []
        for shard, ops in enumerate(per_shard):
            if not ops:
                subs.append(None)
                continue
            base = self._shard_versions[shard]
            sub = OntologyDelta(stage=delta.stage, base_version=base,
                                version=base + len(ops), ops=ops)
            self._shard_versions[shard] = sub.version
            subs.append(sub)
        self._version = delta.version
        return subs
