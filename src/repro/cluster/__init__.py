"""Sharded ontology cluster: partitioned stores + scatter-gather serving.

The production GIANT system scales by fleet: the MySQL-backed ontology is
replicated and fronted by Tars RPC services, and tagging traffic fans out
over many machines.  This package is the reproduction's cluster tier
(DESIGN.md §6), built on PR 1's store/serving split:

* :mod:`repro.cluster.ring` — :class:`HashRing`: the consistent-hash
  ring (virtual nodes, blake2s placement) plus the versioned ring-epoch
  records and :class:`TransferSlice` rebalance frames (DESIGN.md §9);
* :mod:`repro.cluster.router` — :class:`ShardRouter`: ring-based
  partitioning of node ids by canonical phrase key, splitting of the
  global :class:`~repro.core.store.OntologyDelta` stream into per-shard
  sub-deltas with ghost replication for cross-shard edges, and
  :meth:`ShardRouter.apply_ring` epoch flips producing the
  :class:`RebalancePlan` of moved records;
* :mod:`repro.cluster.shards` — :class:`ShardReplica` (one shard's store
  + owned/ghost bookkeeping) and :class:`ShardedStoreView` (a read-only
  object implementing the store read API by deterministic scatter-gather
  merges);
* :mod:`repro.cluster.service` — :class:`ClusterService`: the same
  serving API as :class:`~repro.serving.service.OntologyService`, with
  results byte-identical to a single store at the same stream version;
* :mod:`repro.cluster.workers` — :class:`TaggingWorkerPool`: a
  multi-process executor whose workers bootstrap replicas from
  ``snapshot + tail deltas`` (:meth:`OntologyStore.compact` /
  :meth:`OntologyStore.bootstrap`) and tag disjoint corpus chunks;
* :mod:`repro.cluster.remote` — :class:`RemoteClusterService` /
  :class:`RemoteShardReplica`: every shard in its own worker process,
  follower-fed from the :mod:`repro.replication` delta log, with the
  scatter-gather reads crossing process boundaries over RPC
  (DESIGN.md §8).
"""

from .remote import RemoteClusterService, RemoteShardReplica
from .ring import HashRing, TransferSlice, ring_delta, ring_op_of
from .router import RebalancePlan, ShardRouter, stable_hash
from .service import ClusterService
from .shards import ShardReplica, ShardedStoreView
from .workers import TaggingWorkerPool

__all__ = [
    "ClusterService",
    "HashRing",
    "RebalancePlan",
    "RemoteClusterService",
    "RemoteShardReplica",
    "ShardReplica",
    "ShardRouter",
    "ShardedStoreView",
    "TaggingWorkerPool",
    "TransferSlice",
    "ring_delta",
    "ring_op_of",
    "stable_hash",
]
