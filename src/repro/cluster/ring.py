"""Consistent-hash ring and rebalance records (DESIGN.md §9).

PRs 2–4 partitioned the ontology with ``blake2s(key) % N`` — correct,
but frozen: growing the cluster to M shards re-routes *every* key, so
the only way to resize was replaying the delta stream from version 0.
This module replaces the modulo with a **consistent-hash ring**:

* every shard projects ``vnodes`` virtual points onto a 64-bit ring
  (``blake2s("vnode::<shard>::<replica>")``); a key is owned by the
  first point at or after its own hash, wrapping around.  Adding shards
  adds points — only the keys whose nearest point is new move, roughly
  ``(M - N) / M`` of them, instead of all of them;
* placement is a pure function of ``(num_shards, vnodes)`` and the key,
  so every process — router, shard worker, follower — recomputes it
  identically with no shared state, exactly like the modulo before it;
* a resize is a **ring epoch**: a ``{"op": "ring", "epoch",
  "num_shards", "vnodes"}`` record that travels *in the delta stream*
  (and therefore in the replicated log and in snapshots, see
  :meth:`OntologyStore.set_ring_epoch`).  Every consumer sees the flip
  at the same stream version, so "which ring owns key k at version v"
  has one global answer;
* the state a flip moves between shards ships as a
  :class:`TransferSlice` — the moved nodes with their full payloads and
  aliases, every edge incident to them, ghost records for the foreign
  endpoints of those edges, and the nodes' alias-claim stream positions
  — over the :mod:`repro.serving.rpc` codec (registered below), so the
  same slice feeds an in-process replica and a remote shard worker.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field

from ..core.store import AttentionNode, Edge, OntologyDelta
from ..errors import OntologyError
from ..serving.rpc import register_dataclass

#: Delta-op discriminator for ring-epoch records.
RING_OP = "ring"

#: Virtual points per shard.  More vnodes smooth the load split and
#: shrink the moved fraction's variance; 64 keeps ring construction and
#: the bisect lookups cheap at reproduction scale.
DEFAULT_VNODES = 64


def stable_hash(key: str) -> int:
    """Process-independent 64-bit hash (``hash()`` is salted per run)."""
    digest = hashlib.blake2s(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A deterministic consistent-hash ring with virtual nodes.

    Args:
        num_shards: shards projecting points onto the ring.
        vnodes: virtual points per shard.
        epoch: monotonically increasing configuration version; epoch 0
            is the implicit ring a cluster starts with before any
            ``ring`` record appears in its stream.
    """

    def __init__(self, num_shards: int, vnodes: int = DEFAULT_VNODES,
                 epoch: int = 0) -> None:
        if num_shards <= 0:
            raise OntologyError("a hash ring needs at least one shard")
        if vnodes <= 0:
            raise OntologyError("a hash ring needs at least one vnode")
        self.num_shards = num_shards
        self.vnodes = vnodes
        self.epoch = epoch
        points = []
        for shard in range(num_shards):
            for replica in range(vnodes):
                points.append((stable_hash(f"vnode::{shard}::{replica}"),
                               shard))
        points.sort()  # hash collisions tie-break by shard id: stable
        self._hashes = [point_hash for point_hash, _shard in points]
        self._shards = [shard for _point_hash, shard in points]

    def shard_of_key(self, key: str) -> int:
        """Owning shard of ``key``: the first ring point clockwise."""
        index = bisect.bisect_right(self._hashes, stable_hash(key))
        return self._shards[index % len(self._shards)]

    # ------------------------------------------------------------------
    def to_op(self) -> dict:
        """This ring as a delta ``ring`` op."""
        return {"op": RING_OP, "epoch": self.epoch,
                "num_shards": self.num_shards, "vnodes": self.vnodes}

    @classmethod
    def from_op(cls, op: dict) -> "HashRing":
        """Rebuild the ring a ``ring`` op (or a snapshot's ``ring``
        metadata dict) describes."""
        return cls(op["num_shards"], op["vnodes"], op["epoch"])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, HashRing) and \
            (self.num_shards, self.vnodes, self.epoch) == \
            (other.num_shards, other.vnodes, other.epoch)

    def __repr__(self) -> str:
        return (f"HashRing(num_shards={self.num_shards}, "
                f"vnodes={self.vnodes}, epoch={self.epoch})")


def ring_op_of(delta: OntologyDelta) -> "dict | None":
    """The ring op when ``delta`` is a ring-epoch record, else ``None``.

    Ring records must travel alone (one op per delta) so the epoch flip
    lands exactly on a batch boundary; a batch mixing a ring op with
    content ops is rejected.
    """
    ring_ops = [op for op in delta.ops if op.get("op") == RING_OP]
    if not ring_ops:
        return None
    if len(delta.ops) != 1:
        raise OntologyError(
            "a ring-epoch record must be the only op in its delta "
            f"(got {len(delta.ops)} ops)")
    return ring_ops[0]


def ring_delta(base_version: int, ring: HashRing) -> OntologyDelta:
    """The stream record announcing ``ring`` from ``base_version + 1``."""
    return OntologyDelta(stage="ring-epoch", base_version=base_version,
                         version=base_version + 1, ops=[ring.to_op()])


@dataclass
class TransferSlice:
    """State streamed to one destination shard during a rebalance.

    A slice is extracted from the *source* shard's store (which holds
    every moved node in full, plus all edges incident to it — the
    ghost-replication invariant) and adopted by the destination, which
    diffs it against what it already holds.  Slices cross process
    boundaries via the :mod:`repro.serving.rpc` codec.
    """

    epoch: int  # ring epoch this transfer belongs to
    shard: int  # destination shard
    nodes: "list[AttentionNode]" = field(default_factory=list)  # full state
    ghosts: "list[AttentionNode]" = field(default_factory=list)  # id refs
    edges: "list[Edge]" = field(default_factory=list)  # incident edges
    # Global stream position of each edge, aligned with ``edges`` —
    # destinations keep adjacency in stream order across the move.
    edge_positions: "list[int]" = field(default_factory=list)
    # alias key -> {node_id: global stream position of its first claim}
    alias_claims: dict = field(default_factory=dict)

    @property
    def moved_nodes(self) -> int:
        """Owned node records this slice moves (the rebalance cost unit)."""
        return len(self.nodes)


register_dataclass(TransferSlice)
