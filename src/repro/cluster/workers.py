"""Multi-process tagging executor over bootstrapped replicas (DESIGN.md §6).

Document tagging is embarrassingly parallel over documents, but each
worker needs its own ontology replica (stores are process-local, like the
production system's per-machine MySQL replicas).  The bootstrap protocol
is the cluster's compaction path: every worker cold-starts from a
``snapshot`` (:meth:`OntologyStore.compact` output) plus the ``tail``
delta batches recorded after it — :meth:`OntologyStore.bootstrap` — and
later keeps converged with the builder through ``refresh(deltas)``
broadcasts of the shared stream.

Scatter-gather is deterministic: a corpus is split into per-worker
contiguous chunks, each worker tags its chunk with a full
:class:`~repro.serving.service.OntologyService`, and the pool reassembles
results in chunk order — output is identical to a single-process
``tag_documents`` call, just fanned across cores.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
from typing import Any, Sequence

from ..core.serialize import delta_from_dict, delta_to_dict
from ..core.store import OntologyDelta, OntologyStore
from ..errors import ReproError


def _as_request(doc) -> tuple:
    """Normalise a document to the picklable tuple form the serving
    batch API accepts."""
    if isinstance(doc, tuple):
        return doc
    return (doc.doc_id, doc.title_tokens, doc.sentences)


def _worker_main(worker_id: int, inbox, outbox, snapshot: "dict | None",
                 delta_dicts: "list[dict]", ner,
                 tagger_options: "dict[str, Any]") -> None:
    """Worker loop: bootstrap a replica, then serve tag/refresh requests."""
    from ..serving.service import OntologyService

    try:
        store = OntologyStore.bootstrap(
            snapshot, [delta_from_dict(d) for d in delta_dicts])
        service = OntologyService(store, ner=ner,
                                  tagger_options=tagger_options)
    except Exception as exc:  # surface bootstrap failures to the pool
        outbox.put(("error", worker_id, f"bootstrap failed: {exc!r}"))
        return
    while True:
        message = inbox.get()
        kind = message[0]
        try:
            if kind == "stop":
                outbox.put(("stopped", worker_id, None))
                return
            if kind == "tag":
                _kind, chunk_id, docs = message
                outbox.put(("tagged", chunk_id, service.tag_documents(docs)))
            elif kind == "refresh":
                deltas = [delta_from_dict(d) for d in message[1]]
                outbox.put(("refreshed", worker_id, service.refresh(deltas)))
            else:
                outbox.put(("error", worker_id,
                            f"unknown message kind {kind!r}"))
        except Exception as exc:
            outbox.put(("error", worker_id, repr(exc)))


class TaggingWorkerPool:
    """N worker processes, each holding a bootstrapped serving replica.

    Args:
        deltas: tail delta batches applied on top of ``snapshot`` (pass
            the full stream with ``snapshot=None`` to replay from zero).
        ner: gazetteer NER forwarded to each worker's tagger.
        snapshot: optional :meth:`OntologyStore.compact` dump.
        tagger_options: :class:`DocumentTagger` keyword arguments.
        num_workers: process count; defaults to ``min(4, cpu_count)``.
        timeout: seconds to wait for any single worker response.
    """

    def __init__(self, deltas: "Sequence[OntologyDelta]", ner=None,
                 snapshot: "dict | None" = None,
                 tagger_options: "dict[str, Any] | None" = None,
                 num_workers: "int | None" = None,
                 timeout: float = 600.0) -> None:
        if num_workers is None:
            num_workers = min(4, os.cpu_count() or 1)
        if num_workers <= 0:
            raise ReproError("the pool needs at least one worker")
        self._timeout = timeout
        self._closed = False
        self._failed = False
        context = multiprocessing.get_context()
        self._outbox = context.Queue()
        self._inboxes = []
        self._processes = []
        delta_dicts = [delta_to_dict(d) for d in deltas]
        for worker_id in range(num_workers):
            inbox = context.Queue()
            process = context.Process(
                target=_worker_main,
                args=(worker_id, inbox, self._outbox, snapshot, delta_dicts,
                      ner, dict(tagger_options or {})),
                daemon=True,
            )
            process.start()
            self._inboxes.append(inbox)
            self._processes.append(process)

    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return len(self._processes)

    def _collect(self, expected_kind: str, count: int) -> "list[tuple]":
        """Gather ``count`` responses; any failure poisons the pool —
        stale responses could otherwise be mistaken for a later call's."""
        responses = []
        for _ in range(count):
            try:
                message = self._outbox.get(timeout=self._timeout)
            except queue.Empty:
                self._failed = True
                raise ReproError(
                    f"timed out after {self._timeout}s waiting for a "
                    "worker response; the pool is now unusable") from None
            if message[0] == "error":
                self._failed = True
                raise ReproError(
                    f"worker {message[1]} failed: {message[2]}")
            if message[0] != expected_kind:
                self._failed = True
                raise ReproError(
                    f"unexpected worker response {message[0]!r}")
            responses.append(message)
        return responses

    def _ensure_open(self) -> None:
        if self._closed:
            raise ReproError("the worker pool is closed")
        if self._failed:
            raise ReproError(
                "the worker pool is in a failed state (a previous call "
                "errored); create a new pool")

    # ------------------------------------------------------------------
    def tag_documents(self, documents: Sequence) -> list:
        """Scatter a corpus across workers; gather results in order."""
        self._ensure_open()
        requests = [_as_request(doc) for doc in documents]
        if not requests:
            return []
        workers = self.num_workers
        chunk_size = (len(requests) + workers - 1) // workers
        chunks = [requests[i:i + chunk_size]
                  for i in range(0, len(requests), chunk_size)]
        for chunk_id, chunk in enumerate(chunks):
            self._inboxes[chunk_id].put(("tag", chunk_id, chunk))
        by_chunk = {m[1]: m[2]
                    for m in self._collect("tagged", len(chunks))}
        out = []
        for chunk_id in range(len(chunks)):
            out.extend(by_chunk[chunk_id])
        return out

    def refresh(self, deltas: "Sequence[OntologyDelta]") -> int:
        """Broadcast update batches to every replica; returns the number
        applied per replica (replicas advance in lockstep)."""
        self._ensure_open()
        delta_dicts = [delta_to_dict(d) for d in deltas]
        for inbox in self._inboxes:
            inbox.put(("refresh", delta_dicts))
        applied = {m[2] for m in self._collect("refreshed", self.num_workers)}
        if len(applied) != 1:
            raise ReproError(f"replicas diverged during refresh: {applied}")
        return applied.pop()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop all workers (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for inbox in self._inboxes:
            inbox.put(("stop",))
        for process in self._processes:
            process.join(timeout=10.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)

    def __enter__(self) -> "TaggingWorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
