"""Shard replicas and the scatter-gather read view (DESIGN.md §6).

:class:`ShardReplica` wraps one shard's :class:`~repro.core.store.
OntologyStore`: it applies the sub-deltas the
:class:`~repro.cluster.router.ShardRouter` routes to it and tracks which
local nodes are *owned* (hash-assigned) versus *ghost* endpoint replicas
materialised for cross-shard edges.

:class:`ShardedStoreView` then exposes the cluster as one read-only
object implementing the :class:`OntologyStore` read API, so the ordinary
:class:`~repro.apps.tagging.DocumentTagger` /
:class:`~repro.apps.query.QueryUnderstander` /
:class:`~repro.serving.service.OntologyService` stack runs over a
partitioned cluster unchanged.  Merge semantics are deterministic and
reconstruct single-store behaviour exactly:

* point lookups (``node``) route to the owning shard;
* index scans (``candidates``, ``nodes_with_token``) scatter to every
  shard, drop ghost duplicates, merge by sorted node id — the same order
  a single store returns;
* ``nodes`` merges owned partitions in creation order (ids embed the
  global counter);
* traversals (``successors`` / ``predecessors`` / ``has_path``) read the
  owner shard's edge lists — complete by the ghost-replication invariant
  — and resolve every returned node through *its* owner shard, so
  payloads are never served from a stale ghost;
* ``stats`` counts owned nodes per shard and de-duplicates gathered
  edges, reproducing the single store's Table 1/2 numbers exactly.

Mutations raise: cluster replicas are serving replicas, fed exclusively
by the delta stream through ``ClusterService.refresh``.
"""

from __future__ import annotations

import copy

from ..core.store import (
    AttentionNode,
    Edge,
    EdgeType,
    NodeType,
    OntologyDelta,
    OntologyStore,
    creation_order,
)
from ..core.zsets import delta_to_zsets, token_rows
from ..errors import OntologyError, ShardUnavailableError
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.recorder import get_recorder
from ..obs.tracing import get_tracer
from ..views import ShardPostingsFragment, ViewCatalog
from ..views.zset import ZSet
from .ring import TransferSlice
from .router import ShardRouter


class ShardReplica:
    """One shard: a store plus owned/ghost bookkeeping."""

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.store = OntologyStore()
        self._owned: dict[NodeType, set[str]] = {t: set() for t in NodeType}
        self._ghosts: set[str] = set()
        # alias key -> {node_id: global stream pos of that node's first
        # claim}.  Per-node granularity survives rebalances: when a node
        # moves shards its claims travel with it, without contaminating
        # (or being contaminated by) claims other local nodes hold on
        # the same contested key.
        self._alias_claims: dict[str, dict[str, int]] = {}
        # canonical (source, target, type) -> global stream pos.  The
        # single store returns traversals in edge *insertion* order;
        # replicas sort adjacency by these positions so the order
        # survives a rebalance interleaving adopted and local edges.
        self._edge_pos: dict[tuple, int] = {}
        self.deltas_applied = 0
        # Per-shard maintained views (DESIGN.md §13): the posting
        # fragment holds this shard's *owned* slice of the inverted
        # index, advanced from every routed sub-delta — so scatter reads
        # merge maintained fragments instead of re-filtering the store
        # per read.  Ghost ops lower to zero posting rows, keeping the
        # fragment owned-only by construction.
        self.views = ViewCatalog(
            metrics=get_registry().scope(f"shard.{shard_id}.views"))
        self._postings = self.views.register(
            "tag_postings", ShardPostingsFragment(self))

    @staticmethod
    def _edge_key(source: str, target: str,
                  edge_type: EdgeType) -> tuple:
        if edge_type == EdgeType.CORRELATE:  # symmetric, stored mirrored
            return (min(source, target), max(source, target), edge_type)
        return (source, target, edge_type)

    def apply(self, sub_delta: OntologyDelta) -> None:
        """Apply one routed sub-delta, tracking owned vs ghost nodes and
        the global stream position of each alias key's first claim."""
        self.store.apply_delta(sub_delta)
        for op in sub_delta.ops:
            if op["op"] == "alias":
                pos = op.get("pos")
                if pos is not None:
                    node = self.store.node(op["node_id"])
                    key = f"{node.node_type.value}::{op['alias'].lower()}"
                    self._alias_claims.setdefault(key, {}).setdefault(
                        op["node_id"], pos)
                continue
            if op["op"] == "edge":
                pos = op.get("pos")
                if pos is not None:
                    self._edge_pos.setdefault(
                        self._edge_key(op["source"], op["target"],
                                       EdgeType(op["type"])), pos)
                continue
            if op["op"] != "node" or not op.get("created"):
                continue
            if op.get("ghost"):
                self._ghosts.add(op["node_id"])
            else:
                self._owned[NodeType(op["type"])].add(op["node_id"])
        self.views.advance(delta_to_zsets(sub_delta),
                           version=self.store.version)
        self.deltas_applied += 1

    def alias_claim(self, key: str,
                    node_id: "str | None" = None) -> "int | None":
        """Stream position at which ``node_id`` (or, with ``None``,
        anyone on this shard) first claimed ``key``."""
        claims = self._alias_claims.get(key)
        if not claims:
            return None
        if node_id is not None:
            return claims.get(node_id)
        return min(claims.values())

    # ------------------------------------------------------------------
    # rebalance: slice extraction / adoption / demotion
    # ------------------------------------------------------------------
    def transfer_slice(self, node_ids, epoch: int,
                       shard: int) -> TransferSlice:
        """Extract the state a rebalance moves to ``shard``: the named
        nodes in full, every edge incident to them, ghost records for
        the foreign endpoints of those edges, and the nodes' alias
        claims.  Read-only — the source keeps (and later demotes) its
        records, so slices can be re-extracted after a failed transfer.
        """
        ids = sorted(set(node_ids), key=creation_order)
        id_set = set(ids)
        nodes = []
        for node_id in ids:
            node = self.store.node(node_id)
            nodes.append(AttentionNode(
                node.node_id, node.node_type, node.phrase,
                aliases=set(node.aliases),
                payload=copy.deepcopy(node.payload)))
        # Incident edges via the store's per-node adjacency (not a full
        # edge scan), de-duplicated on the canonical key — correlate
        # mirrors collapse to the (min, max) direction.
        incident: dict[tuple, Edge] = {}
        for node_id in ids:
            for edge in (self.store.out_edges(node_id)
                         + self.store.in_edges(node_id)):
                key = self._edge_key(edge.source, edge.target,
                                     edge.edge_type)
                if key not in incident:
                    if (edge.source, edge.target) != (key[0], key[1]):
                        edge = Edge(key[0], key[1], edge.edge_type,
                                    edge.weight)
                    incident[key] = edge
        edges = sorted(incident.values(),
                       key=lambda e: (e.source, e.target, e.edge_type.value))
        edge_positions = []
        for edge in edges:
            pos = self._edge_pos.get(
                self._edge_key(edge.source, edge.target, edge.edge_type))
            edge_positions.append(pos if pos is not None else 1 << 62)
        ghost_ids = sorted(
            {endpoint for edge in edges
             for endpoint in (edge.source, edge.target)} - id_set,
            key=creation_order)
        ghosts = []
        for ghost_id in ghost_ids:
            ghost = self.store.node(ghost_id)
            ghosts.append(AttentionNode(ghost.node_id, ghost.node_type,
                                        ghost.phrase))
        claims: dict[str, dict[str, int]] = {}
        for node in nodes:
            for alias in sorted(node.aliases):
                key = f"{node.node_type.value}::{alias.lower()}"
                pos = self.alias_claim(key, node.node_id)
                if pos is not None:
                    claims.setdefault(key, {})[node.node_id] = pos
        return TransferSlice(epoch=epoch, shard=shard, nodes=nodes,
                             ghosts=ghosts, edges=edges,
                             edge_positions=edge_positions,
                             alias_claims=claims)

    def adopt_slice(self, transfer: TransferSlice) -> dict:
        """Apply a :meth:`transfer_slice` to this shard.

        The slice is diffed against the local store — a moved node this
        shard already ghosts is *promoted* (payload merged, aliases
        attached) instead of re-created, present edges and ghosts are
        skipped — and the remainder applies as one delta on this shard's
        own version line, so the store's replay discipline holds.
        Returns ``{"node_records", "ops"}`` transfer accounting.
        """
        ops: list[dict] = []
        for node in sorted(transfer.nodes,
                           key=lambda n: creation_order(n.node_id)):
            if node.node_id not in self.store:
                ops.append({"op": "node", "type": node.node_type.value,
                            "phrase": node.phrase,
                            "payload": copy.deepcopy(node.payload),
                            "node_id": node.node_id, "created": True})
                existing_aliases: set[str] = set()
            else:
                existing = self.store.node(node.node_id)
                existing_aliases = set(existing.aliases)
                fresh = {key: value for key, value in node.payload.items()
                         if key not in existing.payload
                         or existing.payload[key] != value}
                if fresh:
                    ops.append({"op": "payload", "node_id": node.node_id,
                                "payload": copy.deepcopy(fresh)})
            for alias in sorted(node.aliases - existing_aliases):
                ops.append({"op": "alias", "node_id": node.node_id,
                            "alias": alias})
        for ghost in sorted(transfer.ghosts,
                            key=lambda n: creation_order(n.node_id)):
            if ghost.node_id not in self.store:
                ops.append({"op": "node", "type": ghost.node_type.value,
                            "phrase": ghost.phrase, "payload": {},
                            "node_id": ghost.node_id, "created": True,
                            "ghost": True})
        positions = transfer.edge_positions or [None] * len(transfer.edges)
        for edge, pos in zip(transfer.edges, positions):
            if not self.store.has_edge(edge.source, edge.target,
                                       edge.edge_type):
                op = {"op": "edge", "source": edge.source,
                      "target": edge.target,
                      "type": edge.edge_type.value,
                      "weight": edge.weight}
                if pos is not None:
                    op["pos"] = pos
                ops.append(op)
        if ops:
            base = self.store.version
            self.apply(OntologyDelta(
                stage=f"rebalance-epoch-{transfer.epoch}",
                base_version=base, version=base + len(ops), ops=ops))
        # Promote: adopted nodes are owned here even when the node op
        # was elided because a ghost record already existed.  The
        # posting fragment gains every adopted node's token rows — the
        # elided-ghost case emitted none during apply() (ghosts never
        # post), and re-adding an existing row is idempotent.
        promoted = ZSet()
        for node in transfer.nodes:
            self._ghosts.discard(node.node_id)
            self._owned[node.node_type].add(node.node_id)
            for row in token_rows(node.node_type.value, node.phrase,
                                  node.node_id):
                promoted.add(row)
        if promoted:
            self.views.advance({"tokens": promoted},
                               version=self.store.version)
        for key, per_node in transfer.alias_claims.items():
            claims = self._alias_claims.setdefault(key, {})
            for node_id, pos in per_node.items():
                claims.setdefault(node_id, pos)
        return {"node_records": len(transfer.nodes), "ops": len(ops)}

    def demote(self, node_ids) -> int:
        """Mark moved-away nodes as ghosts: their records (and incident
        edges) stay in the store — a store has no delete — but they no
        longer count as owned, so index scans and stats skip them and
        reads resolve through the new owner.  Returns how many were
        owned here."""
        demoted = 0
        retracted = ZSet()
        for node_id in node_ids:
            for owned in self._owned.values():
                if node_id in owned:
                    owned.discard(node_id)
                    demoted += 1
                    node = self.store.node(node_id)
                    for row in token_rows(node.node_type.value,
                                          node.phrase, node_id):
                        retracted.add(row, -1)
                    break
            if node_id in self.store:
                self._ghosts.add(node_id)
        if retracted:
            # Weight -1 rows: the Z-set retraction half of the algebra —
            # moved-away nodes leave the posting fragment immediately.
            self.views.advance({"tokens": retracted},
                               version=self.store.version)
        return demoted

    # ------------------------------------------------------------------
    # the shard read interface
    #
    # Everything ShardedStoreView needs from a shard goes through these
    # methods (never through ``.store`` directly), so a replica can live
    # in another process behind RPC (cluster/remote.RemoteShardReplica)
    # and the view works unchanged.  Traversal/scan methods deal in node
    # *ids*: the view resolves every returned node through its owner
    # shard anyway, and ids keep the wire payloads small.
    # ------------------------------------------------------------------
    def node(self, node_id: str) -> AttentionNode:
        return self.store.node(node_id)

    def find(self, node_type: NodeType,
             phrase: str) -> "AttentionNode | None":
        return self.store.find(node_type, phrase)

    def owned_token_ids(self, token: str, node_type: NodeType) -> list[str]:
        """Owned (non-ghost) ids for ``token``, read off this shard's
        maintained posting fragment (no per-read ownership filtering)."""
        return sorted(self._postings.ids(node_type.value, token))

    def owned_candidate_ids(self, tokens: "list[str] | set[str]",
                            node_type: NodeType) -> list[str]:
        """Owned ids sharing at least one phrase token with ``tokens``."""
        return sorted(self._postings.candidate_ids(node_type.value, tokens))

    def _ordered_neighbors(self, incident: "list[Edge]", pick,
                           edge_type: "EdgeType | None") -> list[str]:
        """Neighbor ids in global stream order: sort the adjacency by
        each edge's recorded stream position (insertion sequence breaks
        ties for unstamped edges), reproducing the single store's
        insertion order even when adopted edges arrived out of band."""
        ranked = []
        for sequence, edge in enumerate(incident):
            if edge_type is not None and edge.edge_type != edge_type:
                continue
            pos = self._edge_pos.get(
                self._edge_key(edge.source, edge.target, edge.edge_type))
            ranked.append((pos if pos is not None else 1 << 62,
                           sequence, pick(edge)))
        ranked.sort()
        return [node_id for _pos, _sequence, node_id in ranked]

    def successor_ids(self, node_id: str,
                      edge_type: "EdgeType | None" = None) -> list[str]:
        return self._ordered_neighbors(self.store.out_edges(node_id),
                                       lambda edge: edge.target, edge_type)

    def predecessor_ids(self, node_id: str,
                        edge_type: "EdgeType | None" = None) -> list[str]:
        return self._ordered_neighbors(self.store.in_edges(node_id),
                                       lambda edge: edge.source, edge_type)

    def has_edge(self, source_id: str, target_id: str,
                 edge_type: EdgeType) -> bool:
        return self.store.has_edge(source_id, target_id, edge_type)

    def edges(self, edge_type: "EdgeType | None" = None) -> list[Edge]:
        return self.store.edges(edge_type)

    # ------------------------------------------------------------------
    def owns(self, node_id: str) -> bool:
        return any(node_id in ids for ids in self._owned.values())

    def owned_ids(self, node_type: "NodeType | None" = None) -> set[str]:
        if node_type is not None:
            return set(self._owned[node_type])
        out: set[str] = set()
        for ids in self._owned.values():
            out.update(ids)
        return out

    def owned_count(self, node_type: "NodeType | None" = None) -> int:
        if node_type is not None:
            return len(self._owned[node_type])
        return sum(len(ids) for ids in self._owned.values())

    @property
    def ghost_count(self) -> int:
        return len(self._ghosts)

    def describe(self) -> dict:
        """Per-shard introspection line for cluster stats."""
        return {
            "shard": self.shard_id,
            "version": self.store.version,
            "owned": self.owned_count(),
            "ghosts": self.ghost_count,
            "deltas_applied": self.deltas_applied,
        }


class ShardedStoreView:
    """Read-only OntologyStore-compatible view over the shard set.

    Args:
        router: shard placement (hash ring) for the current epoch.
        replicas: one replica per shard, local or remote.
        registry: metrics registry for the view's ``scatter`` scope
            (fan-out latency, per-shard completion times, straggler
            shard id); defaults to the process registry.
    """

    def __init__(self, router: ShardRouter,
                 replicas: "list[ShardReplica]",
                 registry: "MetricsRegistry | None" = None) -> None:
        if router.num_shards != len(replicas):
            raise OntologyError("router/replica shard counts disagree")
        self._router = router
        self._replicas = list(replicas)
        registry = registry if registry is not None else get_registry()
        self._metrics = registry.scope("scatter")
        self._scatters = self._metrics.counter("scatters")
        self._resolves = self._metrics.counter("resolves")
        self._fanout_seconds = self._metrics.histogram("fanout_seconds")
        self._shard_seconds = self._metrics.histogram("shard_seconds")
        # Which shard finished last on the most recent scatter — the
        # read path's straggler (with remote replicas, usually the one
        # whose worker process is slow or backlogged).
        self._straggler = self._metrics.gauge("straggler_shard")
        self._recover = None

    def reseat(self, router: ShardRouter, replicas) -> None:
        """Swap in a rebalanced topology.

        This is the reader-visible *flip* of a ring-epoch change: the
        cluster service completes every slice transfer first, then
        reseats the view in one call, so reads before it see the old
        placement completely and reads after it the new one — never a
        mix.  (The async tier serializes reads against refresh, so no
        read is in flight across the call; a read that *fails* over a
        dead worker re-enters through :meth:`bind_recovery`'s hook,
        which may reseat before the retry.)
        """
        replicas = list(replicas)
        if router.num_shards != len(replicas):
            raise OntologyError("router/replica shard counts disagree")
        self._router = router
        self._replicas = replicas

    def bind_recovery(self, hook) -> None:
        """Install the cluster's shard-recovery hook: called with the
        dead ``shard_id`` when a read surfaces
        :class:`ShardUnavailableError`, expected to respawn the worker
        (and :meth:`reseat` this view) before the read retries.  Only
        *reads* retry — they are idempotent; mutating endpoints such as
        ``record_read`` apply their decay before resolving phrases, so
        a blind endpoint-level replay would double-apply it."""
        self._recover = hook

    def _with_recovery(self, attempt):
        """Run one idempotent read closure, routing a dead worker
        through the recovery hook and retrying exactly once.  The
        closure must re-read ``self._replicas`` / ``self._router`` on
        entry — recovery reseats them."""
        try:
            return attempt()
        except ShardUnavailableError as exc:
            if self._recover is None:
                raise
            self._recover(exc.shard_id)
            return attempt()

    # ------------------------------------------------------------------
    # versioning (read side only)
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Version of the global delta stream the cluster has applied."""
        return self._router.version

    # ------------------------------------------------------------------
    # mutations are rejected: replicas are fed by the delta stream
    # ------------------------------------------------------------------
    def _read_only(self, *_args, **_kwargs):
        raise OntologyError(
            "the sharded view is read-only — route OntologyDelta batches "
            "through ClusterService.refresh()"
        )

    add_node = _read_only
    add_alias = _read_only
    add_edge = _read_only
    update_payload = _read_only
    begin_delta = _read_only
    commit_delta = _read_only
    apply_delta = _read_only
    snapshot = _read_only

    # ------------------------------------------------------------------
    # pipelined scatter plumbing
    # ------------------------------------------------------------------
    def _scatter(self, method: str, *args) -> list:
        """Invoke ``method(*args)`` on every replica, dispatching all
        requests *before* collecting any reply: a remote replica
        (anything exposing ``begin_call``/``finish_call``) has its
        request on the wire while the other shards work, so a scatter
        costs one overlapped round trip instead of one per shard.
        Local replicas run inline.  Results arrive in shard order, so
        merges are byte-identical to the sequential loop.  A dead
        worker surfaces :class:`ShardUnavailableError`; the healthy
        shards' in-flight replies are drained first (keeping each
        socket's request/reply pairing intact), then the recovery hook
        respawns the worker and the whole scatter retries."""
        return self._with_recovery(lambda: self._scatter_once(method, *args))

    def _scatter_once(self, method: str, *args) -> list:
        clock = self._metrics.registry.clock
        self._scatters.inc()
        with get_tracer().span(f"scatter.{method}",
                               shards=len(self._replicas)) as span:
            start = clock()
            handles = []
            failed: "ShardUnavailableError | None" = None
            for replica in self._replicas:
                begin = getattr(replica, "begin_call", None)
                if begin is None:
                    handles.append(None)
                    continue
                try:
                    handles.append(begin(method, *args))
                except ShardUnavailableError as exc:
                    # Marker: nothing went on this wire, nothing to
                    # collect — but keep dispatching so the healthy
                    # shards' sockets stay begin/finish-paired.
                    handles.append(exc)
                    failed = failed if failed is not None else exc
            out = []
            done_at = []
            for replica, handle in zip(self._replicas, handles):
                try:
                    if isinstance(handle, ShardUnavailableError):
                        raise handle
                    if handle is None:
                        out.append(getattr(replica, method)(*args))
                    else:
                        out.append(replica.finish_call(handle))
                except ShardUnavailableError as exc:
                    failed = failed if failed is not None else exc
                    continue
                # Completion is observed at collect time (in shard
                # order), so per-shard readings include any wait behind
                # earlier shards — an upper bound that still singles
                # out the shard the fan-out actually waited on last.
                done_at.append(clock() - start)
            if failed is not None:
                raise failed
            for elapsed in done_at:
                self._shard_seconds.observe(elapsed)
            self._fanout_seconds.observe(clock() - start)
            straggler = max(range(len(done_at)),
                            key=done_at.__getitem__) if done_at else 0
            self._straggler.set(straggler)
            if span is not None:
                span.set(straggler=straggler)
            # Only a straggler that crossed the recorder's slow-call
            # threshold is an event — every scatter has *some* last
            # shard, and recording them all would flood the ring.
            recorder = get_recorder()
            if done_at and done_at[straggler] >= recorder.slow_call_seconds:
                recorder.record("scatter.straggler", f"shard-{straggler}",
                                method=method,
                                seconds=done_at[straggler],
                                shards=len(self._replicas))
        return out

    def _resolve(self, node_ids) -> list[AttentionNode]:
        """Owner-shard point lookups for an id sequence, pipelined per
        owning replica (each owner answers its socket in request order,
        so replies pair up deterministically).  Dead-worker failures
        recover and retry like :meth:`_scatter`."""
        node_ids = list(node_ids)
        return self._with_recovery(lambda: self._resolve_once(node_ids))

    def _resolve_once(self, node_ids) -> list[AttentionNode]:
        self._resolves.inc()
        with self._metrics.time("resolve_seconds"):
            handles = []
            failed: "ShardUnavailableError | None" = None
            for node_id in node_ids:
                replica = self._replicas[self._router.owner_of(node_id)]
                begin = getattr(replica, "begin_call", None)
                if begin is None:
                    handles.append((replica, node_id, None))
                    continue
                try:
                    handles.append((replica, node_id,
                                    begin("node", node_id)))
                except ShardUnavailableError as exc:
                    handles.append((replica, node_id, exc))
                    failed = failed if failed is not None else exc
            out = []
            for replica, node_id, handle in handles:
                try:
                    if isinstance(handle, ShardUnavailableError):
                        raise handle
                    out.append(replica.node(node_id) if handle is None
                               else replica.finish_call(handle))
                except ShardUnavailableError as exc:
                    failed = failed if failed is not None else exc
            if failed is not None:
                raise failed
            return out

    # ------------------------------------------------------------------
    # point lookups
    # ------------------------------------------------------------------
    def node(self, node_id: str) -> AttentionNode:
        """Canonical node object, resolved through its owner shard."""
        return self._with_recovery(
            lambda: self._replicas[self._router.owner_of(node_id)]
            .node(node_id))

    def find(self, node_type: NodeType, phrase: str) -> "AttentionNode | None":
        """Exact phrase/alias lookup.

        Canonical phrases hash straight to their owner shard, but alias
        keys live wherever the *target* node is owned, so the lookup
        scatters.  Merges reproduce single-store semantics exactly: a
        canonical-phrase claimant always wins (in a single store, a node
        whose canonical phrase is the key must have been created before
        any alias could claim it — later ``add_node`` calls merge rather
        than create); otherwise the *earliest alias claim* in the global
        stream wins, matching the store's ``setdefault`` first-wins rule
        (replicas record each key's first claim position as routed).
        """
        ids = {hit.node_id
               for hit in self._scatter("find", node_type, phrase)
               if hit is not None}
        if not ids:
            return None
        if len(ids) > 1:
            exact = {nid for nid in ids
                     if self.node(nid).phrase.lower() == phrase.lower()}
            if exact:
                ids = exact
            else:
                key = f"{node_type.value}::{phrase.lower()}"

                def first_claim(nid: str) -> "tuple[int, tuple[int, str]]":
                    claim = self._with_recovery(
                        lambda: self._owner(nid).alias_claim(key, nid))
                    return (claim if claim is not None else 1 << 62,
                            creation_order(nid))

                return self.node(min(ids, key=first_claim))
        return self.node(min(ids, key=creation_order))

    def nodes(self, node_type: "NodeType | None" = None) -> list[AttentionNode]:
        ids: list[str] = []
        for owned in self._scatter("owned_ids", node_type):
            ids.extend(owned)
        ids.sort(key=creation_order)
        return self._resolve(ids)

    def count(self, node_type: "NodeType | None" = None) -> int:
        return sum(self._scatter("owned_count", node_type))

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._router

    def __len__(self) -> int:
        return self.count()

    # ------------------------------------------------------------------
    # inverted-index candidate generation (scatter-gather)
    # ------------------------------------------------------------------
    def nodes_with_token(self, token: str, node_type: NodeType
                         ) -> list[AttentionNode]:
        ids: set[str] = set()
        for shard_ids in self._scatter("owned_token_ids", token, node_type):
            ids.update(shard_ids)
        return self._resolve(sorted(ids))

    def candidates(self, tokens: "list[str] | set[str]", node_type: NodeType
                   ) -> list[AttentionNode]:
        ids: set[str] = set()
        for shard_ids in self._scatter("owned_candidate_ids", tokens,
                                       node_type):
            ids.update(shard_ids)
        return self._resolve(sorted(ids))

    def contained_phrases(self, tokens: list[str], node_type: NodeType
                          ) -> list[AttentionNode]:
        out: list[AttentionNode] = []
        for node in self.candidates(tokens, node_type):
            ptoks = node.tokens
            if not ptoks or len(ptoks) > len(tokens):
                continue
            k = len(ptoks)
            if any(tokens[i:i + k] == ptoks
                   for i in range(len(tokens) - k + 1)):
                out.append(node)
        return out

    # ------------------------------------------------------------------
    # edges / traversal
    # ------------------------------------------------------------------
    def _owner(self, node_id: str) -> ShardReplica:
        return self._replicas[self._router.owner_of(node_id)]

    def successors(self, node_id: str, edge_type: "EdgeType | None" = None
                   ) -> list[AttentionNode]:
        local = self._with_recovery(
            lambda: self._owner(node_id).successor_ids(node_id, edge_type))
        return self._resolve(local)

    def predecessors(self, node_id: str, edge_type: "EdgeType | None" = None
                     ) -> list[AttentionNode]:
        local = self._with_recovery(
            lambda: self._owner(node_id).predecessor_ids(node_id, edge_type))
        return self._resolve(local)

    def has_edge(self, source_id: str, target_id: str,
                 edge_type: EdgeType) -> bool:
        return self._with_recovery(
            lambda: self._owner(source_id).has_edge(source_id, target_id,
                                                    edge_type))

    def edges(self, edge_type: "EdgeType | None" = None) -> list[Edge]:
        """All edges, gathered and de-duplicated (each cross-shard edge
        is stored on both endpoint owner shards)."""
        seen: set[tuple[str, str, EdgeType]] = set()
        out: list[Edge] = []
        for shard_edges in self._scatter("edges", edge_type):
            for edge in shard_edges:
                if edge.edge_type == EdgeType.CORRELATE:
                    key = (min(edge.source, edge.target),
                           max(edge.source, edge.target), edge.edge_type)
                else:
                    key = (edge.source, edge.target, edge.edge_type)
                if key in seen:
                    continue
                seen.add(key)
                out.append(edge)
        return out

    def has_path(self, start: str, goal: str,
                 edge_type: EdgeType = EdgeType.ISA) -> bool:
        """Distributed reachability: BFS hopping owner shards per node."""
        stack = [start]
        visited = {start}
        while stack:
            current = stack.pop()
            if current == goal:
                return True
            targets = self._with_recovery(
                lambda: self._owner(current).successor_ids(current,
                                                           edge_type))
            for target_id in targets:
                if target_id not in visited:
                    visited.add(target_id)
                    stack.append(target_id)
        return False

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Cluster-wide Table 1/2-shape stats (owned nodes, unique edges)."""
        out: dict[str, int] = {t.value: self.count(t) for t in NodeType}
        for etype in EdgeType:
            out[etype.value] = len(self.edges(etype))
        return out
