"""Shard replicas and the scatter-gather read view (DESIGN.md §6).

:class:`ShardReplica` wraps one shard's :class:`~repro.core.store.
OntologyStore`: it applies the sub-deltas the
:class:`~repro.cluster.router.ShardRouter` routes to it and tracks which
local nodes are *owned* (hash-assigned) versus *ghost* endpoint replicas
materialised for cross-shard edges.

:class:`ShardedStoreView` then exposes the cluster as one read-only
object implementing the :class:`OntologyStore` read API, so the ordinary
:class:`~repro.apps.tagging.DocumentTagger` /
:class:`~repro.apps.query.QueryUnderstander` /
:class:`~repro.serving.service.OntologyService` stack runs over a
partitioned cluster unchanged.  Merge semantics are deterministic and
reconstruct single-store behaviour exactly:

* point lookups (``node``) route to the owning shard;
* index scans (``candidates``, ``nodes_with_token``) scatter to every
  shard, drop ghost duplicates, merge by sorted node id — the same order
  a single store returns;
* ``nodes`` merges owned partitions in creation order (ids embed the
  global counter);
* traversals (``successors`` / ``predecessors`` / ``has_path``) read the
  owner shard's edge lists — complete by the ghost-replication invariant
  — and resolve every returned node through *its* owner shard, so
  payloads are never served from a stale ghost;
* ``stats`` counts owned nodes per shard and de-duplicates gathered
  edges, reproducing the single store's Table 1/2 numbers exactly.

Mutations raise: cluster replicas are serving replicas, fed exclusively
by the delta stream through ``ClusterService.refresh``.
"""

from __future__ import annotations

from ..core.store import (
    AttentionNode,
    Edge,
    EdgeType,
    NodeType,
    OntologyDelta,
    OntologyStore,
    creation_order,
)
from ..errors import OntologyError
from .router import ShardRouter


class ShardReplica:
    """One shard: a store plus owned/ghost bookkeeping."""

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.store = OntologyStore()
        self._owned: dict[NodeType, set[str]] = {t: set() for t in NodeType}
        self._ghosts: set[str] = set()
        self._alias_claims: dict[str, int] = {}
        self.deltas_applied = 0

    def apply(self, sub_delta: OntologyDelta) -> None:
        """Apply one routed sub-delta, tracking owned vs ghost nodes and
        the global stream position of each alias key's first claim."""
        self.store.apply_delta(sub_delta)
        for op in sub_delta.ops:
            if op["op"] == "alias":
                pos = op.get("pos")
                if pos is not None:
                    node = self.store.node(op["node_id"])
                    key = f"{node.node_type.value}::{op['alias'].lower()}"
                    self._alias_claims.setdefault(key, pos)
                continue
            if op["op"] != "node" or not op.get("created"):
                continue
            if op.get("ghost"):
                self._ghosts.add(op["node_id"])
            else:
                self._owned[NodeType(op["type"])].add(op["node_id"])
        self.deltas_applied += 1

    def alias_claim(self, key: str) -> "int | None":
        """Stream position at which this shard first claimed ``key``."""
        return self._alias_claims.get(key)

    # ------------------------------------------------------------------
    # the shard read interface
    #
    # Everything ShardedStoreView needs from a shard goes through these
    # methods (never through ``.store`` directly), so a replica can live
    # in another process behind RPC (cluster/remote.RemoteShardReplica)
    # and the view works unchanged.  Traversal/scan methods deal in node
    # *ids*: the view resolves every returned node through its owner
    # shard anyway, and ids keep the wire payloads small.
    # ------------------------------------------------------------------
    def node(self, node_id: str) -> AttentionNode:
        return self.store.node(node_id)

    def find(self, node_type: NodeType,
             phrase: str) -> "AttentionNode | None":
        return self.store.find(node_type, phrase)

    def owned_token_ids(self, token: str, node_type: NodeType) -> list[str]:
        """Owned (non-ghost) ids from this shard's inverted index."""
        return sorted(
            n.node_id for n in self.store.nodes_with_token(token, node_type)
            if self.owns(n.node_id))

    def owned_candidate_ids(self, tokens: "list[str] | set[str]",
                            node_type: NodeType) -> list[str]:
        """Owned ids sharing at least one phrase token with ``tokens``."""
        return sorted(
            n.node_id for n in self.store.candidates(tokens, node_type)
            if self.owns(n.node_id))

    def successor_ids(self, node_id: str,
                      edge_type: "EdgeType | None" = None) -> list[str]:
        return [n.node_id for n in self.store.successors(node_id, edge_type)]

    def predecessor_ids(self, node_id: str,
                        edge_type: "EdgeType | None" = None) -> list[str]:
        return [n.node_id
                for n in self.store.predecessors(node_id, edge_type)]

    def has_edge(self, source_id: str, target_id: str,
                 edge_type: EdgeType) -> bool:
        return self.store.has_edge(source_id, target_id, edge_type)

    def edges(self, edge_type: "EdgeType | None" = None) -> list[Edge]:
        return self.store.edges(edge_type)

    # ------------------------------------------------------------------
    def owns(self, node_id: str) -> bool:
        return any(node_id in ids for ids in self._owned.values())

    def owned_ids(self, node_type: "NodeType | None" = None) -> set[str]:
        if node_type is not None:
            return set(self._owned[node_type])
        out: set[str] = set()
        for ids in self._owned.values():
            out.update(ids)
        return out

    def owned_count(self, node_type: "NodeType | None" = None) -> int:
        if node_type is not None:
            return len(self._owned[node_type])
        return sum(len(ids) for ids in self._owned.values())

    @property
    def ghost_count(self) -> int:
        return len(self._ghosts)

    def describe(self) -> dict:
        """Per-shard introspection line for cluster stats."""
        return {
            "shard": self.shard_id,
            "version": self.store.version,
            "owned": self.owned_count(),
            "ghosts": self.ghost_count,
            "deltas_applied": self.deltas_applied,
        }


class ShardedStoreView:
    """Read-only OntologyStore-compatible view over the shard set."""

    def __init__(self, router: ShardRouter,
                 replicas: "list[ShardReplica]") -> None:
        if router.num_shards != len(replicas):
            raise OntologyError("router/replica shard counts disagree")
        self._router = router
        self._replicas = list(replicas)

    # ------------------------------------------------------------------
    # versioning (read side only)
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Version of the global delta stream the cluster has applied."""
        return self._router.version

    # ------------------------------------------------------------------
    # mutations are rejected: replicas are fed by the delta stream
    # ------------------------------------------------------------------
    def _read_only(self, *_args, **_kwargs):
        raise OntologyError(
            "the sharded view is read-only — route OntologyDelta batches "
            "through ClusterService.refresh()"
        )

    add_node = _read_only
    add_alias = _read_only
    add_edge = _read_only
    update_payload = _read_only
    begin_delta = _read_only
    commit_delta = _read_only
    apply_delta = _read_only
    snapshot = _read_only

    # ------------------------------------------------------------------
    # point lookups
    # ------------------------------------------------------------------
    def node(self, node_id: str) -> AttentionNode:
        """Canonical node object, resolved through its owner shard."""
        return self._replicas[self._router.owner_of(node_id)].node(node_id)

    def find(self, node_type: NodeType, phrase: str) -> "AttentionNode | None":
        """Exact phrase/alias lookup.

        Canonical phrases hash straight to their owner shard, but alias
        keys live wherever the *target* node is owned, so the lookup
        scatters.  Merges reproduce single-store semantics exactly: a
        canonical-phrase claimant always wins (in a single store, a node
        whose canonical phrase is the key must have been created before
        any alias could claim it — later ``add_node`` calls merge rather
        than create); otherwise the *earliest alias claim* in the global
        stream wins, matching the store's ``setdefault`` first-wins rule
        (replicas record each key's first claim position as routed).
        """
        ids = set()
        for replica in self._replicas:
            hit = replica.find(node_type, phrase)
            if hit is not None:
                ids.add(hit.node_id)
        if not ids:
            return None
        if len(ids) > 1:
            exact = {nid for nid in ids
                     if self.node(nid).phrase.lower() == phrase.lower()}
            if exact:
                ids = exact
            else:
                key = f"{node_type.value}::{phrase.lower()}"

                def first_claim(nid: str) -> "tuple[int, tuple[int, str]]":
                    owner = self._replicas[self._router.owner_of(nid)]
                    claim = owner.alias_claim(key)
                    return (claim if claim is not None else 1 << 62,
                            creation_order(nid))

                return self.node(min(ids, key=first_claim))
        return self.node(min(ids, key=creation_order))

    def nodes(self, node_type: "NodeType | None" = None) -> list[AttentionNode]:
        ids: list[str] = []
        for replica in self._replicas:
            ids.extend(replica.owned_ids(node_type))
        ids.sort(key=creation_order)
        return [self.node(node_id) for node_id in ids]

    def count(self, node_type: "NodeType | None" = None) -> int:
        return sum(r.owned_count(node_type) for r in self._replicas)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._router

    def __len__(self) -> int:
        return self.count()

    # ------------------------------------------------------------------
    # inverted-index candidate generation (scatter-gather)
    # ------------------------------------------------------------------
    def nodes_with_token(self, token: str, node_type: NodeType
                         ) -> list[AttentionNode]:
        ids: set[str] = set()
        for replica in self._replicas:
            ids.update(replica.owned_token_ids(token, node_type))
        return [self.node(node_id) for node_id in sorted(ids)]

    def candidates(self, tokens: "list[str] | set[str]", node_type: NodeType
                   ) -> list[AttentionNode]:
        ids: set[str] = set()
        for replica in self._replicas:
            ids.update(replica.owned_candidate_ids(tokens, node_type))
        return [self.node(node_id) for node_id in sorted(ids)]

    def contained_phrases(self, tokens: list[str], node_type: NodeType
                          ) -> list[AttentionNode]:
        out: list[AttentionNode] = []
        for node in self.candidates(tokens, node_type):
            ptoks = node.tokens
            if not ptoks or len(ptoks) > len(tokens):
                continue
            k = len(ptoks)
            if any(tokens[i:i + k] == ptoks
                   for i in range(len(tokens) - k + 1)):
                out.append(node)
        return out

    # ------------------------------------------------------------------
    # edges / traversal
    # ------------------------------------------------------------------
    def _owner(self, node_id: str) -> ShardReplica:
        return self._replicas[self._router.owner_of(node_id)]

    def successors(self, node_id: str, edge_type: "EdgeType | None" = None
                   ) -> list[AttentionNode]:
        local = self._owner(node_id).successor_ids(node_id, edge_type)
        return [self.node(target_id) for target_id in local]

    def predecessors(self, node_id: str, edge_type: "EdgeType | None" = None
                     ) -> list[AttentionNode]:
        local = self._owner(node_id).predecessor_ids(node_id, edge_type)
        return [self.node(source_id) for source_id in local]

    def has_edge(self, source_id: str, target_id: str,
                 edge_type: EdgeType) -> bool:
        return self._owner(source_id).has_edge(source_id, target_id,
                                               edge_type)

    def edges(self, edge_type: "EdgeType | None" = None) -> list[Edge]:
        """All edges, gathered and de-duplicated (each cross-shard edge
        is stored on both endpoint owner shards)."""
        seen: set[tuple[str, str, EdgeType]] = set()
        out: list[Edge] = []
        for replica in self._replicas:
            for edge in replica.edges(edge_type):
                if edge.edge_type == EdgeType.CORRELATE:
                    key = (min(edge.source, edge.target),
                           max(edge.source, edge.target), edge.edge_type)
                else:
                    key = (edge.source, edge.target, edge.edge_type)
                if key in seen:
                    continue
                seen.add(key)
                out.append(edge)
        return out

    def has_path(self, start: str, goal: str,
                 edge_type: EdgeType = EdgeType.ISA) -> bool:
        """Distributed reachability: BFS hopping owner shards per node."""
        stack = [start]
        visited = {start}
        while stack:
            current = stack.pop()
            if current == goal:
                return True
            for target_id in self._owner(current).successor_ids(current,
                                                                edge_type):
                if target_id not in visited:
                    visited.add(target_id)
                    stack.append(target_id)
        return False

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Cluster-wide Table 1/2-shape stats (owned nodes, unique edges)."""
        out: dict[str, int] = {t.value: self.count(t) for t in NodeType}
        for etype in EdgeType:
            out[etype.value] = len(self.edges(etype))
        return out
