"""Cross-process shards: worker processes follower-fed from the delta log.

The in-process :class:`~repro.cluster.service.ClusterService` holds its N
:class:`~repro.cluster.shards.ShardReplica` stores in one address space.
This module moves each shard into its own **worker process** (DESIGN.md
§8), closing the ROADMAP's "cross-process shard servers" item:

* data flows through the **replicated delta log** — every worker runs a
  log follower against the shared
  :class:`~repro.replication.publisher.LogPublisher`: it bootstraps from
  the newest :class:`~repro.replication.catalog.SnapshotCatalog`
  snapshot folded through its own (deterministic)
  :class:`~repro.cluster.router.ShardRouter`, replays the log tail, and
  catches up on demand; a :class:`~repro.errors.DeltaGapError` (the log
  GC'd past the worker) is recovered by re-bootstrapping;
* reads flow over **RPC** — the parent's
  :class:`~repro.cluster.shards.ShardedStoreView` talks to
  :class:`RemoteShardReplica` proxies speaking the shard read interface
  (the same methods a local ``ShardReplica`` serves) over the
  :mod:`repro.serving.rpc` length-prefixed framing and codec, so
  scatter-gather merges cross process boundaries unchanged;
* :class:`RemoteClusterService` assembles the pieces into a drop-in for
  ``ClusterService`` whose serving responses are **byte-identical**
  (``rpc.dumps``) to the in-process cluster and to a single store at the
  same stream version — the tests assert all three.

Workers never receive pushed state: ``sync(version)`` is a control
signal ("the log now holds version v; catch up from it"), keeping the
log the single source of truth.
"""

from __future__ import annotations

import json
import multiprocessing
import socket
import time
from typing import Any, Iterable, Sequence

from ..core.ontology import AttentionOntology
from ..core.serialize import store_from_dict, store_to_delta
from ..core.store import AttentionNode, Edge, EdgeType, NodeType, OntologyDelta
from ..errors import DeltaGapError, OntologyError, ReproError
from ..replication.follower import SyncLogClient
from ..serving.rpc import (
    _canonical_bytes,
    decode,
    encode,
    read_frame_sync,
    write_frame_sync,
)
from ..serving.service import OntologyService
from .router import ShardRouter
from .shards import ShardReplica, ShardedStoreView

#: Shard read-interface methods a worker dispatches by name.
SHARD_READ_METHODS = frozenset({
    "node", "find", "owns", "owned_ids", "owned_count", "alias_claim",
    "owned_token_ids", "owned_candidate_ids", "successor_ids",
    "predecessor_ids", "has_edge", "edges", "describe",
})

_SYNC_WAIT_SECONDS = 2.0  # one long-poll slice while catching up
_SYNC_MAX_SECONDS = 120.0  # give up if the log never reaches the target


def _advance(router: ShardRouter, deltas: "Iterable[OntologyDelta]",
             shard_id: "int | None" = None,
             replica: "ShardReplica | None" = None) -> int:
    """Route a contiguous delta batch sequence; apply this shard's subs.

    With ``replica=None`` (the parent's router) sub-deltas are split for
    ownership bookkeeping and discarded — the parent holds no store.
    """
    advanced = 0
    for delta in deltas:
        if not DeltaGapError.check("shard follower", router.version, delta):
            continue
        subs = router.split(delta)
        if replica is not None:
            sub = subs[shard_id]
            if sub is not None:
                replica.apply(sub)
        advanced += 1
    return advanced


def _bootstrap_shard(client: SyncLogClient, num_shards: int,
                     shard_id: "int | None"
                     ) -> "tuple[ShardRouter, ShardReplica | None]":
    """Snapshot-plus-tail bootstrap of one shard (or, with
    ``shard_id=None``, of a routing-only parent).

    The catalog snapshot is folded into one synthetic delta
    (:func:`store_to_delta`) and routed through a fresh router — every
    process folds the *same* snapshot through the *same* deterministic
    router, so all of them agree on ownership and ghost placement — then
    the router is fast-forwarded to the snapshot's stream version and
    the log tail replays on top.
    """
    router = ShardRouter(num_shards)
    replica = ShardReplica(shard_id) if shard_id is not None else None
    snapshot, version = client.latest_snapshot()
    if snapshot is not None:
        subs = router.split(store_to_delta(store_from_dict(snapshot)))
        if replica is not None and subs[shard_id] is not None:
            replica.apply(subs[shard_id])
        router.fast_forward(version)
    _advance(router, client.fetch(router.version), shard_id, replica)
    return router, replica


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
def _catch_up(client: SyncLogClient, router: ShardRouter,
              replica: ShardReplica, shard_id: int, target: int
              ) -> "tuple[ShardRouter, ShardReplica, bool]":
    """Advance the worker to ``target``, re-bootstrapping through a
    :class:`DeltaGapError`; returns (router, replica, recovered)."""
    recovered = False
    deadline = time.monotonic() + _SYNC_MAX_SECONDS
    while router.version < target:
        if time.monotonic() > deadline:
            raise ReproError(
                f"shard {shard_id} could not catch up to version "
                f"{target} (log at {router.version})")
        try:
            deltas = client.wait(router.version, timeout=_SYNC_WAIT_SECONDS)
            _advance(router, deltas, shard_id, replica)
        except DeltaGapError:
            router, replica = _bootstrap_shard(client, router.num_shards,
                                               shard_id)
            recovered = True
    return router, replica, recovered


def _shard_worker_main(shard_id: int, num_shards: int,
                       publisher_host: str, publisher_port: int,
                       ready, accept_timeout: float) -> None:
    """One shard behind a socket: bootstrap from the log, serve reads."""
    try:
        client = SyncLogClient.connect(publisher_host, publisher_port)
        router, replica = _bootstrap_shard(client, num_shards, shard_id)
        server = socket.create_server(("127.0.0.1", 0))
        server.settimeout(accept_timeout)
        ready.put(("ready", shard_id, server.getsockname()[1]))
    except Exception as exc:
        ready.put(("error", shard_id, f"bootstrap failed: {exc!r}"))
        return
    try:
        conn, _addr = server.accept()
    except (OSError, TimeoutError):
        return  # the parent never connected; nothing to serve
    with conn:
        while True:
            try:
                frame = read_frame_sync(conn)
            except (ConnectionError, OSError, ReproError):
                break  # parent vanished mid-frame
            if frame is None:
                break
            stop = False
            request_id = None
            try:
                request = json.loads(frame.decode("utf-8"))
                request_id = request.get("id")
                method = request.get("method")
                args = decode(request.get("args", []))
                kwargs = decode(request.get("kwargs", {}))
                if method == "stop":
                    stop = True
                    result: Any = True
                elif method == "sync":
                    router, replica, recovered = _catch_up(
                        client, router, replica, shard_id, *args, **kwargs)
                    result = dict(replica.describe(), recovered=recovered)
                elif method == "ghost_count":
                    result = replica.ghost_count
                elif method in SHARD_READ_METHODS:
                    result = getattr(replica, method)(*args, **kwargs)
                else:
                    raise ReproError(f"unknown shard method {method!r}")
                body = {"id": request_id, "result": encode(result)}
            except Exception as exc:
                body = {"id": request_id,
                        "error": {"type": type(exc).__name__,
                                  "message": str(exc)}}
            try:
                write_frame_sync(conn, _canonical_bytes(body))
            except (ConnectionError, OSError):
                break
            if stop:
                break
    client.close()
    server.close()


# ----------------------------------------------------------------------
# parent-side proxy
# ----------------------------------------------------------------------
class RemoteShardReplica:
    """Client proxy speaking the shard read interface over a socket.

    Implements exactly the methods
    :class:`~repro.cluster.shards.ShardedStoreView` consumes from a
    local :class:`ShardReplica`, so the view scatter-gathers across
    processes without knowing it.
    """

    def __init__(self, shard_id: int, host: str, port: int,
                 timeout: float = 120.0) -> None:
        self.shard_id = shard_id
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._next_id = 0

    def _call(self, method: str, *args, **kwargs) -> Any:
        request_id = self._next_id
        self._next_id += 1
        payload = _canonical_bytes({
            "id": request_id, "method": method,
            "args": encode(list(args)), "kwargs": encode(kwargs)})
        write_frame_sync(self._sock, payload)
        frame = read_frame_sync(self._sock)
        if frame is None:
            raise ReproError(
                f"shard {self.shard_id} worker closed the connection")
        body = json.loads(frame.decode("utf-8"))
        if body.get("id") != request_id:
            raise ReproError(f"shard {self.shard_id} response id mismatch")
        error = body.get("error")
        if error is not None:
            kind = error.get("type")
            message = f"shard {self.shard_id}: {error.get('message')}"
            if kind == "DeltaGapError":
                raise DeltaGapError(message)
            if kind == "OntologyError":
                raise OntologyError(message)
            raise ReproError(f"{kind}: {message}")
        return decode(body["result"])

    # ------------------------------------------------------------------
    # the shard read interface (see ShardReplica)
    # ------------------------------------------------------------------
    def node(self, node_id: str) -> AttentionNode:
        return self._call("node", node_id)

    def find(self, node_type: NodeType,
             phrase: str) -> "AttentionNode | None":
        return self._call("find", node_type, phrase)

    def owns(self, node_id: str) -> bool:
        return self._call("owns", node_id)

    def owned_ids(self, node_type: "NodeType | None" = None) -> set:
        return self._call("owned_ids", node_type)

    def owned_count(self, node_type: "NodeType | None" = None) -> int:
        return self._call("owned_count", node_type)

    def alias_claim(self, key: str) -> "int | None":
        return self._call("alias_claim", key)

    def owned_token_ids(self, token: str, node_type: NodeType) -> list:
        return self._call("owned_token_ids", token, node_type)

    def owned_candidate_ids(self, tokens, node_type: NodeType) -> list:
        return self._call("owned_candidate_ids", list(tokens), node_type)

    def successor_ids(self, node_id: str,
                      edge_type: "EdgeType | None" = None) -> list:
        return self._call("successor_ids", node_id, edge_type)

    def predecessor_ids(self, node_id: str,
                        edge_type: "EdgeType | None" = None) -> list:
        return self._call("predecessor_ids", node_id, edge_type)

    def has_edge(self, source_id: str, target_id: str,
                 edge_type: EdgeType) -> bool:
        return self._call("has_edge", source_id, target_id, edge_type)

    def edges(self, edge_type: "EdgeType | None" = None) -> "list[Edge]":
        return self._call("edges", edge_type)

    def describe(self) -> dict:
        return self._call("describe")

    @property
    def ghost_count(self) -> int:
        return self._call("ghost_count")

    # ------------------------------------------------------------------
    def sync(self, version: int) -> dict:
        """Tell the worker the log holds ``version``; it catches up from
        the shared log (re-bootstrapping through a GC gap) and returns
        its ``describe()`` line plus a ``recovered`` flag."""
        return self._call("sync", version)

    def stop(self) -> None:
        try:
            self._call("stop")
        except (ReproError, OSError):
            pass

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# the remote cluster
# ----------------------------------------------------------------------
class RemoteClusterService:
    """A :class:`ClusterService` whose shards run in worker processes.

    Args:
        publisher_address: ``(host, port)`` of the
            :class:`~repro.replication.publisher.LogPublisher` feeding
            the fleet.
        num_shards: worker process count (= hash partitions).
        ner / duet / tagger_options / max_rewrites /
            max_recommendations / cache_size: forwarded to the inner
            :class:`OntologyService` running over the remote view.
        start_timeout: seconds to wait for every worker to bootstrap.

    The parent holds no shard store: it keeps a routing-only
    :class:`ShardRouter` (fed from the same log) for owner lookups and
    runs the ordinary serving stack over a
    :class:`~repro.cluster.shards.ShardedStoreView` of
    :class:`RemoteShardReplica` proxies.
    """

    def __init__(self, publisher_address: "tuple[str, int]",
                 num_shards: int = 4, ner=None, duet=None,
                 tagger_options: "dict[str, Any] | None" = None,
                 max_rewrites: int = 5, max_recommendations: int = 5,
                 cache_size: int = 4096,
                 start_timeout: float = 180.0) -> None:
        if num_shards <= 0:
            raise OntologyError("a cluster needs at least one shard")
        host, port = publisher_address
        # Spawn (not fork): the parent may run a publisher event loop in
        # a thread, and forked children could inherit its lock state.
        context = multiprocessing.get_context("spawn")
        self._ready = context.Queue()
        self._processes = []
        self._replicas: "list[RemoteShardReplica]" = []
        self._client: "SyncLogClient | None" = None
        self._closed = False
        for shard_id in range(num_shards):
            process = context.Process(
                target=_shard_worker_main,
                args=(shard_id, num_shards, host, port, self._ready,
                      start_timeout),
                daemon=True,
            )
            process.start()
            self._processes.append(process)
        try:
            ports: dict[int, int] = {}
            deadline = time.monotonic() + start_timeout
            while len(ports) < num_shards:
                try:
                    message = self._ready.get(timeout=1.0)
                except Exception:
                    dead = [p.pid for p in self._processes
                            if not p.is_alive()]
                    if dead and self._ready.empty():
                        raise ReproError(
                            f"shard worker process(es) {dead} died "
                            "before reporting ready") from None
                    if time.monotonic() > deadline:
                        raise ReproError(
                            "timed out waiting for shard workers to "
                            "bootstrap from the log") from None
                    continue
                if message[0] != "ready":
                    raise ReproError(
                        f"shard worker {message[1]} failed: {message[2]}")
                ports[message[1]] = message[2]
            self._replicas = [
                RemoteShardReplica(shard_id, "127.0.0.1", ports[shard_id])
                for shard_id in range(num_shards)
            ]
            self._client = SyncLogClient.connect(host, port)
            self._router, _ = _bootstrap_shard(self._client, num_shards,
                                               None)
            # Workers bootstrapped independently; align them with the
            # parent's log position before the first read.
            for replica in self._replicas:
                replica.sync(self._router.version)
        except Exception:
            self.close()
            raise
        self._view = ShardedStoreView(self._router, self._replicas)
        self._service = OntologyService(
            AttentionOntology(store=self._view), ner=ner, duet=duet,
            tagger_options=tagger_options, max_rewrites=max_rewrites,
            max_recommendations=max_recommendations, cache_size=cache_size,
        )
        self._deltas_applied = 0

    # ------------------------------------------------------------------
    # cluster state
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self._router.num_shards

    @property
    def version(self) -> int:
        """Global delta-stream version the cluster serves."""
        return self._router.version

    @property
    def ontology(self) -> AttentionOntology:
        return self._service.ontology

    @property
    def replicas(self) -> "list[RemoteShardReplica]":
        return list(self._replicas)

    def sync(self) -> int:
        """Pull new batches from the shared log and fan the catch-up
        signal to every worker; returns batches newly routed."""
        try:
            advanced = _advance(self._router,
                                self._client.fetch(self._router.version))
        except DeltaGapError:
            # The log GC'd past the parent's routing state: rebuild it
            # (workers re-bootstrap themselves on their own gap).
            self._router, _ = _bootstrap_shard(
                self._client, self.num_shards, None)
            advanced = 0
        for replica in self._replicas:
            replica.sync(self._router.version)
        self._deltas_applied += advanced
        return advanced

    def refresh(self, deltas: "Iterable[OntologyDelta]") -> int:
        """API parity with :meth:`ClusterService.refresh` for follower-
        fed clusters: the batches must already be *published to the
        shared log* (the log is the only data path to the workers);
        refresh then syncs the fleet and verifies it caught up."""
        target = max((delta.version for delta in deltas), default=0)
        applied = self.sync()
        if self._router.version < target:
            raise OntologyError(
                f"remote shards are fed from the shared log, which is at "
                f"version {self._router.version} < {target}; publish the "
                f"deltas to the log before refreshing"
            )
        return applied

    # ------------------------------------------------------------------
    # serving APIs (delegated to the inner service over the remote view)
    # ------------------------------------------------------------------
    def tag_documents(self, documents: Sequence):
        """Tag a batch via cross-process scatter-gather candidate reads."""
        return self._service.tag_documents(documents)

    def interpret_queries(self, queries: "Sequence[str]"):
        return self._service.interpret_queries(queries)

    def neighborhood(self, node_id: str, depth: int = 1,
                     edge_type: "EdgeType | None" = None) -> tuple:
        return self._service.neighborhood(node_id, depth=depth,
                                          edge_type=edge_type)

    def concepts_of_entity(self, entity_phrase: str) -> tuple:
        return self._service.concepts_of_entity(entity_phrase)

    def record_read(self, user_id: str, tags: "list[str]",
                    weight: float = 1.0):
        return self._service.record_read(user_id, tags, weight=weight)

    def user_interests(self, user_id: str, k: int = 10, node_type=None):
        return self._service.user_interests(user_id, k=k,
                                            node_type=node_type)

    def recommend_for_user(self, user_id: str, k: int = 5):
        return self._service.recommend_for_user(user_id, k=k)

    def track_events(self, events) -> int:
        return self._service.track_events(events)

    def follow_ups(self, read_phrase: str, limit: int = 3):
        return self._service.follow_ups(read_phrase, limit=limit)

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Inner serving stats plus per-worker shard lines."""
        stats = self._service.stats()
        stats["num_shards"] = self.num_shards
        stats["cluster_deltas_applied"] = self._deltas_applied
        stats["shards"] = [replica.describe() for replica in self._replicas]
        return stats

    def close(self) -> None:
        """Stop workers and close sockets (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for replica in self._replicas:
            replica.stop()
            replica.close()
        if self._client is not None:
            self._client.close()
        for process in self._processes:
            process.join(timeout=10.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)

    def __enter__(self) -> "RemoteClusterService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
