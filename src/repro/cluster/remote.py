"""Cross-process shards: worker processes follower-fed from the delta log.

The in-process :class:`~repro.cluster.service.ClusterService` holds its N
:class:`~repro.cluster.shards.ShardReplica` stores in one address space.
This module moves each shard into its own **worker process** (DESIGN.md
§8/§9):

* data flows through the **replicated delta log** — every worker runs a
  log follower against the shared
  :class:`~repro.replication.publisher.LogPublisher`: it bootstraps from
  the newest :class:`~repro.replication.catalog.SnapshotCatalog`
  snapshot plus the log tail (crossing any ring-epoch flips the tail
  contains), registers itself as a follower so segment GC waits for it,
  and catches up on demand; a :class:`~repro.errors.DeltaGapError` (the
  log GC'd past the worker) is recovered by re-bootstrapping;
* reads flow over **RPC** — the parent's
  :class:`~repro.cluster.shards.ShardedStoreView` talks to
  :class:`RemoteShardReplica` proxies speaking the shard read interface
  (the same methods a local ``ShardReplica`` serves) over the
  :mod:`repro.serving.rpc` length-prefixed framing and codec, so
  scatter-gather merges cross process boundaries unchanged;
* **rebalances flow through both**: :meth:`RemoteClusterService.
  rebalance` publishes the ring-epoch record to the log, then seeds each
  *new* worker over RPC with the parent's routing state plus the
  :class:`~repro.cluster.ring.TransferSlice` frames pulled from the
  current owners — streaming only the moved node records, their incident
  edges and ghost endpoints, not a full snapshot.  Surviving workers
  cross the flip as they consume the log record: a pure-growth flip only
  *demotes* locally; a flip that moves keys *into* a surviving shard
  (shrink) raises :class:`~repro.errors.RingEpochError` and the worker
  re-bootstraps from snapshot + tail — which is also the recovery path
  for a worker that crashed mid-rebalance;
* :class:`RemoteClusterService` assembles the pieces into a drop-in for
  ``ClusterService`` whose serving responses are **byte-identical**
  (``rpc.dumps``) to the in-process cluster and to a single store at the
  same stream version — the tests assert all three.

Workers never receive pushed deltas: ``sync(version)`` is a control
signal ("the log now holds version v; catch up from it"), keeping the
log the single source of truth.  The one exception is the seed of a
freshly added shard, which is pure *state transfer* at a pinned version,
not stream data.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import socket
import time
from typing import Any, Iterable, Sequence

from ..core.ontology import AttentionOntology
from ..core.serialize import store_to_delta
from ..core.store import (
    AttentionNode,
    Edge,
    EdgeType,
    NodeType,
    OntologyDelta,
    OntologyStore,
)
from ..errors import (
    DeltaGapError,
    OntologyError,
    ReproError,
    RingEpochError,
    ShardUnavailableError,
)
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.recorder import (
    RECORDER_DIR_ENV,
    configure_recorder,
    get_recorder,
)
from ..obs.tracing import (
    TRACE_DIR_ENV,
    TraceContext,
    configure_tracer,
    current_context,
    get_tracer,
)
from ..replication.follower import SyncLogClient
from ..serving.rpc import (
    BINARY_CODEC_VERSION,
    _canonical_bytes,
    decode,
    encode,
    encode_envelope,
    loads_envelope,
    negotiate_result,
    read_frame_sync,
    write_frame_sync,
)
from ..serving.service import OntologyService
from .ring import HashRing, TransferSlice, ring_delta, ring_op_of
from .router import ShardRouter
from .shards import ShardReplica, ShardedStoreView

#: Shard read-interface methods a worker dispatches by name.
SHARD_READ_METHODS = frozenset({
    "node", "find", "owns", "owned_ids", "owned_count", "alias_claim",
    "owned_token_ids", "owned_candidate_ids", "successor_ids",
    "predecessor_ids", "has_edge", "edges", "describe", "transfer_slice",
})

_SYNC_WAIT_SECONDS = 2.0  # one long-poll slice while catching up
_SYNC_MAX_SECONDS = 120.0  # give up if the log never reaches the target


def _advance(router: ShardRouter, deltas: "Iterable[OntologyDelta]",
             shard_id: "int | None" = None,
             replica: "ShardReplica | None" = None) -> int:
    """Route a contiguous delta batch sequence; apply this shard's subs.

    With ``replica=None`` (the parent's router) sub-deltas are split for
    ownership bookkeeping and discarded — the parent holds no store.

    A ring-epoch record flips the router in place.  A worker can absorb
    a flip locally only when it *loses* keys (demotion is bookkeeping);
    a flip that moves keys into its shard needs state it does not hold,
    so it raises :class:`RingEpochError` — the follower recovery path
    re-bootstraps from snapshot + tail, which crosses the flip with the
    full store in hand.
    """
    advanced = 0
    for delta in deltas:
        if not DeltaGapError.check("shard follower", router.version, delta):
            continue
        if ring_op_of(delta) is not None:
            plan = router.apply_ring(delta)
            get_recorder().record(
                "ring.epoch_flip",
                "cluster.parent" if replica is None else f"shard-{shard_id}",
                epoch=plan.ring.epoch, num_shards=plan.ring.num_shards)
            if replica is not None:
                if shard_id >= plan.ring.num_shards:
                    raise RingEpochError(
                        f"shard {shard_id} left the ring at epoch "
                        f"{plan.ring.epoch} ({plan.ring.num_shards} shards)")
                moved_in = plan.moved_into(shard_id)
                if moved_in:
                    raise RingEpochError(
                        f"ring epoch {plan.ring.epoch} moves "
                        f"{len(moved_in)} node records into shard "
                        f"{shard_id}; re-bootstrap from snapshot + tail")
                replica.demote(plan.moved_out_of(shard_id))
            advanced += 1
            continue
        subs = router.split(delta)
        if replica is not None:
            sub = subs[shard_id]
            if sub is not None:
                replica.apply(sub)
        advanced += 1
    return advanced


def _bootstrap_shard(client: SyncLogClient, num_shards: int,
                     shard_id: "int | None"
                     ) -> "tuple[ShardRouter, ShardReplica | None]":
    """Snapshot-plus-tail bootstrap of one shard (or, with
    ``shard_id=None``, of a routing-only parent).

    The catalog snapshot and the log tail are first materialised into a
    full store (:meth:`OntologyStore.bootstrap` — ring-epoch records in
    the tail apply as version-advancing metadata), whose recorded ring
    then determines the placement; the head state is folded through a
    fresh router on that ring and this shard's slice applied.  Every
    process folds the *same* head through the *same* deterministic
    router, so all of them agree on ownership and ghost placement — and
    because the fold happens at the head, a bootstrap crosses any number
    of ring-epoch flips in one step.  ``num_shards`` is the ring to
    assume for a log that never recorded one.
    """
    snapshot, version = client.latest_snapshot()
    tail = client.fetch(version if snapshot is not None else 0)
    full = OntologyStore.bootstrap(snapshot, tail)
    ring_meta = full.ring
    ring = HashRing.from_op(ring_meta) if ring_meta is not None \
        else HashRing(num_shards)
    if shard_id is not None and shard_id >= ring.num_shards:
        raise ReproError(
            f"shard {shard_id} is not in the ring (epoch {ring.epoch} "
            f"spans {ring.num_shards} shards)")
    router = ShardRouter.from_ring(ring)
    replica = ShardReplica(shard_id) if shard_id is not None else None
    if len(full):
        subs = router.split(store_to_delta(full))
        if replica is not None and subs[shard_id] is not None:
            replica.apply(subs[shard_id])
    router.fast_forward(full.version)
    return router, replica


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
def _catch_up(client: SyncLogClient, router: ShardRouter,
              replica: ShardReplica, shard_id: int, target: int
              ) -> "tuple[ShardRouter, ShardReplica, bool]":
    """Advance the worker to ``target``, re-bootstrapping through a
    :class:`DeltaGapError` (including :class:`RingEpochError` flips it
    cannot absorb locally); returns (router, replica, recovered)."""
    recovered = False
    deadline = time.monotonic() + _SYNC_MAX_SECONDS
    while router.version < target:
        if time.monotonic() > deadline:
            raise ReproError(
                f"shard {shard_id} could not catch up to version "
                f"{target} (log at {router.version})")
        try:
            deltas = client.wait(router.version, timeout=_SYNC_WAIT_SECONDS)
            _advance(router, deltas, shard_id, replica)
        except DeltaGapError as exc:
            get_recorder().record(
                "replication.gap_rebootstrap", f"shard-{shard_id}",
                version=router.version, target=target, error=str(exc))
            router, replica = _bootstrap_shard(client, router.num_shards,
                                               shard_id)
            recovered = True
    # A follower's pinned position is the `since` of its last fetch,
    # which trails the version it just applied by one batch; confirm
    # the applied position so the segment-GC floor reflects reality.
    if client.follower_id is not None:
        client.register(router.version)
    return router, replica, recovered


def _shard_worker_main(shard_id: int, num_shards: int,
                       publisher_host: str, publisher_port: int,
                       ready, accept_timeout: float,
                       seed: bool = False,
                       trace_dir: "str | None" = None,
                       recorder_dir: "str | None" = None) -> None:
    """One shard behind a socket: bootstrap from the log (or await a
    parent seed), serve reads."""
    # The worker's span log: explicit argument first, inherited
    # environment second (spawn passes the parent's env through), so
    # ``cli serve --trace-dir`` traces the whole process tree while an
    # untraced cluster pays nothing.  The flight recorder follows the
    # same rule, so a worker anomaly dumps next to the parent's dumps.
    configure_tracer(trace_dir or os.environ.get(TRACE_DIR_ENV) or None,
                     process=f"shard-{shard_id}")
    configure_recorder(
        recorder_dir or os.environ.get(RECORDER_DIR_ENV) or None,
        process=f"shard-{shard_id}")
    metrics = get_registry().scope("shard_worker")
    requests_served = metrics.counter("requests")
    try:
        client = SyncLogClient.connect(publisher_host, publisher_port,
                                       follower_id=f"shard-{shard_id}")
        if seed:
            # A rebalance-spawned worker: the parent streams it the
            # routing state and its TransferSlice frames instead of a
            # full snapshot fold.
            router: "ShardRouter | None" = None
            replica: "ShardReplica | None" = None
        else:
            router, replica = _bootstrap_shard(client, num_shards, shard_id)
            client.register(router.version)
        server = socket.create_server(("127.0.0.1", 0))
        server.settimeout(accept_timeout)
        ready.put(("ready", shard_id, server.getsockname()[1]))
    except Exception as exc:
        ready.put(("error", shard_id, f"bootstrap failed: {exc!r}"))
        return
    try:
        conn, _addr = server.accept()
    except (OSError, TimeoutError):
        return  # the parent never connected; nothing to serve
    # Per-connection response encoding: a ``negotiate`` request flips
    # responses to the packed binary codec (requests stay JSON — they
    # are small; the shard-read responses carry the bulk).
    wire_state = {"binary": False}
    with conn:
        while True:
            try:
                frame = read_frame_sync(conn)
            except (ConnectionError, OSError, ReproError):
                break  # parent vanished mid-frame
            if frame is None:
                break
            stop = False
            request_id = None
            error = None
            result: Any = None
            try:
                request = json.loads(frame.decode("utf-8"))
                request_id = request.get("id")
                method = request.get("method")
                args = decode(request.get("args", []))
                kwargs = decode(request.get("kwargs", {}))
                # The parent's trace context rides the request envelope
                # (same optional key as the RPC tier): the shard span
                # below becomes a child of the scatter span that
                # dispatched this read, across the process boundary.
                ctx = TraceContext.from_wire(request.get("trace"))
                requests_served.inc()
                with get_tracer().span(f"shard.{method}", parent=ctx,
                                       shard=shard_id):
                    with metrics.time("request_seconds"):
                        if method == "stop":
                            stop = True
                            result = True
                        elif method == "negotiate":
                            result = negotiate_result(wire_state,
                                                      kwargs.get("codec"))
                        elif method == "obs_status":
                            result = {
                                "metrics": get_registry().snapshot(),
                                "tracer": get_tracer().describe(),
                                "recorder": get_recorder().describe(),
                            }
                        elif method == "seed":
                            if router is not None:
                                raise ReproError(
                                    f"shard {shard_id} already holds state")
                            state, transfers = args
                            router = ShardRouter.from_state(state)
                            replica = ShardReplica(shard_id)
                            for transfer in transfers:
                                replica.adopt_slice(transfer)
                            router.sync_shard_version(shard_id,
                                                      replica.store.version)
                            client.register(router.version)
                            result = dict(replica.describe(),
                                          epoch=router.epoch,
                                          stream_version=router.version)
                        elif router is None or replica is None:
                            raise ReproError(
                                f"shard {shard_id} is awaiting its "
                                "rebalance seed")
                        elif method == "sync":
                            router, replica, recovered = _catch_up(
                                client, router, replica, shard_id,
                                *args, **kwargs)
                            result = dict(replica.describe(),
                                          recovered=recovered,
                                          epoch=router.epoch)
                        elif method == "ghost_count":
                            result = replica.ghost_count
                        elif method in SHARD_READ_METHODS:
                            result = getattr(replica, method)(*args,
                                                              **kwargs)
                        else:
                            raise ReproError(
                                f"unknown shard method {method!r}")
            except Exception as exc:
                error = {"type": type(exc).__name__, "message": str(exc)}
            try:
                write_frame_sync(conn, encode_envelope(
                    request_id, result, error, wire_state["binary"]))
            except (ConnectionError, OSError):
                break
            if stop:
                break
    client.close()
    server.close()
    get_tracer().close()


# ----------------------------------------------------------------------
# parent-side proxy
# ----------------------------------------------------------------------
class RemoteShardReplica:
    """Client proxy speaking the shard read interface over a socket.

    Implements exactly the methods
    :class:`~repro.cluster.shards.ShardedStoreView` consumes from a
    local :class:`ShardReplica`, so the view scatter-gathers across
    processes without knowing it.
    """

    def __init__(self, shard_id: int, host: str, port: int,
                 timeout: float = 120.0, wire: str = "json") -> None:
        if wire not in ("json", "binary"):
            raise ReproError(f"unknown wire encoding {wire!r}")
        self.shard_id = shard_id
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._next_id = 0
        # Replies already read while waiting for an earlier pipelined
        # request (the worker answers its one socket strictly in order,
        # but finish_call may be invoked out of dispatch order).
        self._responses: "dict[Any, dict]" = {}
        self.wire = "json"
        if wire == "binary":
            self._negotiate()

    def _negotiate(self) -> None:
        """Request packed-binary responses; an old worker answers with
        an unknown-method *error*, so the proxy silently degrades to
        JSON instead of hanging on version skew."""
        try:
            reply = self._call("negotiate", codec=BINARY_CODEC_VERSION)
        except (ReproError, OSError):
            self.wire = "json"
            return
        self.wire = "binary" if isinstance(reply, dict) \
            and reply.get("wire") == "binary" else "json"

    # ------------------------------------------------------------------
    # pipelined request/response plumbing
    # ------------------------------------------------------------------
    def begin_call(self, method: str, *args, **kwargs) -> int:
        """Dispatch one request without waiting for its reply; pair with
        :meth:`finish_call`.  The scatter paths in
        :class:`~repro.cluster.shards.ShardedStoreView` dispatch to every
        shard first and collect second, overlapping the per-shard work
        instead of serializing one blocking round trip per shard."""
        request_id = self._next_id
        self._next_id += 1
        envelope = {"id": request_id, "method": method,
                    "args": encode(list(args)), "kwargs": encode(kwargs)}
        ctx = current_context()
        if ctx is not None:
            # Carry the caller's trace (usually the scatter span) across
            # the process boundary; an untraced request omits the key
            # and a pre-trace worker ignores it.
            envelope["trace"] = ctx.to_wire()
        try:
            write_frame_sync(self._sock, _canonical_bytes(envelope))
        except (ConnectionError, OSError) as exc:
            raise self._unavailable(repr(exc)) from exc
        return request_id

    def _unavailable(self, detail: str) -> ShardUnavailableError:
        """A connection-level failure, typed: the worker process died or
        its socket broke.  Raw ``OSError``s must not escape to serving
        callers — the typed error names the shard so the cluster's
        recovery path can respawn it and retry."""
        return ShardUnavailableError(
            self.shard_id,
            f"shard {self.shard_id} worker unavailable: {detail}")

    def finish_call(self, request_id: int) -> Any:
        """Collect the reply of a :meth:`begin_call`; raises the typed
        error a blocking call would."""
        while request_id not in self._responses:
            try:
                frame = read_frame_sync(self._sock)
            except (ConnectionError, OSError) as exc:
                raise self._unavailable(repr(exc)) from exc
            if frame is None:
                raise self._unavailable("worker closed the connection")
            body = loads_envelope(frame)
            self._responses[body.get("id")] = body
        body = self._responses.pop(request_id)
        error = body.get("error")
        if error is not None:
            kind = error.get("type")
            message = f"shard {self.shard_id}: {error.get('message')}"
            if kind == "RingEpochError":
                raise RingEpochError(message)
            if kind == "DeltaGapError":
                raise DeltaGapError(message)
            if kind == "OntologyError":
                raise OntologyError(message)
            raise ReproError(f"{kind}: {message}")
        return body["result"]

    def _call(self, method: str, *args, **kwargs) -> Any:
        return self.finish_call(self.begin_call(method, *args, **kwargs))

    # ------------------------------------------------------------------
    # the shard read interface (see ShardReplica)
    # ------------------------------------------------------------------
    def node(self, node_id: str) -> AttentionNode:
        return self._call("node", node_id)

    def find(self, node_type: NodeType,
             phrase: str) -> "AttentionNode | None":
        return self._call("find", node_type, phrase)

    def owns(self, node_id: str) -> bool:
        return self._call("owns", node_id)

    def owned_ids(self, node_type: "NodeType | None" = None) -> set:
        return self._call("owned_ids", node_type)

    def owned_count(self, node_type: "NodeType | None" = None) -> int:
        return self._call("owned_count", node_type)

    def alias_claim(self, key: str,
                    node_id: "str | None" = None) -> "int | None":
        return self._call("alias_claim", key, node_id)

    def owned_token_ids(self, token: str, node_type: NodeType) -> list:
        return self._call("owned_token_ids", token, node_type)

    def owned_candidate_ids(self, tokens, node_type: NodeType) -> list:
        return self._call("owned_candidate_ids", list(tokens), node_type)

    def successor_ids(self, node_id: str,
                      edge_type: "EdgeType | None" = None) -> list:
        return self._call("successor_ids", node_id, edge_type)

    def predecessor_ids(self, node_id: str,
                        edge_type: "EdgeType | None" = None) -> list:
        return self._call("predecessor_ids", node_id, edge_type)

    def has_edge(self, source_id: str, target_id: str,
                 edge_type: EdgeType) -> bool:
        return self._call("has_edge", source_id, target_id, edge_type)

    def edges(self, edge_type: "EdgeType | None" = None) -> "list[Edge]":
        return self._call("edges", edge_type)

    def obs_status(self) -> dict:
        """The worker process's registry snapshot + tracer state."""
        return self._call("obs_status")

    def describe(self) -> dict:
        return self._call("describe")

    @property
    def ghost_count(self) -> int:
        return self._call("ghost_count")

    # ------------------------------------------------------------------
    # rebalance transfer frames
    # ------------------------------------------------------------------
    def transfer_slice(self, node_ids, epoch: int,
                       shard: int) -> TransferSlice:
        """Pull the slice a rebalance moves from this worker to
        ``shard`` (read-only on the worker)."""
        return self._call("transfer_slice", list(node_ids), epoch, shard)

    def seed(self, state: dict, transfers: "list[TransferSlice]") -> dict:
        """Hand a freshly spawned worker its routing state and slices
        (only valid once, before the worker holds any state)."""
        return self._call("seed", state, transfers)

    # ------------------------------------------------------------------
    def sync(self, version: int) -> dict:
        """Tell the worker the log holds ``version``; it catches up from
        the shared log (re-bootstrapping through a GC gap or a ring flip
        it cannot absorb) and returns its ``describe()`` line plus
        ``recovered`` and ``epoch``."""
        return self._call("sync", version)

    def stop(self) -> None:
        try:
            self._call("stop")
        except (ReproError, OSError):
            pass

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# the remote cluster
# ----------------------------------------------------------------------
class RemoteClusterService:
    """A :class:`ClusterService` whose shards run in worker processes.

    Args:
        publisher_address: ``(host, port)`` of the
            :class:`~repro.replication.publisher.LogPublisher` feeding
            the fleet.
        num_shards: worker process count (= ring shards) for a log that
            has no recorded ring epoch; when the log *does* record one
            (it has been rebalanced), the ring is authoritative and the
            fleet comes up at its shard count.
        ner / duet / tagger_options / max_rewrites /
            max_recommendations / cache_size: forwarded to the inner
            :class:`OntologyService` running over the remote view.
        start_timeout: seconds to wait for every worker to bootstrap.
        wire: ``"json"`` (default) or ``"binary"`` — the shard-read
            response encoding each proxy negotiates with its worker
            (:mod:`repro.serving.rpc` packed binary frames).  Results
            are byte-identical either way; binary cuts the scatter
            paths' encode/decode cost.
        trace_dir: span-log directory handed to every spawned worker
            (workers also inherit ``REPRO_TRACE_DIR`` from the
            environment; the explicit argument wins).
        registry: metrics registry shared by the inner service, the
            scatter view and the cluster's ``cluster`` scope; defaults
            to the process registry.

    The parent holds no shard store: it keeps a routing-only
    :class:`ShardRouter` (fed from the same log) for owner lookups and
    runs the ordinary serving stack over a
    :class:`~repro.cluster.shards.ShardedStoreView` of
    :class:`RemoteShardReplica` proxies.
    """

    def __init__(self, publisher_address: "tuple[str, int]",
                 num_shards: int = 4, ner=None, duet=None,
                 tagger_options: "dict[str, Any] | None" = None,
                 max_rewrites: int = 5, max_recommendations: int = 5,
                 cache_size: int = 4096,
                 start_timeout: float = 180.0,
                 wire: str = "json",
                 trace_dir: "str | None" = None,
                 recorder_dir: "str | None" = None,
                 registry: "MetricsRegistry | None" = None) -> None:
        if num_shards <= 0:
            raise OntologyError("a cluster needs at least one shard")
        if wire not in ("json", "binary"):
            raise OntologyError(f"unknown wire encoding {wire!r}")
        self._wire = wire
        self._trace_dir = trace_dir
        self._recorder_dir = recorder_dir
        registry = registry if registry is not None else get_registry()
        self._registry = registry
        self._metrics = registry.scope("cluster")
        self._rebalances = self._metrics.counter("rebalances")
        self._moved_nodes = self._metrics.counter("rebalance_moved_nodes")
        self._seeded_records = \
            self._metrics.counter("rebalance_seeded_records")
        self._recovered_shards = self._metrics.counter("recovered_shards")
        self._worker_restarts = self._metrics.counter("worker_restarts")
        self._shard_unavailable = self._metrics.counter("shard_unavailable")
        self._transfer_chunks = self._metrics.counter("transfer_chunks")
        self._host, self._port = publisher_address
        # Spawn (not fork): the parent may run a publisher event loop in
        # a thread, and forked children could inherit its lock state.
        self._context = multiprocessing.get_context("spawn")
        self._start_timeout = start_timeout
        self._processes: "dict[int, multiprocessing.Process]" = {}
        # One ready-queue per worker: a shared queue is unreliable once
        # any consumer process has been terminated (puts from later
        # children can vanish), and rebalance/restart terminate workers.
        self._ready_queues: "dict[int, Any]" = {}
        self._replicas: "list[RemoteShardReplica]" = []
        self._client: "SyncLogClient | None" = None
        self._closed = False
        self.last_rebalance: "dict | None" = None
        # In-progress chunked resize (begin_rebalance .. finish_rebalance):
        # the staged router/plan/chunk queue; None outside a resize.
        self._staged: "dict | None" = None
        try:
            self._client = SyncLogClient.connect(self._host, self._port)
            self._router, _ = _bootstrap_shard(self._client, num_shards,
                                               None)
            for shard_id in range(self._router.num_shards):
                self._spawn(shard_id)
            ports = self._await_ready(set(range(self._router.num_shards)))
            self._replicas = [
                RemoteShardReplica(shard_id, "127.0.0.1", ports[shard_id],
                                   wire=self._wire)
                for shard_id in range(self._router.num_shards)
            ]
            # Workers bootstrapped independently; align them with the
            # parent's log position before the first read.
            for replica in self._replicas:
                replica.sync(self._router.version)
        except Exception:
            self.close()
            raise
        self._view = ShardedStoreView(self._router, self._replicas,
                                      registry=registry)
        # Reads that hit a dead worker's proxy raise a typed
        # ShardUnavailableError; the view calls back here to respawn the
        # worker, then retries the read (see _recover_shard).
        self._view.bind_recovery(self._recover_shard)
        self._service = OntologyService(
            AttentionOntology(store=self._view), ner=ner, duet=duet,
            tagger_options=tagger_options, max_rewrites=max_rewrites,
            max_recommendations=max_recommendations, cache_size=cache_size,
            registry=registry,
        )
        self._deltas_applied = 0

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, shard_id: int, seed: bool = False) -> None:
        queue = self._context.Queue()
        process = self._context.Process(
            target=_shard_worker_main,
            args=(shard_id, self._router.num_shards, self._host, self._port,
                  queue, self._start_timeout, seed, self._trace_dir,
                  self._recorder_dir),
            daemon=True,
        )
        process.start()
        self._processes[shard_id] = process
        self._ready_queues[shard_id] = queue

    def _await_ready(self, expected: "set[int]") -> "dict[int, int]":
        """Collect (shard_id -> port) ready messages for ``expected``."""
        ports: dict[int, int] = {}
        deadline = time.monotonic() + self._start_timeout
        while set(ports) != expected:
            for shard_id in sorted(expected - set(ports)):
                try:
                    message = self._ready_queues[shard_id].get(timeout=0.5)
                except Exception:
                    process = self._processes.get(shard_id)
                    if process is not None and not process.is_alive():
                        try:  # drain an error posted just before death
                            message = self._ready_queues[shard_id].get(
                                timeout=0.5)
                        except Exception:
                            raise ReproError(
                                f"shard worker process {shard_id} died "
                                "before reporting ready") from None
                    else:
                        continue
                if message[0] != "ready":
                    raise ReproError(
                        f"shard worker {message[1]} failed: {message[2]}")
                ports[shard_id] = message[2]
            if set(ports) != expected and time.monotonic() > deadline:
                raise ReproError(
                    "timed out waiting for shard workers to "
                    "bootstrap from the log")
        return ports

    def _stop_worker(self, shard_id: int,
                     proxy: "RemoteShardReplica | None") -> None:
        if proxy is not None:
            proxy.stop()
            proxy.close()
        process = self._processes.pop(shard_id, None)
        if process is not None:
            process.join(timeout=10.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        # A gracefully stopped worker deregisters itself; a crashed one
        # cannot, and a retired shard is never respawned to overwrite
        # its registration — so its stale position would pin the log's
        # segment-GC floor forever.  Clear it from here (idempotent).
        if self._client is not None:
            try:
                self._client.forget(f"shard-{shard_id}")
            except (ReproError, OSError):
                pass

    def _reap(self, shard_id: int) -> None:
        """Make sure the outgoing worker process is actually dead before
        a replacement is spawned: ``terminate`` escalates to ``kill``,
        and a corpse that survives both is a hard error — respawning
        over a wedged process would leak it (and whatever it still has
        bound) for the rest of the run."""
        process = self._processes.pop(shard_id, None)
        if process is None:
            return
        process.terminate()
        process.join(timeout=10.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=10.0)
        if process.is_alive() or process.exitcode is None:
            self._processes[shard_id] = process  # keep it visible
            raise ReproError(
                f"shard {shard_id} worker (pid {process.pid}) survived "
                "terminate and kill; refusing to respawn over a wedged "
                "process")

    def _restart(self, shard_id: int) -> RemoteShardReplica:
        """Respawn one worker via the standard snapshot-plus-tail
        bootstrap (crossing any ring flips) and reconnect its proxy.

        The corpse is reaped (kill-escalated) *before* the respawn; a
        respawn that fails to come up raises without having touched the
        caller's proxy table, so the old proxy keeps its retry path."""
        self._reap(shard_id)
        self._spawn(shard_id)
        try:
            ports = self._await_ready({shard_id})
            proxy = RemoteShardReplica(shard_id, "127.0.0.1",
                                       ports[shard_id], wire=self._wire)
            proxy.sync(self._router.version)
        except Exception:
            # The failed respawn's process must not linger either.
            failed = self._processes.pop(shard_id, None)
            if failed is not None:
                failed.kill()
                failed.join(timeout=10.0)
            raise
        self._worker_restarts.inc()
        get_recorder().record("worker.restart", f"shard-{shard_id}",
                              version=self._router.version)
        return proxy

    def restart_shard(self, shard_id: int) -> dict:
        """Replace a crashed worker: the respawn re-bootstraps from the
        newest catalog snapshot plus the log tail — landing in the
        current ring epoch with no gap — and rejoins the view.  Returns
        the revived worker's ``describe()`` line.

        The swap is all-or-nothing: the replacement worker is spawned,
        readied and synced *before* the old proxy is replaced and
        closed.  A failed respawn raises with the old proxy still seated
        (and still open), so the caller can retry — the old code closed
        first and left ``_replicas[shard_id]`` holding a dead socket
        with no recovery path."""
        if not 0 <= shard_id < len(self._replicas):
            raise OntologyError(f"no shard {shard_id} in this cluster")
        proxy = self._restart(shard_id)
        old = self._replicas[shard_id]
        self._replicas[shard_id] = proxy
        self._view.reseat(self._router, self._replicas)
        old.close()
        return proxy.describe()

    def terminate_worker(self, shard_id: int) -> None:
        """Failure injection (tests/ops): kill a worker process outright,
        leaving its stale proxy in place — the next read through the
        proxy raises :class:`~repro.errors.ShardUnavailableError` and
        triggers :meth:`restart_shard` recovery (as does the next sync
        or rebalance finding the corpse)."""
        process = self._processes.get(shard_id)
        if process is not None:
            process.terminate()
            process.join(timeout=10.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=10.0)

    # ------------------------------------------------------------------
    # cluster state
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self._router.num_shards

    @property
    def version(self) -> int:
        """Global delta-stream version the cluster serves."""
        return self._router.version

    @property
    def ontology(self) -> AttentionOntology:
        return self._service.ontology

    @property
    def views(self):
        """The parent serving facade's maintained-view catalog."""
        return self._service.views

    @property
    def replicas(self) -> "list[RemoteShardReplica]":
        return list(self._replicas)

    @property
    def router(self) -> ShardRouter:
        return self._router

    @property
    def rebalance_staged(self) -> bool:
        """True while a chunked rebalance is staged but not flipped."""
        return self._staged is not None

    def _advance_parent(self) -> int:
        """Pull new batches from the shared log into the parent's
        routing-only router (ring flips apply in place), and fold them
        into the front service's maintained views — the parent is the
        only process that sees the actual delta objects."""
        try:
            deltas = list(self._client.fetch(self._router.version))
            advanced = _advance(self._router, deltas)
        except DeltaGapError as exc:
            # The log GC'd past the parent's routing state: rebuild it
            # (workers re-bootstrap themselves on their own gap).  The
            # view catalog's version now trails the router's; the next
            # view-backed read rehydrates it from the scatter view.
            get_recorder().record(
                "replication.gap_rebootstrap", "cluster.parent",
                version=self._router.version, error=str(exc))
            self._router, _ = _bootstrap_shard(
                self._client, self._router.num_shards, None)
            # The serving view still routes on the old router object —
            # without a reseat every node past the gap stays "unrouted"
            # for point reads even though the workers hold it.
            self._view.reseat(self._router, self._replicas)
            return 0
        for delta in deltas:
            self._service.fold_views(delta)
        return advanced

    def _recover_shard(self, shard_id: int) -> None:
        """Serving-read recovery (the :class:`ShardedStoreView` calls
        back here when a scatter/point read raises
        :class:`~repro.errors.ShardUnavailableError`): respawn the dead
        worker and reseat the view, after which the view retries the
        read.  During a staged chunked rebalance the respawn would
        bootstrap across the pending ring record and land in the new
        epoch while the live view still routes on the old one — so the
        staged resize is driven to completion first (its reconciliation
        revives corpses on the way)."""
        self._shard_unavailable.inc()
        get_recorder().record("shard.unavailable", f"shard-{shard_id}",
                              version=self._router.version,
                              staged=self._staged is not None)
        if self._staged is not None:
            self.finish_rebalance()
        else:
            self.restart_shard(shard_id)

    def sync(self) -> int:
        """Pull new batches from the shared log and fan the catch-up
        signal to every worker; returns batches newly routed."""
        if self._staged is not None:
            raise OntologyError(
                "a staged rebalance is in progress (its ring record is "
                "already in the log); drive it through rebalance_step() "
                "to finish_rebalance() before syncing")
        advanced = self._advance_parent()
        if self._router.num_shards != len(self._replicas):
            raise OntologyError(
                f"the log's ring epoch spans {self._router.num_shards} "
                f"shards but this cluster runs {len(self._replicas)} "
                f"workers — complete the resize with "
                f"rebalance({self._router.num_shards}, ...)")
        for replica in self._replicas:
            replica.sync(self._router.version)
        self._deltas_applied += advanced
        return advanced

    def refresh(self, deltas: "Iterable[OntologyDelta]") -> int:
        """API parity with :meth:`ClusterService.refresh` for follower-
        fed clusters: the batches must already be *published to the
        shared log* (the log is the only data path to the workers);
        refresh then syncs the fleet and verifies it caught up."""
        target = max((delta.version for delta in deltas), default=0)
        applied = self.sync()
        if self._router.version < target:
            raise OntologyError(
                f"remote shards are fed from the shared log, which is at "
                f"version {self._router.version} < {target}; publish the "
                f"deltas to the log before refreshing"
            )
        return applied

    # ------------------------------------------------------------------
    # rebalancing (ring epochs)
    # ------------------------------------------------------------------
    def rebalance(self, num_shards: int, publish=None,
                  vnodes: "int | None" = None,
                  chunk_nodes: "int | None" = None,
                  between_chunks=None) -> "OntologyDelta | None":
        """Resize the worker fleet to ``num_shards`` via a ring-epoch
        flip recorded in the shared log.

        ``publish`` bridges the record to the log's writer (e.g.
        :meth:`~repro.replication.publisher.PublisherThread.publish`) —
        data still flows to workers only through the log.  Growth spawns
        the new shards' workers and *seeds* them over RPC with the
        parent's routing state plus the
        :class:`~repro.cluster.ring.TransferSlice` frames pulled from
        the current owners, streaming only the moved node records;
        surviving workers cross the flip as they consume the log record
        (pure-growth flips demote locally; shrink survivors that gain
        keys re-bootstrap from snapshot + tail).  A worker that died
        mid-rebalance is respawned through the same snapshot-plus-tail
        path, so re-invoking ``rebalance`` after a partial failure
        completes the outstanding reconciliation.  Returns the ring
        record (``None`` when the fleet was already at ``num_shards``
        and only reconciliation ran).

        With ``chunk_nodes`` set the resize runs *chunked* — the
        :meth:`begin_rebalance` / :meth:`rebalance_step` /
        :meth:`finish_rebalance` protocol with at most ``chunk_nodes``
        node records per :class:`~repro.cluster.ring.TransferSlice`,
        calling ``between_chunks()`` (when given) between steps; reads
        keep serving the old placement the whole time.
        """
        if chunk_nodes is not None:
            pending = self.begin_rebalance(num_shards, publish=publish,
                                           vnodes=vnodes,
                                           chunk_nodes=chunk_nodes)
            if self._staged is None:
                return None  # already at size; reconciliation ran
            while pending:
                pending = self.rebalance_step()
                if pending and between_chunks is not None:
                    between_chunks()
            return self.finish_rebalance()
        if num_shards <= 0:
            raise OntologyError("a cluster needs at least one shard")
        if self._staged is not None:
            raise OntologyError(
                "a staged rebalance is already in progress; drive it to "
                "finish_rebalance() first")
        # The whole fleet must be at the pre-flip head before slices are
        # extracted: a lagging source would seed a new shard with stale
        # node state that nothing ever repairs.  A dead worker found
        # here is revived through snapshot + tail first.
        recovered = self._sync_fleet()
        delta = None
        plan = None
        if self._router.num_shards != num_shards or \
                (vnodes is not None and vnodes != self._router.vnodes):
            ring = HashRing(
                num_shards,
                self._router.vnodes if vnodes is None else vnodes,
                self._router.epoch + 1)
            delta = ring_delta(self._router.version, ring)
            if publish is None:
                raise OntologyError(
                    "remote shards are fed from the shared log; pass "
                    "publish= (e.g. PublisherThread.publish) so the "
                    "ring-epoch record reaches it")
            publish([delta])
            plan = self._router.apply_ring(delta)
            self._service.fold_views(delta)
        self._reconcile(plan, recovered)
        if delta is not None:
            self._deltas_applied += 1
        return delta

    # ------------------------------------------------------------------
    # chunked (staged) rebalancing: serving interleaves between chunks
    # ------------------------------------------------------------------
    def begin_rebalance(self, num_shards: int, publish=None,
                        vnodes: "int | None" = None,
                        chunk_nodes: int = 256) -> int:
        """Stage a chunked resize: publish the ring record, compute the
        move plan on a *staged copy* of the router, and queue the
        transfer work as bounded chunks of at most ``chunk_nodes`` node
        records each.  Returns the number of chunks queued.

        The live router and read view are **not** flipped — reads keep
        serving the old placement (stale relative to the pending ring
        record but internally consistent, which is exactly what the
        stamped-read auditor checks) while :meth:`rebalance_step` calls
        interleave with them on the serialized serving queue.  The old
        monolithic path extracted every shard's entire slice in one call
        between two reads; a big resize stalled serving for the whole
        transfer.  ``sync``/``refresh`` are refused while staged: the
        ring record already sits in the log, and consuming it mid-stage
        would flip survivors under the old view.
        """
        if num_shards <= 0:
            raise OntologyError("a cluster needs at least one shard")
        if chunk_nodes <= 0:
            raise OntologyError("chunk_nodes must be positive")
        if self._staged is not None:
            raise OntologyError(
                "a staged rebalance is already in progress; drive it to "
                "finish_rebalance() first")
        recovered = self._sync_fleet()
        if self._router.num_shards == num_shards and \
                (vnodes is None or vnodes == self._router.vnodes):
            self._reconcile(None, recovered)
            return 0
        if publish is None:
            raise OntologyError(
                "remote shards are fed from the shared log; pass "
                "publish= (e.g. PublisherThread.publish) so the "
                "ring-epoch record reaches it")
        ring = HashRing(
            num_shards,
            self._router.vnodes if vnodes is None else vnodes,
            self._router.epoch + 1)
        delta = ring_delta(self._router.version, ring)
        publish([delta])
        # Plan on a staged router copy: apply_ring mutates in place, and
        # the live router must keep routing reads on the old placement
        # until every chunk has been pulled.
        staged_router = ShardRouter.from_state(self._router.export_state())
        plan = staged_router.apply_ring(delta)
        chunks: "list[tuple[int, int, list[str]]]" = []
        for (src, dst), node_ids in plan.by_pair():
            if dst < len(self._replicas):
                # Moves into survivors (shrink) are not sliced — those
                # workers re-bootstrap from snapshot + tail at the flip,
                # same as the monolithic path.
                continue
            for start in range(0, len(node_ids), chunk_nodes):
                chunks.append((src, dst,
                               list(node_ids[start:start + chunk_nodes])))
        self._staged = {
            "delta": delta,
            "plan": plan,
            "recovered": recovered,
            "chunks": chunks,
            "chunk_count": len(chunks),
            "transfers": {dst: []
                          for dst in range(len(self._replicas), num_shards)},
        }
        return len(chunks)

    def rebalance_step(self) -> int:
        """Pull one bounded :class:`TransferSlice` chunk from its source
        worker into the staged transfer set; returns the number of
        chunks still pending.  Serving reads interleave between steps —
        each step holds the serialized queue only for its own chunk.  A
        source that fails mid-stream drops its destination to the
        snapshot-plus-tail bootstrap path (remaining chunks for that
        destination are discarded), exactly like the monolithic
        collector."""
        staged = self._staged
        if staged is None:
            raise OntologyError(
                "no staged rebalance; call begin_rebalance first")
        if staged["chunks"]:
            src, dst, node_ids = staged["chunks"].pop(0)
            transfers = staged["transfers"]
            if transfers.get(dst) is not None:
                try:
                    if src >= len(self._replicas):
                        raise OntologyError(
                            f"transfer source shard {src} is not running")
                    transfers[dst].append(self._replicas[src].transfer_slice(
                        node_ids, staged["plan"].ring.epoch, dst))
                    self._transfer_chunks.inc()
                except (ReproError, OSError):
                    transfers[dst] = None
                    staged["chunks"] = [chunk for chunk in staged["chunks"]
                                        if chunk[1] != dst]
        return len(staged["chunks"])

    def finish_rebalance(self) -> OntologyDelta:
        """Flip the live router and read view to the staged ring epoch
        and reconcile the fleet with the chunk-collected transfers
        (draining any chunks still pending first).  Returns the ring
        record."""
        staged = self._staged
        if staged is None:
            raise OntologyError("no staged rebalance to finish")
        while staged["chunks"]:
            self.rebalance_step()
        self._staged = None
        delta = staged["delta"]
        plan = self._router.apply_ring(delta)
        self._service.fold_views(delta)
        self._reconcile(plan, staged["recovered"],
                        transfers=staged["transfers"])
        self.last_rebalance["transfer_chunks"] = staged["chunk_count"]
        self._deltas_applied += 1
        return delta

    def _sync_fleet(self) -> "list[int]":
        """Bring the parent and every worker to the current log head,
        respawning dead workers (snapshot-plus-tail); returns the shard
        ids that had to be revived."""
        self._advance_parent()
        recovered = []
        for index, replica in enumerate(self._replicas):
            try:
                replica.sync(self._router.version)
            except (ReproError, OSError):
                # Respawn first, swap second, close last (all-or-nothing
                # like restart_shard): a failed respawn leaves the old
                # proxy seated for the next attempt.
                self._replicas[index] = self._restart(replica.shard_id)
                replica.close()
                recovered.append(replica.shard_id)
        return recovered

    def _reconcile(self, plan, recovered: "list[int] | None" = None,
                   transfers: "dict | None" = None) -> None:
        """Drive the fleet to the parent router's ring: collect transfer
        slices, retire shards that left the ring, cross survivors over
        the flip (restarting corpses), seed or bootstrap new shards, and
        flip the read view.  A staged rebalance passes its
        chunk-collected ``transfers`` in; the monolithic path collects
        them here in one sweep."""
        target = self._router.num_shards
        new_ids = list(range(len(self._replicas), target))
        if transfers is None:
            transfers = self._collect_transfers(plan, new_ids)
        # Shards beyond the ring retire (their keys were sliced away or,
        # if the slices failed, will come from re-bootstrap folds).
        for proxy in self._replicas[target:]:
            self._stop_worker(proxy.shard_id, proxy)
        del self._replicas[target:]
        moved_records = sum(
            transfer.moved_nodes
            for slices in transfers.values() if slices is not None
            for transfer in slices)
        # Survivors cross the flip from the log; a dead worker is
        # respawned through snapshot + tail, landing in the new epoch.
        recovered = list(recovered or [])
        for index, replica in enumerate(self._replicas):
            try:
                replica.sync(self._router.version)
            except (ReproError, OSError):
                self._replicas[index] = self._restart(replica.shard_id)
                replica.close()
                if replica.shard_id not in recovered:
                    recovered.append(replica.shard_id)
        for shard_id in new_ids:
            self._replicas.append(
                self._seed_or_bootstrap(shard_id, transfers.get(shard_id)))
        self._view.reseat(self._router, self._replicas)
        self._rebalances.inc()
        self._moved_nodes.inc(plan.moved_nodes if plan is not None else 0)
        self._seeded_records.inc(moved_records)
        self._recovered_shards.inc(len(recovered))
        self.last_rebalance = {
            "epoch": self._router.epoch,
            "num_shards": target,
            "moved_nodes": plan.moved_nodes if plan is not None else 0,
            "seeded_records": moved_records,
            "recovered_shards": recovered,
        }

    def _collect_transfers(self, plan, new_ids
                           ) -> "dict[int, list[TransferSlice] | None]":
        """Pull each new shard's slices from the current owners; a dest
        whose source is unreachable maps to ``None`` (it bootstraps from
        snapshot + tail instead)."""
        transfers: "dict[int, list[TransferSlice] | None]" = {}
        if plan is None:
            return {shard_id: None for shard_id in new_ids}
        pairs = plan.by_pair()
        for dest in new_ids:
            slices: "list[TransferSlice] | None" = []
            for (src, dst), node_ids in pairs:
                if dst != dest:
                    continue
                if src >= len(self._replicas):
                    slices = None  # source shard is itself new/gone
                    break
                try:
                    slices.append(self._replicas[src].transfer_slice(
                        node_ids, plan.ring.epoch, dst))
                except (ReproError, OSError):
                    slices = None  # source crashed mid-rebalance
                    break
            transfers[dest] = slices
        return transfers

    def _seed_or_bootstrap(self, shard_id: int,
                           slices: "list[TransferSlice] | None"
                           ) -> RemoteShardReplica:
        """Bring one new shard's worker up — seeded with its slices when
        they were all collected, via full snapshot-plus-tail otherwise."""
        if slices is not None:
            for transfer in slices:
                self._router.note_materialized(
                    shard_id,
                    [node.node_id for node in transfer.nodes] +
                    [ghost.node_id for ghost in transfer.ghosts])
            proxy = None
            try:
                self._spawn(shard_id, seed=True)
                ports = self._await_ready({shard_id})
                proxy = RemoteShardReplica(shard_id, "127.0.0.1",
                                           ports[shard_id],
                                           wire=self._wire)
                seeded = proxy.seed(self._router.export_state(), slices)
                self._router.sync_shard_version(shard_id,
                                                seeded["version"])
                return proxy
            except (ReproError, OSError):
                self._stop_worker(shard_id, proxy)
        self._spawn(shard_id)
        ports = self._await_ready({shard_id})
        proxy = RemoteShardReplica(shard_id, "127.0.0.1", ports[shard_id],
                                   wire=self._wire)
        proxy.sync(self._router.version)
        return proxy

    # ------------------------------------------------------------------
    # serving APIs (delegated to the inner service over the remote view)
    # ------------------------------------------------------------------
    def tag_documents(self, documents: Sequence):
        """Tag a batch via cross-process scatter-gather candidate reads."""
        return self._service.tag_documents(documents)

    def interpret_queries(self, queries: "Sequence[str]"):
        return self._service.interpret_queries(queries)

    def neighborhood(self, node_id: str, depth: int = 1,
                     edge_type: "EdgeType | None" = None) -> tuple:
        return self._service.neighborhood(node_id, depth=depth,
                                          edge_type=edge_type)

    def concepts_of_entity(self, entity_phrase: str) -> tuple:
        return self._service.concepts_of_entity(entity_phrase)

    def record_read(self, user_id: str, tags: "list[str]",
                    weight: float = 1.0):
        return self._service.record_read(user_id, tags, weight=weight)

    def user_interests(self, user_id: str, k: int = 10, node_type=None):
        return self._service.user_interests(user_id, k=k,
                                            node_type=node_type)

    def recommend_for_user(self, user_id: str, k: int = 5):
        return self._service.recommend_for_user(user_id, k=k)

    def track_events(self, events) -> int:
        return self._service.track_events(events)

    def follow_ups(self, read_phrase: str, limit: int = 3):
        return self._service.follow_ups(read_phrase, limit=limit)

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Inner serving stats plus per-worker shard lines."""
        stats = self._service.stats()
        stats["num_shards"] = self.num_shards
        stats["wire"] = self._wire
        stats["cluster_deltas_applied"] = self._deltas_applied
        stats["ring"] = {"epoch": self._router.epoch,
                         "num_shards": self._router.num_shards,
                         "vnodes": self._router.vnodes}
        if self.last_rebalance is not None:
            stats["last_rebalance"] = dict(self.last_rebalance)
        stats["shards"] = [replica.describe() for replica in self._replicas]
        return stats

    def obs_status(self) -> dict:
        """Per-worker observability: each shard worker's own registry
        snapshot and tracer state (the parent's registry is reported by
        the serving tier's ``obs_status``, which nests this dict)."""
        return {"shards": [replica.obs_status()
                           for replica in self._replicas]}

    def close(self) -> None:
        """Stop workers and close sockets (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for replica in self._replicas:
            replica.stop()
            replica.close()
        if self._client is not None:
            self._client.close()
        for process in self._processes.values():
            process.join(timeout=10.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)

    def __enter__(self) -> "RemoteClusterService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
