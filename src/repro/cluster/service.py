"""ClusterService: scatter-gather serving over hash-partitioned shards.

The production GIANT deployment fronts a *fleet* of ontology stores with
RPC services; this is the reproduction's cluster tier (DESIGN.md §6).  A
:class:`ClusterService` owns

* a :class:`~repro.cluster.router.ShardRouter` that hash-partitions node
  ids and splits every incoming :class:`~repro.core.store.OntologyDelta`
  batch into per-shard sub-deltas,
* N :class:`~repro.cluster.shards.ShardReplica` stores, and
* a :class:`~repro.cluster.shards.ShardedStoreView` that reconstructs
  exact single-store read semantics by deterministic scatter-gather
  merges,

and exposes the *same* serving API as
:class:`~repro.serving.service.OntologyService` — ``tag_documents``,
``interpret_queries``, ``neighborhood``, ``concepts_of_entity``, user
profiles and story follow-ups — by running an ordinary
``OntologyService`` over the view.  Results are therefore byte-identical
to a single-store service at the same stream version (the cluster tests
assert this), while storage, inverted indexes and candidate generation
are partitioned N ways.

Since the consistent-hash ring (DESIGN.md §9) the partition is no longer
frozen: :meth:`ClusterService.rebalance` grows or shrinks the shard set
live by flipping a ring epoch, streaming only the moved node records
between shards as :class:`~repro.cluster.ring.TransferSlice` transfers,
and the same flip replays deterministically from the recorded ring-epoch
delta on any other consumer of the stream.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..core.ontology import AttentionOntology
from ..core.serialize import store_to_delta
from ..core.store import EdgeType, OntologyDelta, OntologyStore
from ..errors import DeltaGapError, OntologyError
from ..obs.metrics import MetricsRegistry, get_registry
from ..serving.service import OntologyService
from .ring import HashRing, ring_delta, ring_op_of
from .router import RebalancePlan, ShardRouter
from .shards import ShardReplica, ShardedStoreView


class ClusterService:
    """Sharded drop-in for :class:`OntologyService`.

    Args:
        num_shards: number of hash partitions.
        ner / duet / tagger_options / max_rewrites / max_recommendations /
            cache_size: forwarded to the inner :class:`OntologyService`.
        deltas: optional delta stream to apply at construction.
        ontology: optional existing :class:`AttentionOntology` (or bare
            store) to shard — folded into one synthetic bootstrap delta
            via :func:`~repro.core.serialize.store_to_delta`.  Mutually
            exclusive with ``deltas``: a folded dump starts a *new*
            stream whose versions do not align with previously recorded
            batches.
        snapshot: optional :meth:`OntologyStore.compact` dump to cold-
            start the shards from.  The snapshot is folded through the
            router (ghost replicas included) and the router is fast-
            forwarded to the snapshot's stream version, so ``deltas``
            may then be the *tail* recorded after the snapshot — the
            cluster-side bootstrap protocol, mirroring
            :meth:`OntologyStore.bootstrap`.  Mutually exclusive with
            ``ontology``.  A snapshot recording a ring epoch is
            authoritative: the cluster comes up on that ring, whatever
            ``num_shards`` says.
        registry: metrics registry shared by the inner service, the
            scatter view and the cluster's own ``cluster`` scope;
            defaults to the process registry.
    """

    def __init__(self, num_shards: int = 4, ner=None, duet=None,
                 tagger_options: "dict[str, Any] | None" = None,
                 max_rewrites: int = 5, max_recommendations: int = 5,
                 cache_size: int = 4096,
                 deltas: "Iterable[OntologyDelta] | None" = None,
                 ontology: "AttentionOntology | OntologyStore | None" = None,
                 snapshot: "dict | None" = None,
                 registry: "MetricsRegistry | None" = None) -> None:
        registry = registry if registry is not None else get_registry()
        self._metrics = registry.scope("cluster")
        self._router = ShardRouter(num_shards)
        self._replicas = [ShardReplica(i) for i in range(num_shards)]
        self._view = ShardedStoreView(self._router, self._replicas,
                                      registry=registry)
        self._service = OntologyService(
            AttentionOntology(store=self._view), ner=ner, duet=duet,
            tagger_options=tagger_options, max_rewrites=max_rewrites,
            max_recommendations=max_recommendations, cache_size=cache_size,
            registry=registry,
        )
        self._deltas_applied = 0
        self._rebalances = self._metrics.counter("rebalances")
        self._moved_nodes = self._metrics.counter("rebalance_moved_nodes")
        self._transfer_ops = self._metrics.counter("rebalance_transfer_ops")
        self.last_rebalance: "dict | None" = None
        if ontology is not None and deltas is not None:
            raise OntologyError(
                "pass either a delta stream or an ontology to fold, not "
                "both — store_to_delta starts a new stream whose versions "
                "do not align with previously recorded deltas"
            )
        if ontology is not None and snapshot is not None:
            raise OntologyError(
                "pass either a snapshot to bootstrap from or an ontology "
                "to fold, not both"
            )
        if snapshot is not None:
            self.bootstrap(snapshot)
        if ontology is not None:
            store = ontology.store if isinstance(ontology, AttentionOntology) \
                else ontology
            self.refresh([store_to_delta(store)])
        if deltas is not None:
            self.refresh(deltas)

    # ------------------------------------------------------------------
    # cluster state
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self._router.num_shards

    @property
    def version(self) -> int:
        """Global delta-stream version the cluster serves."""
        return self._router.version

    @property
    def ontology(self) -> AttentionOntology:
        """The merged read view, as an :class:`AttentionOntology` façade."""
        return self._service.ontology

    @property
    def views(self):
        """The serving facade's maintained-view catalog (per-shard
        posting fragments live on each replica's own catalog)."""
        return self._service.views

    @property
    def router(self) -> ShardRouter:
        return self._router

    @property
    def replicas(self) -> "list[ShardReplica]":
        return list(self._replicas)

    def bootstrap(self, snapshot: dict) -> None:
        """Cold-start the shards from an :meth:`OntologyStore.compact`
        dump: fold it into one synthetic delta, route it (materialising
        ghost replicas for cross-shard edges), then fast-forward the
        router to the snapshot's stream version so the tail recorded
        after the snapshot applies through :meth:`refresh`.
        """
        if self._router.version or len(self._router):
            raise OntologyError(
                "snapshot bootstrap requires a fresh cluster — these "
                "shards already hold routed state"
            )
        from ..core.serialize import store_from_dict  # local: avoid cycle

        ring_meta = snapshot.get("ring")
        if ring_meta is not None:
            # The snapshot records the ring epoch active at its stream
            # version; it is authoritative — a cluster bootstrapping
            # from a post-rebalance snapshot must come up on the
            # rebalanced ring, whatever shard count it was constructed
            # with, or its placement would disagree with every other
            # consumer of the stream.
            ring = HashRing.from_op(ring_meta)
            if ring != self._router.ring:
                self._router = ShardRouter.from_ring(ring)
                self._replicas = [ShardReplica(i)
                                  for i in range(ring.num_shards)]
                self._view.reseat(self._router, self._replicas)
        fold = store_to_delta(store_from_dict(snapshot))
        for replica, sub in zip(self._replicas, self._router.split(fold)):
            if sub is not None:
                replica.apply(sub)
        self._router.fast_forward(snapshot["store_version"])
        # The fold delta's versions do not align with the snapshot's
        # stream version line; rebuild the front views from the hydrated
        # shards and adopt the stream version directly.
        self._service.fast_forward_views(snapshot["store_version"])

    def refresh(self, deltas: "Iterable[OntologyDelta]") -> int:
        """Route update batches to their shards; returns batches applied.

        Mirrors :meth:`OntologyService.refresh`: already-applied batches
        are skipped (at-least-once delivery), a gap in the stream — or a
        batch straddling the cluster's version, e.g. a tail whose base
        predates the bootstrap snapshot — raises
        :class:`~repro.errors.DeltaGapError` before any shard is touched.
        """
        applied = 0
        for delta in deltas:
            if not DeltaGapError.check("cluster", self._router.version,
                                       delta):
                continue
            if ring_op_of(delta) is not None:
                # A ring-epoch record replayed from the stream (or log):
                # perform the same live rebalance the recording cluster
                # did, so replay reproduces the rebalanced topology.
                self._apply_ring_delta(delta)
            else:
                sub_deltas = self._router.split(delta)
                for replica, sub in zip(self._replicas, sub_deltas):
                    if sub is None:
                        continue
                    try:
                        replica.apply(sub)
                    except Exception as exc:
                        # The router already advanced past this batch;
                        # like a single store's mid-replay failure (see
                        # OntologyStore.apply_delta), the cluster is now
                        # inconsistent and must be rebuilt, not retried.
                        raise OntologyError(
                            f"shard {replica.shard_id} failed mid-refresh "
                            f"({exc}); cluster replicas are inconsistent — "
                            "rebuild from a snapshot plus a clean delta "
                            "stream"
                        ) from exc
            # Advance the front-level maintained views (interest lists,
            # follow-up sequences) from the same delta the shards
            # consumed; per-shard posting fragments already advanced
            # inside replica.apply().
            self._service.fold_views(delta)
            applied += 1
            self._deltas_applied += 1
        return applied

    # ------------------------------------------------------------------
    # rebalancing (ring epochs)
    # ------------------------------------------------------------------
    def rebalance(self, num_shards: int,
                  vnodes: "int | None" = None) -> OntologyDelta:
        """Grow (or shrink) the cluster to ``num_shards`` shards by
        flipping to a new consistent-hash ring epoch.

        Mints the ring-epoch record at the cluster's current stream
        version, streams the moved node records (plus the ghost replicas
        and incident edges they need) to their new shards as
        :class:`~repro.cluster.ring.TransferSlice` transfers, and flips
        the read view atomically once every transfer landed — readers
        never observe a mixed epoch.  Returns the ring-epoch delta,
        which the caller must feed to every *other* consumer of the
        stream (the single-store oracle, the replicated log) so all
        version lines stay aligned.  Transfer accounting lands on
        :attr:`last_rebalance`.
        """
        ring = HashRing(num_shards,
                        self._router.vnodes if vnodes is None else vnodes,
                        self._router.epoch + 1)
        delta = ring_delta(self.version, ring)
        self._apply_ring_delta(delta)
        self._service.fold_views(delta)
        self._deltas_applied += 1
        return delta

    def _apply_ring_delta(self, delta: OntologyDelta) -> dict:
        """Execute one ring-epoch record: plan, transfer, demote, flip."""
        plan = self._router.apply_ring(delta)
        sources = list(self._replicas)
        for shard_id in range(len(self._replicas), plan.ring.num_shards):
            self._replicas.append(ShardReplica(shard_id))
        transferred = self._run_transfers(plan, sources)
        for shard_id, moved in enumerate(
                map(plan.moved_out_of, range(len(sources)))):
            if moved:
                sources[shard_id].demote(moved)
        if plan.ring.num_shards < len(self._replicas):
            del self._replicas[plan.ring.num_shards:]
        self._view.reseat(self._router, self._replicas)
        self._rebalances.inc()
        self._moved_nodes.inc(plan.moved_nodes)
        self._transfer_ops.inc(transferred)
        self.last_rebalance = {
            "epoch": plan.ring.epoch,
            "num_shards": plan.ring.num_shards,
            "moved_nodes": plan.moved_nodes,
            "transfer_ops": transferred,
        }
        return self.last_rebalance

    def _run_transfers(self, plan: RebalancePlan, sources) -> int:
        """Stream every (source, destination) slice of the plan; returns
        total ops applied on destinations."""
        total_ops = 0
        for (src, dst), node_ids in plan.by_pair():
            transfer = sources[src].transfer_slice(node_ids,
                                                   plan.ring.epoch, dst)
            dest = self._replicas[dst]
            result = dest.adopt_slice(transfer)
            self._router.note_materialized(
                dst, [node.node_id for node in transfer.nodes] +
                [ghost.node_id for ghost in transfer.ghosts])
            self._router.sync_shard_version(dst, dest.store.version)
            total_ops += result["ops"]
        return total_ops

    # ------------------------------------------------------------------
    # serving APIs (delegated to the inner service over the view)
    # ------------------------------------------------------------------
    def tag_documents(self, documents: Sequence):
        """Tag a batch of documents via scatter-gather candidate reads."""
        return self._service.tag_documents(documents)

    def interpret_queries(self, queries: Sequence[str]):
        """Analyze a batch of raw query strings."""
        return self._service.interpret_queries(queries)

    def neighborhood(self, node_id: str, depth: int = 1,
                     edge_type: "EdgeType | None" = None) -> tuple[str, ...]:
        return self._service.neighborhood(node_id, depth=depth,
                                          edge_type=edge_type)

    def concepts_of_entity(self, entity_phrase: str) -> tuple[str, ...]:
        return self._service.concepts_of_entity(entity_phrase)

    def record_read(self, user_id: str, tags: "list[str]",
                    weight: float = 1.0):
        return self._service.record_read(user_id, tags, weight=weight)

    def user_interests(self, user_id: str, k: int = 10, node_type=None):
        return self._service.user_interests(user_id, k=k, node_type=node_type)

    def recommend_for_user(self, user_id: str, k: int = 5):
        return self._service.recommend_for_user(user_id, k=k)

    def track_events(self, events) -> int:
        return self._service.track_events(events)

    def follow_ups(self, read_phrase: str, limit: int = 3):
        return self._service.follow_ups(read_phrase, limit=limit)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Inner serving stats plus per-shard placement/version lines."""
        stats = self._service.stats()
        stats["num_shards"] = self.num_shards
        stats["cluster_deltas_applied"] = self._deltas_applied
        stats["ring"] = {"epoch": self._router.epoch,
                         "num_shards": self._router.num_shards,
                         "vnodes": self._router.vnodes}
        if self.last_rebalance is not None:
            stats["last_rebalance"] = dict(self.last_rebalance)
        stats["shards"] = [replica.describe() for replica in self._replicas]
        return stats
