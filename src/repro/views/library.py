"""The maintained views behind the serving tier's four hot read paths.

Each view here is a materialized query result advanced from the delta
stream (via :class:`~repro.views.catalog.ViewCatalog`) instead of being
recomputed behind a version-keyed LRU:

* :class:`TokenPostingsView` — the inverted posting lists
  ``(node_type, token) -> node ids`` that ``tag_documents`` candidate
  generation reads; maintained from the ``tokens`` relation.
  :class:`ShardPostingsFragment` is its per-shard variant (owned rows
  only), and :class:`PostingsStoreAdapter` splices a postings view into
  the store interface the tagger consumes.
* :class:`UserInterestsView` — per-user ranked interest lists (the
  CTR-style decayed aggregates) serving both ``user_interests`` and
  ``recommend_for_user``; maintained from the ``edges`` relation plus
  out-of-band profile-read notifications.
* :class:`StoryFollowUpsView` — per-(story, phrase) follow-up
  sequences serving ``StoryTracker.follow_ups``; maintained from
  routed-event notifications (story events do not travel in the
  ontology delta stream).

Every view implements the catalog protocol (``apply`` / ``rebuild``)
plus the byte-identity oracle pair ``materialized()`` / ``recompute()``
— canonical JSON-encodable forms where ``rpc.dumps(materialized) ==
rpc.dumps(recompute)`` must hold after every delta, which the
consistency suite asserts across randomized op scripts.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Callable, Iterable, Mapping, Optional

from .zset import ZSet


class TokenPostingsView:
    """Maintained inverted postings: ``(type_value, token) -> {ids}``.

    Mirrors the store's indexing rule exactly: one posting row per
    *distinct* token of a node's canonical phrase, added at node
    creation, never at alias time.  ``rebuild``/``recompute`` scan the
    backing store (the from-scratch oracle); fragments override
    :meth:`_scan` to restrict the scan.
    """

    def __init__(self, store: Any = None) -> None:
        self._store = store
        self._postings: "dict[tuple[str, str], set[str]]" = {}

    # -- catalog protocol ----------------------------------------------
    def apply(self, relations: "Mapping[str, ZSet]") -> None:
        tokens = relations.get("tokens")
        if not tokens:
            return
        for (type_value, token, node_id), weight in tokens:
            key = (type_value, token)
            if weight > 0:
                self._postings.setdefault(key, set()).add(node_id)
            else:
                ids = self._postings.get(key)
                if ids is not None:
                    ids.discard(node_id)
                    if not ids:
                        del self._postings[key]

    def rebuild(self) -> None:
        self._postings = {}
        for node in self._scan():
            for token in set(node.tokens):
                self._postings.setdefault(
                    (node.node_type.value, token), set()).add(node.node_id)

    def _scan(self) -> "Iterable[Any]":
        if self._store is None:
            return ()
        return self._store.nodes()

    # -- reads ----------------------------------------------------------
    def ids(self, type_value: str, token: str) -> "set[str]":
        return self._postings.get((type_value, token), set())

    def candidate_ids(self, type_value: str, tokens: "Iterable[str]"
                      ) -> "set[str]":
        out: "set[str]" = set()
        for token in set(tokens):
            hit = self._postings.get((type_value, token))
            if hit:
                out.update(hit)
        return out

    # -- byte-identity oracle -------------------------------------------
    def materialized(self) -> dict:
        return {f"{type_value}::{token}": sorted(ids)
                for (type_value, token), ids in sorted(self._postings.items())}

    def recompute(self) -> dict:
        fresh: "dict[tuple[str, str], set[str]]" = {}
        for node in self._scan():
            for token in set(node.tokens):
                fresh.setdefault((node.node_type.value, token),
                                 set()).add(node.node_id)
        return {f"{type_value}::{token}": sorted(ids)
                for (type_value, token), ids in sorted(fresh.items())}


class ShardPostingsFragment(TokenPostingsView):
    """A shard replica's slice of the postings view: owned rows only.

    Ghost copies are indexed in the replica's *store* (they must resolve
    by id) but never surface from ``owned_token_ids``; the fragment
    encodes that by construction — ghost node ops lower to zero token
    rows, and rebuild/recompute filter the store scan by ownership.
    Scatter-gather then *merges fragments* (set union across shards)
    instead of each shard recomputing its filter per read.
    """

    def __init__(self, replica: Any) -> None:
        super().__init__(store=None)
        self._replica = replica

    def _scan(self) -> "Iterable[Any]":
        replica = self._replica
        return (node for node in replica.store.nodes()
                if replica.owns(node.node_id))


class PostingsStoreAdapter:
    """Store façade whose posting lookups read a maintained view.

    ``DocumentTagger`` resolves candidates through ``store.nodes_with_
    token`` / ``store.candidates``; wrapping the real store with this
    adapter (and handing the tagger ``AttentionOntology(store=adapter)``)
    reroutes exactly those calls onto the :class:`TokenPostingsView`
    while every other store method passes through untouched.  Result
    ordering matches the store byte-for-byte: ids sorted, resolved
    against the same tables.
    """

    def __init__(self, store: Any, view: TokenPostingsView) -> None:
        self._store = store
        self._view = view

    def __getattr__(self, name: str) -> Any:
        return getattr(self._store, name)

    # __getattr__ does not cover dunders.
    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._store

    def nodes_with_token(self, token: str, node_type: Any) -> list:
        resolve = self._store.node
        return [resolve(node_id) for node_id in
                sorted(self._view.ids(node_type.value, token))]

    def candidates(self, tokens: "Iterable[str]", node_type: Any) -> list:
        resolve = self._store.node
        return [resolve(node_id) for node_id in
                sorted(self._view.candidate_ids(node_type.value, tokens))]

    def contained_phrases(self, tokens: "list[str]", node_type: Any) -> list:
        out = []
        for node in self.candidates(tokens, node_type):
            ptoks = node.tokens
            if not ptoks or len(ptoks) > len(tokens):
                continue
            k = len(ptoks)
            if any(tokens[i:i + k] == ptoks
                   for i in range(len(tokens) - k + 1)):
                out.append(node)
        return out


class UserInterestsView:
    """Per-user ranked interest lists (observed + edge-inferred).

    One maintained list serves both hot profile reads: ``user_interests``
    is a type-filtered prefix, ``recommend_for_user`` a
    non-observed-filtered prefix.  Filtering the one full
    ``(-weight, phrase)``-ranked list is byte-identical to ranking the
    filtered subset directly because Python's sort is stable (a
    subsequence of a stably sorted list *is* the stable sort of that
    subsequence).

    Maintenance has two inputs:

    * the ``edges`` relation (graph growth) — an edge incident to a node
      some user *observes* can change that user's 1-hop inferred
      weights, so exactly those users re-rank (``apply``);
    * profile reads (``user_touched``, fed out-of-band by the service)
      — a read decays and bumps that one user's weights.

    Re-ranking runs ``profiler.infer`` eagerly; inferred weights are a
    monotone max-fold over observed weights, so eager inference commutes
    with the lazy read-time inference the LRU path used — same floats,
    same bytes.
    """

    def __init__(self, profiler_source: "Callable[[], Any]",
                 ontology: Any) -> None:
        self._profiler = profiler_source
        self._ontology = ontology
        #: node_id -> user ids whose profiles observe it.
        self._observers: "dict[str, set[str]]" = {}
        #: user -> full ranked [(phrase, weight, type_value, observed)].
        self._ranked: "dict[str, list[tuple[str, float, str, bool]]]" = {}

    # -- catalog protocol ----------------------------------------------
    def apply(self, relations: "Mapping[str, ZSet]") -> None:
        edges = relations.get("edges")
        if not edges or not self._observers:
            return
        affected: "set[str]" = set()
        for (source, target, _type_value, _weight), weight in edges:
            if weight <= 0:
                continue
            affected.update(self._observers.get(source, ()))
            affected.update(self._observers.get(target, ()))
        for user_id in sorted(affected):
            self._refresh_user(user_id)

    def rebuild(self) -> None:
        self._observers = {}
        users = sorted(set(self._ranked) | set(self._known_users()))
        self._ranked = {}
        for user_id in users:
            self._refresh_user(user_id)

    def _known_users(self) -> "Iterable[str]":
        profiler = self._profiler()
        return profiler.users() if profiler is not None else ()

    # -- out-of-band maintenance ----------------------------------------
    def user_touched(self, user_id: str) -> None:
        """One user's profile changed (a read was recorded)."""
        self._refresh_user(user_id)

    def _refresh_user(self, user_id: str) -> None:
        profile = self._profiler().infer(user_id)
        for node_id in profile.observed:
            self._observers.setdefault(node_id, set()).add(user_id)
        rows = []
        for node_id, weight in profile.weights.items():
            node = self._ontology.node(node_id)
            rows.append((node.phrase, weight, node.node_type.value,
                         node_id in profile.observed))
        rows.sort(key=lambda row: (-row[1], row[0]))
        self._ranked[user_id] = rows

    # -- reads ----------------------------------------------------------
    def interests(self, user_id: str, k: int = 10,
                  node_type: Any = None) -> "list[tuple[str, float]]":
        rows = self._ranked.get(user_id)
        if rows is None:
            return []
        type_value = node_type.value if node_type is not None else None
        out = [(phrase, weight)
               for phrase, weight, row_type, _observed in rows
               if type_value is None or row_type == type_value]
        return out[:k]

    def recommendations(self, user_id: str, k: int = 5
                        ) -> "list[tuple[str, float]]":
        rows = self._ranked.get(user_id, ())
        out = [(phrase, weight)
               for phrase, weight, _row_type, observed in rows
               if not observed]
        return out[:k]

    # -- byte-identity oracle -------------------------------------------
    def materialized(self) -> dict:
        return {user_id: [list(row) for row in self._ranked[user_id]]
                for user_id in sorted(self._ranked)}

    def recompute(self) -> dict:
        """Fresh infer + rank per known user, bypassing maintained state."""
        profiler = self._profiler()
        out: dict = {}
        for user_id in sorted(set(self._ranked) | set(self._known_users())):
            profile = profiler.infer(user_id)
            rows = []
            for node_id, weight in profile.weights.items():
                node = self._ontology.node(node_id)
                rows.append([node.phrase, weight, node.node_type.value,
                             node_id in profile.observed])
            rows.sort(key=lambda row: (-row[1], row[0]))
            out[user_id] = rows
        return out


class _FollowUpList:
    """One (story, phrase) follow-up sequence under incremental insert.

    The batch path stable-sorts ``story.events`` filtered to ``day >=
    cutoff and phrase != read_phrase`` by ``(day, phrase)``; inserting
    each arriving event at ``bisect_right`` of that same key reproduces
    the stable sort exactly (equal keys land after existing ones —
    arrival order, which is what stability preserves).
    """

    __slots__ = ("cutoff", "keys", "events")

    def __init__(self, cutoff: int) -> None:
        self.cutoff = cutoff
        self.keys: "list[tuple[int, str]]" = []
        self.events: "list[Any]" = []

    def insert(self, event: Any) -> None:
        if event.day < self.cutoff:
            return
        key = (event.day, event.phrase)
        index = bisect_right(self.keys, key)
        self.keys.insert(index, key)
        self.events.insert(index, event)


class StoryFollowUpsView:
    """Maintained follow-up sequences per (story, read-phrase).

    ``StoryTracker.follow_ups(phrase)`` = events of the earliest story
    containing ``phrase``, on/after the day of the first-*arriving*
    event with that phrase, excluding the phrase itself, stable-sorted
    by ``(day, phrase)``.  This view keeps exactly those sequences
    up-to-date per routed event, so a read is a dict lookup + slice.

    Story events do not travel in the ontology delta stream (they are
    request payloads), so maintenance is fed out-of-band with the
    tracker's routing decisions: ``feed([(story_id, event), ...])`` in
    routing order.  ``recompute`` re-derives everything from the
    tracker itself — an independent oracle, not a mirror of this view's
    state.
    """

    def __init__(self, tracker_source: "Callable[[], Any]") -> None:
        self._tracker = tracker_source
        #: story_id -> events in arrival order (mirrors story.events).
        self._events: "dict[int, list[Any]]" = {}
        #: phrase -> story ids containing it.
        self._phrase_stories: "dict[str, set[int]]" = {}
        #: (story_id, phrase) -> maintained follow-up list.
        self._lists: "dict[tuple[int, str], _FollowUpList]" = {}

    # -- out-of-band maintenance ----------------------------------------
    def feed(self, assignments: "Iterable[tuple[int, Any]]") -> None:
        """Fold routed events (story_id, event) in routing order."""
        for story_id, event in assignments:
            self._events.setdefault(story_id, []).append(event)
            self._route(story_id, event)

    def _route(self, story_id: int, event: Any) -> None:
        phrase = event.phrase
        story_events = self._events[story_id]
        # Grow every other maintained list of this story.
        for (sid, read_phrase), flist in self._lists.items():
            if sid == story_id and read_phrase != phrase:
                flist.insert(event)
        if story_id not in self._phrase_stories.get(phrase, ()):
            # First arrival of this phrase in this story fixes the
            # cutoff day; seed the list from the already-routed events.
            self._phrase_stories.setdefault(phrase, set()).add(story_id)
            flist = _FollowUpList(event.day)
            self._lists[(story_id, phrase)] = flist
            seed = [e for e in story_events
                    if e.day >= event.day and e.phrase != phrase]
            seed.sort(key=lambda e: (e.day, e.phrase))
            for seeded in seed:
                flist.keys.append((seeded.day, seeded.phrase))
                flist.events.append(seeded)

    # -- catalog protocol ----------------------------------------------
    def apply(self, relations: "Mapping[str, ZSet]") -> None:
        """Ontology deltas never carry story events — nothing to fold."""

    def rebuild(self) -> None:
        events = self._events
        self._events = {}
        self._phrase_stories = {}
        self._lists = {}
        for story_id in sorted(events):
            for event in events[story_id]:
                self._events.setdefault(story_id, []).append(event)
                self._route(story_id, event)

    # -- reads ----------------------------------------------------------
    def follow_ups(self, read_phrase: str, limit: int = 3) -> list:
        story_ids = self._phrase_stories.get(read_phrase)
        if not story_ids:
            return []
        flist = self._lists[(min(story_ids), read_phrase)]
        return flist.events[:limit]

    # -- byte-identity oracle -------------------------------------------
    def materialized(self) -> dict:
        return {
            f"{story_id}::{phrase}": list(flist.events)
            for (story_id, phrase), flist in sorted(self._lists.items())
        }

    def recompute(self) -> dict:
        """Batch-derive every (story, phrase) sequence from the tracker."""
        tracker = self._tracker()
        out: dict = {}
        if tracker is None:
            return out
        for story in tracker.stories:
            for phrase in sorted({e.phrase for e in story.events}):
                read = next(e for e in story.events if e.phrase == phrase)
                later = [e for e in story.events
                         if e.day >= read.day and e.phrase != phrase]
                later.sort(key=lambda e: (e.day, e.phrase))
                out[f"{story.story_id}::{phrase}"] = later
        return out
