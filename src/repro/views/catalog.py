"""The view catalog: named materialized views advanced from one delta.

A :class:`ViewCatalog` keeps its *own* version line, deliberately
distinct from the store it shadows.  The owning service gates folds
against ``catalog.version`` (skip behind / apply contiguous / mark
stale on gap) exactly the way replicas gate ``OntologyDelta`` against
the store — so a catalog stays correct even when somebody mutates the
underlying store out-of-band; the mismatch is detected at the next read
and repaired by :meth:`rehydrate` (from-scratch rebuild, the one
non-incremental escape hatch).

Each registered view implements:

- ``apply(relations)``  — fold one batch of per-relation Z-sets
  (as produced by :func:`repro.core.zsets.delta_to_zsets`);
- ``rebuild()``         — recompute from its base source (rehydration);
- ``materialized()`` / ``recompute()`` — canonical forms for the
  byte-identity oracle (``rpc.dumps`` equality, as in PRs 2–6).

Maintenance is observable per view: ``advance`` and ``feed`` time every
view update into ``maintain_seconds`` (catalog-wide) and
``view.<name>.maintain_seconds`` histograms, count deltas folded and
fan-in rows, and keep a ``views`` gauge — all inside whatever
:class:`repro.obs.Scope` the owner mints the catalog with.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Tuple

from ..obs import Scope, get_registry
from ..obs.recorder import get_recorder
from .zset import ZSet


class ViewCatalog:
    """Registers named materialized views and advances them together."""

    def __init__(self, metrics: "Optional[Scope]" = None) -> None:
        self._views: "Dict[str, Any]" = {}
        self._version = 0
        self._scope = metrics if metrics is not None else \
            get_registry().scope("views")
        self._clock = self._scope.registry.clock
        self._views_gauge = self._scope.gauge("registered")
        self._deltas_folded = self._scope.counter("deltas_folded")
        self._rows_folded = self._scope.counter("rows_folded")
        self._fanin_rows = self._scope.histogram("fanin_rows", base=1.0)
        self._maintain = self._scope.histogram("maintain_seconds")
        self._rehydrations = self._scope.counter("rehydrations")
        self._stale_gauge = self._scope.gauge("stale")
        self._per_view: "Dict[str, Any]" = {}

    # ------------------------------------------------------------------
    # registration / lookup
    # ------------------------------------------------------------------
    def register(self, name: str, view: Any) -> Any:
        """Add ``view`` under ``name``; returns the view for chaining."""
        if name in self._views:
            raise ValueError(f"view already registered: {name}")
        self._views[name] = view
        self._per_view[name] = self._scope.histogram(
            f"view.{name}.maintain_seconds")
        self._views_gauge.set(len(self._views))
        return view

    def get(self, name: str) -> Any:
        return self._views[name]

    def items(self) -> "Iterable[Tuple[str, Any]]":
        return self._views.items()

    def __len__(self) -> int:
        return len(self._views)

    def __contains__(self, name: str) -> bool:
        return name in self._views

    # ------------------------------------------------------------------
    # the version line
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        return self._version

    def fast_forward(self, version: int) -> None:
        """Adopt ``version`` without folding — used right after views
        hydrate from an already-populated store (bootstrap)."""
        self._version = version
        self._stale_gauge.set(0)

    def mark_stale(self) -> None:
        """Flag that the catalog missed a delta (gap); the next
        :meth:`rehydrate` clears it."""
        self._stale_gauge.set(1)

    @property
    def stale(self) -> bool:
        return bool(self._stale_gauge.value)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def advance(self, relations: "Mapping[str, ZSet]",
                version: "Optional[int]" = None) -> None:
        """Fold one lowered delta batch into every registered view.

        ``relations`` maps relation name -> :class:`ZSet` of changed
        rows; the fan-in (total changed rows) is what maintenance cost
        is proportional to — never the corpus size.
        """
        rows = sum(len(zset) for zset in relations.values())
        self._fanin_rows.observe(rows)
        self._rows_folded.inc(rows)
        for name, view in self._views.items():
            self._timed(name, lambda view=view: view.apply(relations))
        self._deltas_folded.inc()
        if version is not None:
            self._version = version

    def feed(self, name: str, update: "Callable[[], Any]") -> Any:
        """Run an out-of-band maintenance step against one view (e.g. a
        profile read or a story-event batch — inputs that do not travel
        in the delta stream), timed like a fold."""
        return self._timed(name, update)

    def rehydrate(self, version: int, count: bool = True) -> None:
        """Rebuild every view from scratch and adopt ``version`` — the
        repair path for a stale catalog (gap in the fold stream or an
        out-of-band store mutation).  ``count=False`` leaves the
        ``rehydrations`` health counter alone (initial hydration at
        service construction is expected, not a repair)."""
        for name, view in self._views.items():
            self._timed(name, view.rebuild)
        if count:
            self._rehydrations.inc()
            get_recorder().record("views.rehydrate", self._scope.prefix,
                                  version=version, views=len(self._views))
        self.fast_forward(version)

    def _timed(self, name: str, update: "Callable[[], Any]") -> Any:
        start = self._clock()
        try:
            return update()
        finally:
            elapsed = self._clock() - start
            self._maintain.observe(elapsed)
            hist = self._per_view.get(name)
            if hist is not None:
                hist.observe(elapsed)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Thin summary for ``service.stats()`` (full detail lives in
        the metrics registry snapshot via ``obs_status``)."""
        maintain = self._maintain.state
        return {
            "version": self._version,
            "views": len(self._views),
            "deltas_folded": self._deltas_folded.value,
            "rows_folded": self._rows_folded.value,
            "rehydrations": self._rehydrations.value,
            "stale": bool(self._stale_gauge.value),
            "maintain_p95": round(maintain["p95"], 6),
        }
