"""repro.views: Z-set delta algebra + incrementally maintained views.

The serving tier's refresh used to mean "bump the version and let the
LRU miss" — refresh cost proportional to cache churn.  This package
replaces that with DBSP-style incremental view maintenance (DESIGN.md
§13): mutations already travel as replayable ``OntologyDelta`` batches,
:func:`repro.core.zsets.delta_to_zsets` lowers each batch into
per-relation :class:`ZSet` changes, and a :class:`ViewCatalog` folds
the changes into every registered materialized view in one pass — so
refresh cost is proportional to the *delta*, not the corpus or the
cache.

:mod:`repro.views.library` holds the concrete views behind the four hot
read paths (tag postings, user interests, recsys recommendations, story
follow-ups), each carrying its own ``materialized()``/``recompute()``
byte-identity oracle.
"""

from .zset import ZSet
from .catalog import ViewCatalog
from .library import (
    PostingsStoreAdapter,
    ShardPostingsFragment,
    StoryFollowUpsView,
    TokenPostingsView,
    UserInterestsView,
)

__all__ = [
    "ZSet",
    "ViewCatalog",
    "PostingsStoreAdapter",
    "ShardPostingsFragment",
    "StoryFollowUpsView",
    "TokenPostingsView",
    "UserInterestsView",
]
