"""Z-sets: weighted multisets, the delta algebra behind maintained views.

A Z-set maps elements to signed integer weights — a positive weight is
an insertion (possibly repeated), a negative weight a retraction, and a
zero weight is *absence* (entries at weight 0 are dropped eagerly, so
``a + (-a)`` is empty, not a set of zeroes).  Database states and
database *changes* live in the same algebra: applying a change is just
``state + delta``, and the incremental-view-maintenance discipline
(DBSP; Berkholz et al.'s answering-queries-under-updates line in
PAPERS.md) falls out of operator **linearity** — for a linear operator
``Q``, ``Q(state + delta) == Q(state) + Q(delta)``, so a maintained view
advances by folding ``Q(delta)`` instead of recomputing ``Q(state)``.

``map`` / ``filter`` / ``join`` are linear in each argument; ``distinct``
and ``aggregate`` are *not* linear (documented on each), which is exactly
why views built on them keep indexed state rather than a single running
Z-set.

Elements are arbitrary hashable keys (the relation rows); insertion
order is preserved (Python dict order) so folding a delta is
deterministic and replayable.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable, Iterator


class ZSet:
    """A weighted set: element -> non-zero integer weight.

    Args:
        entries: optional iterable of ``(element, weight)`` pairs (or
            another :class:`ZSet`); weights for repeated elements sum,
            elements summing to zero are dropped.
    """

    __slots__ = ("_weights",)

    def __init__(self, entries: "Iterable[tuple[Hashable, int]] | None"
                 = None) -> None:
        self._weights: "dict[Hashable, int]" = {}
        if entries is not None:
            for element, weight in entries:
                self.add(element, weight)

    # ------------------------------------------------------------------
    # construction / mutation
    # ------------------------------------------------------------------
    def add(self, element: Hashable, weight: int = 1) -> None:
        """Fold one weighted element in; a zero total drops the entry."""
        if not weight:
            return
        total = self._weights.get(element, 0) + weight
        if total:
            self._weights[element] = total
        else:
            self._weights.pop(element, None)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def weight(self, element: Hashable) -> int:
        """The element's weight (0 when absent)."""
        return self._weights.get(element, 0)

    def __iter__(self) -> "Iterator[tuple[Hashable, int]]":
        """Iterate ``(element, weight)`` pairs in insertion order."""
        return iter(self._weights.items())

    def keys(self) -> "Iterator[Hashable]":
        return iter(self._weights)

    def __len__(self) -> int:
        return len(self._weights)

    def __bool__(self) -> bool:
        return bool(self._weights)

    def __contains__(self, element: Hashable) -> bool:
        return element in self._weights

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ZSet):
            return NotImplemented
        return self._weights == other._weights

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{element!r}: {weight:+d}"
                          for element, weight in self)
        return f"ZSet({{{inner}}})"

    # ------------------------------------------------------------------
    # the group structure (addition / negation)
    # ------------------------------------------------------------------
    def __add__(self, other: "ZSet") -> "ZSet":
        out = ZSet(self)
        for element, weight in other:
            out.add(element, weight)
        return out

    def __neg__(self) -> "ZSet":
        return ZSet((element, -weight) for element, weight in self)

    def __sub__(self, other: "ZSet") -> "ZSet":
        return self + (-other)

    # ------------------------------------------------------------------
    # linear operators: Q(a + b) == Q(a) + Q(b)
    # ------------------------------------------------------------------
    def map(self, fn: "Callable[[Hashable], Hashable]") -> "ZSet":
        """Relabel elements; weights of colliding images sum (linear)."""
        return ZSet((fn(element), weight) for element, weight in self)

    def filter(self, predicate: "Callable[[Hashable], bool]") -> "ZSet":
        """Keep elements satisfying ``predicate`` (linear)."""
        return ZSet((element, weight) for element, weight in self
                    if predicate(element))

    def join(self, other: "ZSet",
             on: "Callable[[Hashable], Hashable]",
             on_other: "Callable[[Hashable], Hashable] | None" = None,
             merge: "Callable[[Hashable, Hashable], Hashable]"
             = lambda a, b: (a, b)) -> "ZSet":
        """Equi-join on extracted keys; output weights are products
        (bilinear — linear in each argument separately, which is what
        incremental join maintenance exploits)."""
        on_other = on_other if on_other is not None else on
        index: "dict[Hashable, list[tuple[Hashable, int]]]" = {}
        for element, weight in other:
            index.setdefault(on_other(element), []).append((element, weight))
        out = ZSet()
        for element, weight in self:
            for matched, matched_weight in index.get(on(element), ()):
                out.add(merge(element, matched), weight * matched_weight)
        return out

    # ------------------------------------------------------------------
    # non-linear operators
    # ------------------------------------------------------------------
    def distinct(self) -> "ZSet":
        """The supported *set*: weight 1 for every positively-weighted
        element.  NOT linear — ``distinct(a + b) != distinct(a) +
        distinct(b)`` in general — so views over ``distinct`` keep the
        underlying weighted state and re-derive support per key."""
        return ZSet((element, 1) for element, weight in self if weight > 0)

    def aggregate(self, key: "Callable[[Hashable], Hashable]",
                  value: "Callable[[Hashable], float]" = lambda _e: 1
                  ) -> "dict[Hashable, float]":
        """Group by ``key`` and sum ``weight * value(element)`` — the
        Z-set generalisation of COUNT/SUM (zero totals dropped).  The
        *output* is not a Z-set (totals are not multiplicities), but the
        totals themselves add group-wise across deltas, which is how
        aggregate views stay incremental."""
        totals: "dict[Hashable, float]" = {}
        for element, weight in self:
            group = key(element)
            total = totals.get(group, 0) + weight * value(element)
            if total:
                totals[group] = total
            else:
                totals.pop(group, None)
        return totals

    # ------------------------------------------------------------------
    def entries(self) -> "list[tuple[Any, int]]":
        """Materialise ``(element, weight)`` pairs (insertion order)."""
        return list(self._weights.items())
