"""The Attention Ontology: a DAG of user-attention phrases.

Five node types (category, concept, entity, event, topic) and three edge
types (isA, involve, correlate) as defined in paper Section 2.  isA edges
must stay acyclic (the ontology is a DAG); correlate edges are symmetric.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field

from ..errors import OntologyError


class NodeType(enum.Enum):
    CATEGORY = "category"
    CONCEPT = "concept"
    ENTITY = "entity"
    EVENT = "event"
    TOPIC = "topic"


class EdgeType(enum.Enum):
    ISA = "isA"
    INVOLVE = "involve"
    CORRELATE = "correlate"


@dataclass
class AttentionNode:
    """One ontology node.

    Attributes:
        node_id: unique id, assigned by the ontology.
        node_type: one of the five attention types.
        phrase: canonical surface phrase.
        aliases: merged near-duplicate phrases (attention normalization).
        payload: free-form attributes — events store trigger/time/location,
            concepts may store member hints, etc.
    """

    node_id: str
    node_type: NodeType
    phrase: str
    aliases: set[str] = field(default_factory=set)
    payload: dict = field(default_factory=dict)

    @property
    def tokens(self) -> list[str]:
        from ..text.tokenizer import tokenize

        return tokenize(self.phrase)


@dataclass(frozen=True)
class Edge:
    """A typed directed edge source -> target."""

    source: str
    target: str
    edge_type: EdgeType
    weight: float = 1.0


class AttentionOntology:
    """Mutable attention-ontology DAG."""

    def __init__(self) -> None:
        self._nodes: dict[str, AttentionNode] = {}
        self._by_phrase: dict[str, str] = {}
        self._out: dict[str, dict[tuple[str, EdgeType], Edge]] = defaultdict(dict)
        self._in: dict[str, dict[tuple[str, EdgeType], Edge]] = defaultdict(dict)
        self._counter = 0

    # ------------------------------------------------------------------
    # nodes
    # ------------------------------------------------------------------
    def add_node(self, node_type: NodeType, phrase: str,
                 payload: "dict | None" = None) -> AttentionNode:
        """Add (or return the existing) node for ``phrase``/``node_type``."""
        key = self._phrase_key(node_type, phrase)
        existing_id = self._by_phrase.get(key)
        if existing_id is not None:
            node = self._nodes[existing_id]
            if payload:
                node.payload.update(payload)
            return node
        self._counter += 1
        node_id = f"{node_type.value[:3]}_{self._counter:06d}"
        node = AttentionNode(node_id, node_type, phrase, payload=dict(payload or {}))
        self._nodes[node_id] = node
        self._by_phrase[key] = node_id
        return node

    @staticmethod
    def _phrase_key(node_type: NodeType, phrase: str) -> str:
        return f"{node_type.value}::{phrase.lower()}"

    def add_alias(self, node_id: str, alias: str) -> None:
        node = self.node(node_id)
        node.aliases.add(alias)
        self._by_phrase.setdefault(self._phrase_key(node.node_type, alias), node_id)

    def node(self, node_id: str) -> AttentionNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise OntologyError(f"unknown node {node_id!r}") from None

    def find(self, node_type: NodeType, phrase: str) -> "AttentionNode | None":
        node_id = self._by_phrase.get(self._phrase_key(node_type, phrase))
        return self._nodes[node_id] if node_id is not None else None

    def nodes(self, node_type: "NodeType | None" = None) -> list[AttentionNode]:
        if node_type is None:
            return list(self._nodes.values())
        return [n for n in self._nodes.values() if n.node_type == node_type]

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    def add_edge(self, source_id: str, target_id: str, edge_type: EdgeType,
                 weight: float = 1.0) -> Edge:
        """Add a typed edge; isA edges are checked for cycles.

        Correlate edges are stored in both directions (symmetric relation).
        """
        if source_id not in self._nodes or target_id not in self._nodes:
            raise OntologyError("both endpoints must exist before adding an edge")
        if source_id == target_id:
            raise OntologyError("self-loops are not allowed")
        if edge_type == EdgeType.ISA and self._reaches(target_id, source_id, EdgeType.ISA):
            raise OntologyError(
                f"isA edge {source_id}->{target_id} would create a cycle"
            )
        edge = Edge(source_id, target_id, edge_type, weight)
        self._out[source_id][(target_id, edge_type)] = edge
        self._in[target_id][(source_id, edge_type)] = edge
        if edge_type == EdgeType.CORRELATE:
            mirror = Edge(target_id, source_id, edge_type, weight)
            self._out[target_id][(source_id, edge_type)] = mirror
            self._in[source_id][(target_id, edge_type)] = mirror
        return edge

    def has_edge(self, source_id: str, target_id: str, edge_type: EdgeType) -> bool:
        return (target_id, edge_type) in self._out.get(source_id, {})

    def edges(self, edge_type: "EdgeType | None" = None) -> list[Edge]:
        """All edges (correlate pairs reported once, canonical direction)."""
        seen: set[tuple[str, str, EdgeType]] = set()
        out: list[Edge] = []
        for source, targets in self._out.items():
            for (target, etype), edge in targets.items():
                if edge_type is not None and etype != edge_type:
                    continue
                if etype == EdgeType.CORRELATE:
                    key = (min(source, target), max(source, target), etype)
                    if key in seen:
                        continue
                    seen.add(key)
                out.append(edge)
        return out

    def successors(self, node_id: str, edge_type: "EdgeType | None" = None
                   ) -> list[AttentionNode]:
        out = []
        for (target, etype) in self._out.get(node_id, {}):
            if edge_type is None or etype == edge_type:
                out.append(self._nodes[target])
        return out

    def predecessors(self, node_id: str, edge_type: "EdgeType | None" = None
                     ) -> list[AttentionNode]:
        out = []
        for (source, etype) in self._in.get(node_id, {}):
            if edge_type is None or etype == edge_type:
                out.append(self._nodes[source])
        return out

    def parents_of(self, node_id: str) -> list[AttentionNode]:
        """Nodes X with an isA edge X -> node (node is an instance of X)."""
        return self.predecessors(node_id, EdgeType.ISA)

    def instances_of(self, node_id: str) -> list[AttentionNode]:
        """Nodes Y with an isA edge node -> Y (Y is an instance of node)."""
        return self.successors(node_id, EdgeType.ISA)

    def has_path(self, start: str, goal: str,
                 edge_type: EdgeType = EdgeType.ISA) -> bool:
        """True when ``goal`` is reachable from ``start`` along edges of
        ``edge_type`` (e.g. start is an isA ancestor of goal)."""
        return self._reaches(start, goal, edge_type)

    def _reaches(self, start: str, goal: str, edge_type: EdgeType) -> bool:
        stack = [start]
        visited = {start}
        while stack:
            current = stack.pop()
            if current == goal:
                return True
            for (target, etype) in self._out.get(current, {}):
                if etype == edge_type and target not in visited:
                    visited.add(target)
                    stack.append(target)
        return False

    # ------------------------------------------------------------------
    # queries used by applications
    # ------------------------------------------------------------------
    def concepts_of_entity(self, entity_phrase: str) -> list[AttentionNode]:
        """Concepts C with isA edge C -> entity."""
        node = self.find(NodeType.ENTITY, entity_phrase)
        if node is None:
            return []
        return [p for p in self.parents_of(node.node_id)
                if p.node_type == NodeType.CONCEPT]

    def entities_of_concept(self, concept_phrase: str) -> list[AttentionNode]:
        node = self.find(NodeType.CONCEPT, concept_phrase)
        if node is None:
            return []
        return [c for c in self.instances_of(node.node_id)
                if c.node_type == NodeType.ENTITY]

    def correlated(self, node_id: str) -> list[AttentionNode]:
        return self.successors(node_id, EdgeType.CORRELATE)

    def stats(self) -> dict[str, int]:
        """Node counts per type and edge counts per type (Table 1-2 shape)."""
        out: dict[str, int] = {t.value: 0 for t in NodeType}
        for node in self._nodes.values():
            out[node.node_type.value] += 1
        for etype in EdgeType:
            out[etype.value] = len(self.edges(etype))
        return out
