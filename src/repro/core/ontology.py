"""The Attention Ontology: a DAG of user-attention phrases.

Five node types (category, concept, entity, event, topic) and three edge
types (isA, involve, correlate) as defined in paper Section 2.  isA edges
must stay acyclic (the ontology is a DAG); correlate edges are symmetric.

Since the storage/serving split (DESIGN.md), :class:`AttentionOntology` is
a thin façade over :class:`~repro.core.store.OntologyStore` — the indexed
engine holding type-partitioned node tables, the inverted token index, the
phrase/alias exact-match map and versioned deltas/snapshots.  The façade
preserves the original public API; apps and the serving layer reach the
index through :attr:`AttentionOntology.store`.
"""

from __future__ import annotations

from .store import (  # noqa: F401  (re-exported for backward compatibility)
    AttentionNode,
    Edge,
    EdgeType,
    NodeType,
    OntologyDelta,
    OntologyStore,
    StoreSnapshot,
)


class AttentionOntology:
    """Mutable attention-ontology DAG (façade over :class:`OntologyStore`)."""

    def __init__(self, store: "OntologyStore | None" = None) -> None:
        self._store = store if store is not None else OntologyStore()

    @property
    def store(self) -> OntologyStore:
        """The underlying indexed storage engine."""
        return self._store

    @property
    def version(self) -> int:
        """Monotonic mutation counter of the backing store."""
        return self._store.version

    # ------------------------------------------------------------------
    # nodes
    # ------------------------------------------------------------------
    def add_node(self, node_type: NodeType, phrase: str,
                 payload: "dict | None" = None) -> AttentionNode:
        """Add (or return the existing) node for ``phrase``/``node_type``."""
        return self._store.add_node(node_type, phrase, payload=payload)

    def add_alias(self, node_id: str, alias: str) -> None:
        self._store.add_alias(node_id, alias)

    def update_payload(self, node_id: str, payload: dict) -> None:
        """Merge payload keys into a node through the store (delta-recorded)."""
        self._store.update_payload(node_id, payload)

    def node(self, node_id: str) -> AttentionNode:
        return self._store.node(node_id)

    def find(self, node_type: NodeType, phrase: str) -> "AttentionNode | None":
        return self._store.find(node_type, phrase)

    def nodes(self, node_type: "NodeType | None" = None) -> list[AttentionNode]:
        return self._store.nodes(node_type)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._store

    def __len__(self) -> int:
        return len(self._store)

    # ------------------------------------------------------------------
    # deltas / snapshots
    # ------------------------------------------------------------------
    def begin_delta(self, stage: str = "") -> None:
        self._store.begin_delta(stage)

    def commit_delta(self) -> "OntologyDelta | None":
        return self._store.commit_delta()

    def apply_delta(self, delta: OntologyDelta) -> None:
        self._store.apply_delta(delta)

    def snapshot(self) -> StoreSnapshot:
        return self._store.snapshot()

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    def add_edge(self, source_id: str, target_id: str, edge_type: EdgeType,
                 weight: float = 1.0) -> Edge:
        """Add a typed edge; isA edges are checked for cycles.

        Correlate edges are stored in both directions (symmetric relation).
        """
        return self._store.add_edge(source_id, target_id, edge_type, weight)

    def has_edge(self, source_id: str, target_id: str, edge_type: EdgeType) -> bool:
        return self._store.has_edge(source_id, target_id, edge_type)

    def edges(self, edge_type: "EdgeType | None" = None) -> list[Edge]:
        """All edges (correlate pairs reported once, canonical direction)."""
        return self._store.edges(edge_type)

    def successors(self, node_id: str, edge_type: "EdgeType | None" = None
                   ) -> list[AttentionNode]:
        return self._store.successors(node_id, edge_type)

    def predecessors(self, node_id: str, edge_type: "EdgeType | None" = None
                     ) -> list[AttentionNode]:
        return self._store.predecessors(node_id, edge_type)

    def parents_of(self, node_id: str) -> list[AttentionNode]:
        """Nodes X with an isA edge X -> node (node is an instance of X)."""
        return self._store.predecessors(node_id, EdgeType.ISA)

    def instances_of(self, node_id: str) -> list[AttentionNode]:
        """Nodes Y with an isA edge node -> Y (Y is an instance of node)."""
        return self._store.successors(node_id, EdgeType.ISA)

    def has_path(self, start: str, goal: str,
                 edge_type: EdgeType = EdgeType.ISA) -> bool:
        """True when ``goal`` is reachable from ``start`` along edges of
        ``edge_type`` (e.g. start is an isA ancestor of goal)."""
        return self._store.has_path(start, goal, edge_type)

    # ------------------------------------------------------------------
    # queries used by applications
    # ------------------------------------------------------------------
    def concepts_of_entity(self, entity_phrase: str) -> list[AttentionNode]:
        """Concepts C with isA edge C -> entity."""
        node = self.find(NodeType.ENTITY, entity_phrase)
        if node is None:
            return []
        return [p for p in self.parents_of(node.node_id)
                if p.node_type == NodeType.CONCEPT]

    def entities_of_concept(self, concept_phrase: str) -> list[AttentionNode]:
        node = self.find(NodeType.CONCEPT, concept_phrase)
        if node is None:
            return []
        return [c for c in self.instances_of(node.node_id)
                if c.node_type == NodeType.ENTITY]

    def correlated(self, node_id: str) -> list[AttentionNode]:
        return self._store.successors(node_id, EdgeType.CORRELATE)

    def stats(self) -> dict[str, int]:
        """Node counts per type and edge counts per type (Table 1-2 shape)."""
        return self._store.stats()
