"""The end-to-end attention mining pipeline (paper Algorithm 1).

Given a click graph and a trained GCTSP-Net:

1. compute transport probabilities (Eq. 1-2) and random-walk cluster each
   seed query into a query-doc cluster;
2. build the Query-Title Interaction Graph of each cluster (Algorithm 2);
3. classify nodes with the R-GCN and order positives by ATSP-decoding;
4. normalise the phrase against previously mined attentions (merge
   near-duplicates);
5. emit one attention node per canonical phrase.

Event mining uses the same pipeline with an event-trained model; candidates
can also come from the weak-supervision generators (bootstrapping /
alignment / CoverRank) when no model is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import GiantConfig
from ..graph.click_graph import ClickGraph, QueryDocCluster
from ..graph.random_walk import RandomWalkClusterer
from ..text.dependency import DependencyParser
from ..text.tokenizer import tokenize
from .coverrank import select_event_candidate
from .features import NodeFeatureExtractor
from .gctsp import GCTSPNet, prepare_example
from .phrase import AttentionPhrase, PhraseNormalizer


@dataclass
class MinedAttention:
    """One mined attention with provenance."""

    phrase: AttentionPhrase
    cluster: QueryDocCluster
    categories: dict[str, float] = field(default_factory=dict)

    @property
    def text(self) -> str:
        return self.phrase.text


class AttentionMiner:
    """Runs Algorithm 1 over a click graph."""

    def __init__(self, graph: ClickGraph,
                 concept_model: "GCTSPNet | None" = None,
                 event_model: "GCTSPNet | None" = None,
                 extractor: "NodeFeatureExtractor | None" = None,
                 parser: "DependencyParser | None" = None,
                 config: "GiantConfig | None" = None) -> None:
        self._graph = graph
        self._concept_model = concept_model
        self._event_model = event_model
        self._extractor = extractor or NodeFeatureExtractor()
        self._parser = parser or DependencyParser()
        self._config = config or GiantConfig()
        self._clusterer = RandomWalkClusterer(graph, self._config.mining)
        self._normalizer = PhraseNormalizer(self._config.mining)

    @property
    def normalizer(self) -> PhraseNormalizer:
        return self._normalizer

    # ------------------------------------------------------------------
    def cluster(self, seed_query: str) -> QueryDocCluster:
        return self._clusterer.cluster(seed_query)

    def cluster_tokens(self, cluster: QueryDocCluster
                       ) -> tuple[list[list[str]], list[list[str]], list[float]]:
        """Tokenized queries/titles of a cluster + title click weights."""
        queries = [tokenize(q) for q in cluster.queries]
        titles = []
        weights = []
        for doc_id in cluster.doc_ids:
            title = self._graph.title(doc_id)
            if title:
                titles.append(tokenize(title))
                weights.append(cluster.doc_weights.get(doc_id, 0.0))
        return queries, titles, weights

    # ------------------------------------------------------------------
    def mine_cluster(self, cluster: QueryDocCluster, kind: str = "concept"
                     ) -> "AttentionPhrase | None":
        """Extract one attention phrase from a cluster (steps 7-12)."""
        queries, titles, weights = self.cluster_tokens(cluster)
        if not queries or not titles:
            return None

        model = self._concept_model if kind == "concept" else self._event_model
        if model is not None:
            example = prepare_example(queries, titles, self._extractor, self._parser)
            tokens = model.extract_phrase(example)
        elif kind == "event":
            cfg = self._config.mining
            tokens = select_event_candidate(
                queries, titles, weights,
                min_len=cfg.event_min_len, max_len=cfg.event_max_len,
            ) or []
        else:
            # Model-free concept fallback: query-title alignment.
            from .align import extract_aligned_candidates

            candidates = extract_aligned_candidates(queries[0], titles)
            tokens = candidates[0] if candidates else []
        if not tokens:
            return None

        support = sum(cluster.doc_weights.values()) or 1.0
        phrase = AttentionPhrase(
            tokens=list(tokens), kind=kind, context_titles=titles[:5],
            support=support,
        )
        return phrase

    def _cluster_categories(self, cluster: QueryDocCluster) -> dict[str, float]:
        """Click-count distribution over document categories (for linking)."""
        counts: dict[str, float] = {}
        total = 0.0
        for query in cluster.queries:
            for doc_id, clicks in self._graph.docs_for_query(query).items():
                category = self._graph.category(doc_id)
                if category:
                    counts[category] = counts.get(category, 0.0) + clicks
                    total += clicks
        if total > 0:
            counts = {c: v / total for c, v in counts.items()}
        return counts

    # ------------------------------------------------------------------
    def mine(self, seed_queries: "list[str] | None" = None,
             kind: str = "concept") -> list[MinedAttention]:
        """Run the full pipeline; returns canonical mined attentions.

        Near-duplicate phrases are merged by the normalizer; one
        :class:`MinedAttention` is returned per *canonical* phrase, with the
        cluster of its first extraction as provenance.
        """
        seeds = seed_queries if seed_queries is not None else self._graph.queries()
        mined: dict[int, MinedAttention] = {}
        for seed in seeds:
            cluster = self._clusterer.cluster(seed)
            phrase = self.mine_cluster(cluster, kind=kind)
            if phrase is None:
                continue
            canonical = self._normalizer.add(phrase)
            key = id(canonical)
            if key in mined:
                for cat, weight in self._cluster_categories(cluster).items():
                    existing = mined[key].categories
                    existing[cat] = max(existing.get(cat, 0.0), weight)
            else:
                mined[key] = MinedAttention(
                    phrase=canonical,
                    cluster=cluster,
                    categories=self._cluster_categories(cluster),
                )
        return list(mined.values())
