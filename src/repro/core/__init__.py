"""GIANT core: the Attention Ontology and the algorithms that build it.

This package is the paper's primary contribution:

* :mod:`repro.core.ontology` — the Attention Ontology DAG (five node types,
  three edge types, Section 2), a façade over the storage engine;
* :mod:`repro.core.store` — the indexed :class:`OntologyStore` engine:
  type-partitioned tables, inverted token index, phrase/alias map,
  versioned :class:`OntologyDelta` batches and snapshots;
* :mod:`repro.core.features` — QTIG node features (NER/POS/stopword/
  length/sequence-id embeddings, Section 3.1);
* :mod:`repro.core.gctsp` — GCTSP-Net: R-GCN node classification + ATSP
  decoding (Section 3.1);
* :mod:`repro.core.phrase` — attention phrase normalization;
* :mod:`repro.core.bootstrap` / :mod:`repro.core.align` /
  :mod:`repro.core.coverrank` — weak-supervision candidate generation;
* :mod:`repro.core.derivation` — Common Suffix Discovery and Common Pattern
  Discovery (higher-level concepts/topics);
* :mod:`repro.core.mining` — the end-to-end Algorithm 1 pipeline;
* :mod:`repro.core.linking` — edge construction (Section 3.2).
"""

from .ontology import AttentionOntology, AttentionNode, NodeType, EdgeType, Edge
from .store import OntologyStore, OntologyDelta, StoreSnapshot
from .features import NodeFeatureExtractor, FEATURE_FIELDS
from .gctsp import GCTSPNet, GraphExample, prepare_example
from .phrase import AttentionPhrase, PhraseNormalizer
from .bootstrap import PatternBootstrapper, Pattern
from .align import align_query_title, extract_aligned_candidates
from .coverrank import split_subtitles, cover_rank, select_event_candidate
from .derivation import common_suffix_discovery, common_pattern_discovery
from .mining import AttentionMiner, MinedAttention
from .serialize import (
    save_ontology,
    load_ontology,
    ontology_to_dict,
    ontology_from_dict,
    delta_to_dict,
    delta_from_dict,
    save_deltas,
    load_deltas,
)
# Imported last: zsets pulls in repro.views, which must see the already
# initialised store module above.
from .zsets import delta_to_zsets, token_rows

__all__ = [
    "delta_to_zsets",
    "token_rows",
    "AttentionOntology",
    "AttentionNode",
    "NodeType",
    "EdgeType",
    "Edge",
    "OntologyStore",
    "OntologyDelta",
    "StoreSnapshot",
    "NodeFeatureExtractor",
    "FEATURE_FIELDS",
    "GCTSPNet",
    "GraphExample",
    "prepare_example",
    "AttentionPhrase",
    "PhraseNormalizer",
    "PatternBootstrapper",
    "Pattern",
    "align_query_title",
    "extract_aligned_candidates",
    "split_subtitles",
    "cover_rank",
    "select_event_candidate",
    "common_suffix_discovery",
    "common_pattern_discovery",
    "AttentionMiner",
    "MinedAttention",
    "save_ontology",
    "load_ontology",
    "ontology_to_dict",
    "ontology_from_dict",
    "delta_to_dict",
    "delta_from_dict",
    "save_deltas",
    "load_deltas",
]
