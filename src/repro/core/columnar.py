"""Columnar segments and the packed binary value codec (DESIGN.md §10).

Snapshots and shard-read RPC responses both move canonical JSON today;
at 10-100x world sizes the per-object dict overhead dominates both the
bytes/node footprint and the serving hot path.  This module provides the
two packed representations that replace it — while the JSON form stays
the byte-identity *oracle* the tests check both against:

* **Store segments** — :func:`encode_store_segment` packs a
  :func:`~repro.core.serialize.store_to_dict` snapshot into an
  append-only immutable byte segment: one interned string pool (shared
  UTF-8 heap + struct-packed ``u32`` offsets + a German-string-style
  4-byte prefix column for short-circuit comparisons) referenced by
  struct-packed node/edge column arrays (``u32`` ref columns, ``u8``
  type columns, CSR alias lists).  The packed column block is then
  zlib-deflated when that wins (the usual columnar-store move: pack
  first so runs of small ints and shared phrase text sit together, then
  block-compress; a flags byte records raw vs deflated so tiny segments
  skip the overhead).  A fixed footer carrying the schema version, row
  counts and a blake2s checksum over the stored bytes closes the file.
  :func:`decode_store_segment` refuses anything whose magic, version or
  checksum does not line up with :class:`~repro.errors.
  SegmentIntegrityError` — a truncated file is a named error, never a
  struct unpack traceback.

* **Wire values** — :func:`encode_value` / :func:`decode_value` are a
  tagged binary codec over the same Python value domain as
  :mod:`repro.serving.rpc`'s JSON codec (None/bool/int/float/str,
  list/tuple/set/dict, registered enums and dataclasses), with packed
  fast paths for the shard read interface's bulk shapes: a posting list
  (``list[str]``) becomes one run of pool refs, ``list[AttentionNode]``
  and ``list[Edge]`` become column arrays instead of per-object maps.
  All strings in one message share a single pool, so repeated node ids
  and phrases are interned once.

Numeric fidelity: JSON distinguishes ``1`` from ``1.0`` and the oracle
is byte-level, so ints and floats carry distinct tags and segment weight
/payload cells store canonical JSON *text* (interned — repeated weights
cost one pool entry).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import struct
import zlib
from typing import Any

from ..errors import ReproError, SegmentIntegrityError
from .store import AttentionNode, Edge, EdgeType, NodeType

SEGMENT_MAGIC = b"RCSG"  # header magic of a columnar store segment
SEGMENT_FOOTER_MAGIC = b"RCSF"
SEGMENT_FORMAT_VERSION = 1
#: footer = magic(4) + u16 version + u16 pad + 3*u32 row counts + digest
_FOOTER_SIZE = 4 + 2 + 2 + 12 + 16
_DIGEST_SIZE = 16
_PREFIX_LEN = 4  # German-string short prefix bytes kept beside offsets
#: header flags byte after the version: how the column block is stored
_BODY_RAW = 0
_BODY_ZLIB = 1
_HEADER_SIZE = len(SEGMENT_MAGIC) + 2 + 1  # magic + u16 version + flags

#: Stable wire codes for the (closed) enum value sets.  Enum declaration
#: order is part of the segment format; appending new members is
#: compatible, reordering is a format version bump.
_NODE_TYPE_VALUES = [t.value for t in NodeType]
_NODE_TYPE_CODES = {value: i for i, value in enumerate(_NODE_TYPE_VALUES)}
_EDGE_TYPE_VALUES = [t.value for t in EdgeType]
_EDGE_TYPE_CODES = {value: i for i, value in enumerate(_EDGE_TYPE_VALUES)}


# ----------------------------------------------------------------------
# varints
# ----------------------------------------------------------------------
def _uvarint(value: int) -> bytes:
    """Unsigned LEB128."""
    if value < 0:
        raise ReproError(f"uvarint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _read_uvarint(data: bytes, pos: int) -> "tuple[int, int]":
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise SegmentIntegrityError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _svarint(value: int) -> bytes:
    """Zigzag-encoded signed varint (arbitrary precision)."""
    return _uvarint((value << 1) ^ (value >> (value.bit_length() + 1))
                    if value < 0 else value << 1)


def _read_svarint(data: bytes, pos: int) -> "tuple[int, int]":
    raw, pos = _read_uvarint(data, pos)
    return (raw >> 1) ^ -(raw & 1), pos


# ----------------------------------------------------------------------
# string pool
# ----------------------------------------------------------------------
class StringPool:
    """Interned strings: one shared heap, offsets, short prefixes.

    ``intern`` deduplicates; the serialized form is a contiguous UTF-8
    heap plus a struct-packed ``u32`` offset column (n+1 entries) and a
    4-byte prefix column — the German-string trick: most mismatching
    comparisons resolve on the fixed-width prefix without touching the
    heap (:meth:`scan_prefix` uses it for short-circuit matching).
    """

    def __init__(self) -> None:
        self._index: dict[str, int] = {}
        self.strings: list[str] = []

    def __len__(self) -> int:
        return len(self.strings)

    def intern(self, text: str) -> int:
        ref = self._index.get(text)
        if ref is None:
            ref = len(self.strings)
            self._index[text] = ref
            self.strings.append(text)
        return ref

    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        encoded = [text.encode("utf-8") for text in self.strings]
        offsets = [0]
        for blob in encoded:
            offsets.append(offsets[-1] + len(blob))
        prefixes = b"".join(blob[:_PREFIX_LEN].ljust(_PREFIX_LEN, b"\x00")
                            for blob in encoded)
        heap = b"".join(encoded)
        return b"".join((
            _uvarint(len(encoded)),
            struct.pack(f"<{len(offsets)}I", *offsets),
            prefixes,
            _uvarint(len(heap)),
            heap,
        ))

    @classmethod
    def decode(cls, data: bytes, pos: int) -> "tuple[StringPool, int]":
        count, pos = _read_uvarint(data, pos)
        offsets_end = pos + 4 * (count + 1)
        prefixes_end = offsets_end + _PREFIX_LEN * count
        if prefixes_end > len(data):
            raise SegmentIntegrityError("truncated string pool columns")
        offsets = struct.unpack_from(f"<{count + 1}I", data, pos)
        pool = cls.__new__(cls)
        pool._prefixes = data[offsets_end:prefixes_end]
        heap_len, pos = _read_uvarint(data, prefixes_end)
        heap_end = pos + heap_len
        if heap_end > len(data) or (count and offsets[-1] != heap_len):
            raise SegmentIntegrityError("string pool heap does not match "
                                        "its offset column")
        heap = data[pos:heap_end]
        try:
            pool.strings = [
                heap[offsets[i]:offsets[i + 1]].decode("utf-8")
                for i in range(count)
            ]
        except UnicodeDecodeError as exc:
            raise SegmentIntegrityError(
                f"string pool heap is not valid UTF-8: {exc}") from exc
        pool._index = {text: i for i, text in enumerate(pool.strings)}
        return pool, heap_end

    def scan_prefix(self, prefix: str) -> "list[int]":
        """Refs of pooled strings starting with ``prefix``, resolved
        through the fixed-width prefix column first: a full string is
        only materially compared when its 4-byte prefix already matches
        (the German-string short-circuit)."""
        needle = prefix.encode("utf-8")
        head = needle[:_PREFIX_LEN]
        prefixes = getattr(self, "_prefixes", None)
        if prefixes is None:
            prefixes = b"".join(
                text.encode("utf-8")[:_PREFIX_LEN].ljust(_PREFIX_LEN, b"\x00")
                for text in self.strings)
            self._prefixes = prefixes
        out = []
        for ref in range(len(self.strings)):
            column = prefixes[ref * _PREFIX_LEN:(ref + 1) * _PREFIX_LEN]
            if len(head) >= _PREFIX_LEN:
                if column != head[:_PREFIX_LEN]:
                    continue  # decided without touching the heap
            elif column[:len(head)] != head:
                continue
            if self.strings[ref].encode("utf-8").startswith(needle):
                out.append(ref)
        return out


def _pack_refs(refs: "list[int]") -> bytes:
    return struct.pack(f"<{len(refs)}I", *refs)


def _read_refs(data: bytes, pos: int, count: int) -> "tuple[tuple, int]":
    end = pos + 4 * count
    if end > len(data):
        raise SegmentIntegrityError("truncated u32 reference column")
    return struct.unpack_from(f"<{count}I", data, pos), end


def _read_bytes(data: bytes, pos: int, count: int) -> "tuple[bytes, int]":
    end = pos + count
    if end > len(data):
        raise SegmentIntegrityError("truncated byte column")
    return data[pos:end], end


# ----------------------------------------------------------------------
# store segments
# ----------------------------------------------------------------------
def _number_text(value: Any) -> str:
    """Canonical JSON text of one scalar cell — preserves the int/float
    distinction (``1`` vs ``1.0``) the byte-identity oracle sees."""
    return json.dumps(value)


def encode_store_segment(snapshot: dict) -> bytes:
    """Pack one :func:`~repro.core.serialize.store_to_dict` snapshot
    into an immutable columnar segment."""
    pool = StringPool()
    nodes = snapshot.get("nodes", [])
    edges = snapshot.get("edges", [])

    node_ids: list[int] = []
    node_types = bytearray()
    node_phrases: list[int] = []
    alias_starts: list[int] = [0]
    alias_refs: list[int] = []
    node_payloads: list[int] = []
    for node in nodes:
        node_ids.append(pool.intern(node["id"]))
        code = _NODE_TYPE_CODES.get(node["type"])
        if code is None:
            raise ReproError(f"unknown node type {node['type']!r}")
        node_types.append(code)
        node_phrases.append(pool.intern(node["phrase"]))
        for alias in node["aliases"]:
            alias_refs.append(pool.intern(alias))
        alias_starts.append(len(alias_refs))
        node_payloads.append(pool.intern(
            json.dumps(node["payload"], sort_keys=True,
                       separators=(",", ":"))))

    edge_sources: list[int] = []
    edge_targets: list[int] = []
    edge_types = bytearray()
    edge_weights: list[int] = []
    for edge in edges:
        edge_sources.append(pool.intern(edge["source"]))
        edge_targets.append(pool.intern(edge["target"]))
        code = _EDGE_TYPE_CODES.get(edge["type"])
        if code is None:
            raise ReproError(f"unknown edge type {edge['type']!r}")
        edge_types.append(code)
        edge_weights.append(pool.intern(_number_text(edge["weight"])))

    alias_map = snapshot.get("alias_map", {})
    alias_map_refs: list[int] = []
    for key in sorted(alias_map):
        alias_map_refs.append(pool.intern(key))
        alias_map_refs.append(pool.intern(alias_map[key]))

    ring = snapshot.get("ring")
    parts = [
        pool.encode(),
        _uvarint(snapshot["format"]),
        _uvarint(snapshot["store_version"]),
        _uvarint(snapshot["counter"]),
        b"\x01" + _uvarint(ring["epoch"]) + _uvarint(ring["num_shards"])
        + _uvarint(ring["vnodes"]) if ring is not None else b"\x00",
        _uvarint(len(alias_map)),
        _pack_refs(alias_map_refs),
        _uvarint(len(nodes)),
        _pack_refs(node_ids),
        bytes(node_types),
        _pack_refs(node_phrases),
        _pack_refs(alias_starts),
        _pack_refs(alias_refs),
        _pack_refs(node_payloads),
        _uvarint(len(edges)),
        _pack_refs(edge_sources),
        _pack_refs(edge_targets),
        bytes(edge_types),
        _pack_refs(edge_weights),
    ]
    block = b"".join(parts)
    deflated = zlib.compress(block, 6)
    if len(deflated) < len(block):
        flags, body = _BODY_ZLIB, deflated
    else:
        flags, body = _BODY_RAW, block
    head = SEGMENT_MAGIC + struct.pack("<H", SEGMENT_FORMAT_VERSION) \
        + bytes([flags])
    footer_head = SEGMENT_FOOTER_MAGIC + struct.pack(
        "<HHIII", SEGMENT_FORMAT_VERSION, 0,
        len(nodes), len(edges), len(pool))
    digest = hashlib.blake2s(head + body + footer_head,
                             digest_size=_DIGEST_SIZE).digest()
    return head + body + footer_head + digest


def check_segment(data: bytes) -> "tuple[int, int, int]":
    """Validate magic, version and checksum before any column is parsed;
    returns the footer's (node, edge, string) row counts.  Public so a
    readonly catalog open can refuse a corrupt segment without paying
    for (or trusting) a full decode."""
    if len(data) < _HEADER_SIZE + _FOOTER_SIZE:
        raise SegmentIntegrityError(
            f"segment of {len(data)} bytes is shorter than the "
            f"header and footer — truncated file")
    if data[:4] != SEGMENT_MAGIC:
        raise SegmentIntegrityError(
            f"bad segment magic {data[:4]!r} (expected {SEGMENT_MAGIC!r})")
    (version,) = struct.unpack_from("<H", data, 4)
    if version != SEGMENT_FORMAT_VERSION:
        raise SegmentIntegrityError(
            f"unsupported segment format version {version}")
    footer = data[-_FOOTER_SIZE:]
    if footer[:4] != SEGMENT_FOOTER_MAGIC:
        raise SegmentIntegrityError(
            "segment footer magic missing — truncated or overwritten tail")
    digest = footer[-_DIGEST_SIZE:]
    expected = hashlib.blake2s(data[:-_DIGEST_SIZE],
                               digest_size=_DIGEST_SIZE).digest()
    if digest != expected:
        raise SegmentIntegrityError(
            "segment checksum mismatch — refusing to load corrupt data")
    _version, _pad, n_nodes, n_edges, n_strings = struct.unpack_from(
        "<HHIII", footer, 4)
    return n_nodes, n_edges, n_strings


def decode_store_segment(data: bytes) -> dict:
    """Inverse of :func:`encode_store_segment`: the exact snapshot dict
    (``rpc.dumps`` byte-identical to what was encoded)."""
    n_nodes, n_edges, n_strings = check_segment(data)
    flags = data[_HEADER_SIZE - 1]
    block = data[_HEADER_SIZE:len(data) - _FOOTER_SIZE]
    if flags == _BODY_ZLIB:
        try:
            block = zlib.decompress(block)
        except zlib.error as exc:
            raise SegmentIntegrityError(
                f"segment column block does not inflate: {exc}") from exc
    elif flags != _BODY_RAW:
        raise SegmentIntegrityError(
            f"unknown segment body flags {flags:#04x}")
    data = block  # every column below reads the (inflated) block
    pos = 0
    pool, pos = StringPool.decode(data, pos)
    if len(pool) != n_strings:
        raise SegmentIntegrityError(
            f"string pool holds {len(pool)} entries but the footer "
            f"recorded {n_strings}")
    fmt, pos = _read_uvarint(data, pos)
    store_version, pos = _read_uvarint(data, pos)
    counter, pos = _read_uvarint(data, pos)
    ring = None
    ring_flag, pos = _read_bytes(data, pos, 1)
    if ring_flag == b"\x01":
        epoch, pos = _read_uvarint(data, pos)
        num_shards, pos = _read_uvarint(data, pos)
        vnodes, pos = _read_uvarint(data, pos)
        ring = {"epoch": epoch, "num_shards": num_shards, "vnodes": vnodes}

    alias_count, pos = _read_uvarint(data, pos)
    alias_map_refs, pos = _read_refs(data, pos, 2 * alias_count)
    alias_map = {pool.strings[alias_map_refs[2 * i]]:
                 pool.strings[alias_map_refs[2 * i + 1]]
                 for i in range(alias_count)}

    count, pos = _read_uvarint(data, pos)
    if count != n_nodes:
        raise SegmentIntegrityError(
            f"node column holds {count} rows but the footer "
            f"recorded {n_nodes}")
    node_ids, pos = _read_refs(data, pos, count)
    node_types, pos = _read_bytes(data, pos, count)
    node_phrases, pos = _read_refs(data, pos, count)
    alias_starts, pos = _read_refs(data, pos, count + 1)
    alias_refs, pos = _read_refs(data, pos, alias_starts[-1] if count else 0)
    node_payloads, pos = _read_refs(data, pos, count)
    nodes = []
    for i in range(count):
        if node_types[i] >= len(_NODE_TYPE_VALUES):
            raise SegmentIntegrityError(
                f"unknown node type code {node_types[i]}")
        nodes.append({
            "id": pool.strings[node_ids[i]],
            "type": _NODE_TYPE_VALUES[node_types[i]],
            "phrase": pool.strings[node_phrases[i]],
            "aliases": [pool.strings[ref] for ref in
                        alias_refs[alias_starts[i]:alias_starts[i + 1]]],
            "payload": json.loads(pool.strings[node_payloads[i]]),
        })

    count, pos = _read_uvarint(data, pos)
    if count != n_edges:
        raise SegmentIntegrityError(
            f"edge column holds {count} rows but the footer "
            f"recorded {n_edges}")
    edge_sources, pos = _read_refs(data, pos, count)
    edge_targets, pos = _read_refs(data, pos, count)
    edge_types, pos = _read_bytes(data, pos, count)
    edge_weights, pos = _read_refs(data, pos, count)
    edges = []
    for i in range(count):
        if edge_types[i] >= len(_EDGE_TYPE_VALUES):
            raise SegmentIntegrityError(
                f"unknown edge type code {edge_types[i]}")
        edges.append({
            "source": pool.strings[edge_sources[i]],
            "target": pool.strings[edge_targets[i]],
            "type": _EDGE_TYPE_VALUES[edge_types[i]],
            "weight": json.loads(pool.strings[edge_weights[i]]),
        })

    if pos != len(data):
        raise SegmentIntegrityError(
            f"{len(data) - pos} trailing bytes after the edge columns")

    out = {"format": fmt, "store_version": store_version,
           "counter": counter, "alias_map": alias_map,
           "nodes": nodes, "edges": edges}
    if ring is not None:
        out["ring"] = ring
    return out


# ----------------------------------------------------------------------
# wire value codec
# ----------------------------------------------------------------------
_T_NONE = 0
_T_FALSE = 1
_T_TRUE = 2
_T_INT = 3
_T_FLOAT = 4
_T_STR = 5
_T_LIST = 6
_T_TUPLE = 7
_T_SET = 8
_T_DICT = 9
_T_ENUM = 10
_T_DATACLASS = 11
_T_STR_LIST = 12  # posting list: one packed run of pool refs
_T_NODE_COLUMNS = 13  # list[AttentionNode] as column arrays
_T_EDGE_COLUMNS = 14  # list[Edge] as column arrays


def _encode_value(obj: Any, pool: StringPool, out: bytearray,
                  dataclasses_by_name: dict, enums_by_name: dict) -> None:
    if obj is None:
        out.append(_T_NONE)
    elif obj is False:
        out.append(_T_FALSE)
    elif obj is True:
        out.append(_T_TRUE)
    elif isinstance(obj, int):
        out.append(_T_INT)
        out += _svarint(obj)
    elif isinstance(obj, float):
        out.append(_T_FLOAT)
        out += struct.pack("<d", obj)
    elif isinstance(obj, str):
        out.append(_T_STR)
        out += _uvarint(pool.intern(obj))
    elif isinstance(obj, list):
        if obj and all(type(item) is str for item in obj):
            out.append(_T_STR_LIST)
            out += _uvarint(len(obj))
            for item in obj:
                out += _uvarint(pool.intern(item))
        elif obj and all(type(item) is AttentionNode for item in obj):
            _encode_node_columns(obj, pool, out,
                                 dataclasses_by_name, enums_by_name)
        elif obj and all(type(item) is Edge
                         and type(item.weight) is float for item in obj):
            _encode_edge_columns(obj, pool, out)
        else:
            out.append(_T_LIST)
            out += _uvarint(len(obj))
            for item in obj:
                _encode_value(item, pool, out,
                              dataclasses_by_name, enums_by_name)
    elif isinstance(obj, tuple):
        out.append(_T_TUPLE)
        out += _uvarint(len(obj))
        for item in obj:
            _encode_value(item, pool, out, dataclasses_by_name, enums_by_name)
    elif isinstance(obj, (set, frozenset)):
        # The JSON codec orders set elements by canonical JSON text;
        # binary reuses that rule so both wires are deterministic and
        # produce identically-ordered decoded iteration where it leaks
        # (sets compare order-blind, so equality is unaffected).
        items = []
        for item in obj:
            cell = bytearray()
            _encode_value(item, pool, cell,
                          dataclasses_by_name, enums_by_name)
            items.append(bytes(cell))
        items.sort()
        out.append(_T_SET)
        out += _uvarint(len(items))
        for cell in items:
            out += cell
    elif isinstance(obj, enum.Enum):
        name = type(obj).__name__
        if name not in enums_by_name:
            raise ReproError(f"cannot encode enum {name}")
        out.append(_T_ENUM)
        out += _uvarint(pool.intern(name))
        _encode_value(obj.value, pool, out, dataclasses_by_name,
                      enums_by_name)
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        name = type(obj).__name__
        if name not in dataclasses_by_name:
            raise ReproError(f"cannot encode dataclass {name}")
        fields = dataclasses.fields(obj)
        out.append(_T_DATACLASS)
        out += _uvarint(pool.intern(name))
        out += _uvarint(len(fields))
        for field in fields:
            _encode_value(getattr(obj, field.name), pool, out,
                          dataclasses_by_name, enums_by_name)
    elif isinstance(obj, dict):
        out.append(_T_DICT)
        out += _uvarint(len(obj))
        for key, value in obj.items():
            if not isinstance(key, str):
                raise ReproError(f"cannot encode dict key {key!r}")
            out += _uvarint(pool.intern(key))
            _encode_value(value, pool, out, dataclasses_by_name,
                          enums_by_name)
    else:
        raise ReproError(f"cannot encode {type(obj).__name__} for RPC")


def _encode_node_columns(nodes: "list[AttentionNode]", pool: StringPool,
                         out: bytearray, dataclasses_by_name: dict,
                         enums_by_name: dict) -> None:
    out.append(_T_NODE_COLUMNS)
    out += _uvarint(len(nodes))
    for node in nodes:  # id column
        out += _uvarint(pool.intern(node.node_id))
    for node in nodes:  # type column
        out.append(_NODE_TYPE_CODES[node.node_type.value])
    for node in nodes:  # phrase column
        out += _uvarint(pool.intern(node.phrase))
    for node in nodes:  # alias CSR (sorted: alias sets compare blind)
        aliases = sorted(node.aliases)
        out += _uvarint(len(aliases))
        for alias in aliases:
            out += _uvarint(pool.intern(alias))
    for node in nodes:  # payload column (arbitrary dicts; recurse)
        _encode_value(node.payload, pool, out, dataclasses_by_name,
                      enums_by_name)


def _encode_edge_columns(edges: "list[Edge]", pool: StringPool,
                         out: bytearray) -> None:
    out.append(_T_EDGE_COLUMNS)
    out += _uvarint(len(edges))
    for edge in edges:
        out += _uvarint(pool.intern(edge.source))
    for edge in edges:
        out += _uvarint(pool.intern(edge.target))
    for edge in edges:
        out.append(_EDGE_TYPE_CODES[edge.edge_type.value])
    # Weight column: one packed f64 run.  The fast path is only entered
    # when every weight is a float — an int weight would not survive the
    # oracle's 1-vs-1.0 distinction through f64, so such lists take the
    # generic per-dataclass encoding instead.
    out.append(1)
    out += struct.pack(f"<{len(edges)}d", *(edge.weight for edge in edges))


def _decode_value(data: bytes, pos: int, pool: StringPool,
                  dataclasses_by_name: dict, enums_by_name: dict
                  ) -> "tuple[Any, int]":
    if pos >= len(data):
        raise SegmentIntegrityError("truncated binary value")
    tag = data[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_INT:
        return _read_svarint(data, pos)
    if tag == _T_FLOAT:
        if pos + 8 > len(data):
            raise SegmentIntegrityError("truncated float value")
        return struct.unpack_from("<d", data, pos)[0], pos + 8
    if tag == _T_STR:
        ref, pos = _read_uvarint(data, pos)
        return pool.strings[ref], pos
    if tag == _T_STR_LIST:
        count, pos = _read_uvarint(data, pos)
        out = []
        for _ in range(count):
            ref, pos = _read_uvarint(data, pos)
            out.append(pool.strings[ref])
        return out, pos
    if tag in (_T_LIST, _T_TUPLE, _T_SET):
        count, pos = _read_uvarint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_value(data, pos, pool,
                                      dataclasses_by_name, enums_by_name)
            items.append(item)
        if tag == _T_TUPLE:
            return tuple(items), pos
        if tag == _T_SET:
            return set(items), pos
        return items, pos
    if tag == _T_DICT:
        count, pos = _read_uvarint(data, pos)
        out = {}
        for _ in range(count):
            ref, pos = _read_uvarint(data, pos)
            value, pos = _decode_value(data, pos, pool,
                                       dataclasses_by_name, enums_by_name)
            out[pool.strings[ref]] = value
        return out, pos
    if tag == _T_ENUM:
        ref, pos = _read_uvarint(data, pos)
        value, pos = _decode_value(data, pos, pool,
                                   dataclasses_by_name, enums_by_name)
        return enums_by_name[pool.strings[ref]](value), pos
    if tag == _T_DATACLASS:
        ref, pos = _read_uvarint(data, pos)
        cls = dataclasses_by_name[pool.strings[ref]]
        count, pos = _read_uvarint(data, pos)
        fields = dataclasses.fields(cls)
        if count != len(fields):
            raise SegmentIntegrityError(
                f"dataclass {cls.__name__} field count mismatch")
        values = []
        for _ in range(count):
            value, pos = _decode_value(data, pos, pool,
                                       dataclasses_by_name, enums_by_name)
            values.append(value)
        return cls(**{field.name: value
                      for field, value in zip(fields, values)}), pos
    if tag == _T_NODE_COLUMNS:
        return _decode_node_columns(data, pos, pool,
                                    dataclasses_by_name, enums_by_name)
    if tag == _T_EDGE_COLUMNS:
        return _decode_edge_columns(data, pos, pool)
    raise SegmentIntegrityError(f"unknown binary value tag {tag}")


def _decode_node_columns(data: bytes, pos: int, pool: StringPool,
                         dataclasses_by_name: dict, enums_by_name: dict
                         ) -> "tuple[list[AttentionNode], int]":
    count, pos = _read_uvarint(data, pos)
    ids = []
    for _ in range(count):
        ref, pos = _read_uvarint(data, pos)
        ids.append(pool.strings[ref])
    types, pos = _read_bytes(data, pos, count)
    phrases = []
    for _ in range(count):
        ref, pos = _read_uvarint(data, pos)
        phrases.append(pool.strings[ref])
    aliases = []
    for _ in range(count):
        n_aliases, pos = _read_uvarint(data, pos)
        row = set()
        for _ in range(n_aliases):
            ref, pos = _read_uvarint(data, pos)
            row.add(pool.strings[ref])
        aliases.append(row)
    nodes = []
    for i in range(count):
        if types[i] >= len(_NODE_TYPE_VALUES):
            raise SegmentIntegrityError(
                f"unknown node type code {types[i]}")
        payload, pos = _decode_value(data, pos, pool,
                                     dataclasses_by_name, enums_by_name)
        nodes.append(AttentionNode(
            ids[i], NodeType(_NODE_TYPE_VALUES[types[i]]), phrases[i],
            aliases=aliases[i], payload=payload))
    return nodes, pos


def _decode_edge_columns(data: bytes, pos: int, pool: StringPool
                         ) -> "tuple[list[Edge], int]":
    count, pos = _read_uvarint(data, pos)
    sources = []
    for _ in range(count):
        ref, pos = _read_uvarint(data, pos)
        sources.append(pool.strings[ref])
    targets = []
    for _ in range(count):
        ref, pos = _read_uvarint(data, pos)
        targets.append(pool.strings[ref])
    types, pos = _read_bytes(data, pos, count)
    flag, pos = _read_bytes(data, pos, 1)
    if flag != b"\x01":
        raise SegmentIntegrityError("unknown edge weight column layout")
    end = pos + 8 * count
    if end > len(data):
        raise SegmentIntegrityError("truncated edge weight column")
    weights = struct.unpack_from(f"<{count}d", data, pos)
    pos = end
    edges = []
    for i in range(count):
        if types[i] >= len(_EDGE_TYPE_VALUES):
            raise SegmentIntegrityError(
                f"unknown edge type code {types[i]}")
        edges.append(Edge(sources[i], targets[i],
                          EdgeType(_EDGE_TYPE_VALUES[types[i]]), weights[i]))
    return edges, pos


def encode_message(obj: Any, dataclasses_by_name: dict,
                   enums_by_name: dict) -> bytes:
    """One self-contained binary message: string pool, then the value."""
    pool = StringPool()
    value = bytearray()
    _encode_value(obj, pool, value, dataclasses_by_name, enums_by_name)
    return pool.encode() + bytes(value)


def decode_message(data: bytes, dataclasses_by_name: dict,
                   enums_by_name: dict) -> Any:
    """Inverse of :func:`encode_message`."""
    pool, pos = StringPool.decode(data, 0)
    value, pos = _decode_value(data, pos, pool,
                               dataclasses_by_name, enums_by_name)
    if pos != len(data):
        raise SegmentIntegrityError(
            f"{len(data) - pos} trailing bytes after binary value")
    return value
