"""Attention phrases and normalization.

The same user attention is often expressed by slightly different phrases
("fuel efficient cars" / "top fuel efficient cars").  After extraction the
paper merges a new phrase into an existing node when (i) their non-stop
words are the same or synonyms and (ii) the TF-IDF similarity of their
*context-enriched representations* (phrase + top-5 clicked titles) exceeds
a threshold ``delta_m`` (Section 3.1, "Attention Phrase Normalization").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import MiningConfig
from ..text.embeddings import WordEmbeddings
from ..text.stopwords import content_words
from ..text.vectorizer import TfidfVectorizer


@dataclass
class AttentionPhrase:
    """A mined phrase with its supporting context."""

    tokens: list[str]
    kind: str = "concept"  # concept | event | topic
    context_titles: list[list[str]] = field(default_factory=list)
    support: float = 1.0  # aggregate click support
    aliases: list[str] = field(default_factory=list)

    @property
    def text(self) -> str:
        return " ".join(self.tokens)

    def context_tokens(self) -> list[str]:
        """Context-enriched representation: phrase + top clicked titles."""
        out = list(self.tokens)
        for title in self.context_titles[:5]:
            out.extend(title)
        return out


class PhraseNormalizer:
    """Merges near-duplicate phrases into canonical attention phrases."""

    def __init__(self, config: "MiningConfig | None" = None,
                 embeddings: "WordEmbeddings | None" = None,
                 synonym_threshold: float = 0.8) -> None:
        self._config = config or MiningConfig()
        self._embeddings = embeddings
        self._synonym_threshold = synonym_threshold
        self._vectorizer = TfidfVectorizer()
        self._phrases: list[AttentionPhrase] = []

    @property
    def phrases(self) -> list[AttentionPhrase]:
        return list(self._phrases)

    def __len__(self) -> int:
        return len(self._phrases)

    # ------------------------------------------------------------------
    def _words_match(self, a: str, b: str) -> bool:
        if a == b:
            return True
        if self._embeddings is not None:
            return self._embeddings.similarity(a, b) >= self._synonym_threshold
        return False

    def _content_similar(self, new: AttentionPhrase, old: AttentionPhrase) -> bool:
        """Criterion (i): non-stop words same or synonyms (set-wise)."""
        words_new = content_words(new.tokens)
        words_old = content_words(old.tokens)
        if not words_new or not words_old:
            return False
        matched_new = sum(
            1 for wn in words_new if any(self._words_match(wn, wo) for wo in words_old)
        )
        matched_old = sum(
            1 for wo in words_old if any(self._words_match(wo, wn) for wn in words_new)
        )
        return matched_new == len(words_new) and matched_old == len(words_old)

    def _context_similar(self, new: AttentionPhrase, old: AttentionPhrase) -> bool:
        """Criterion (ii): TF-IDF similarity of context reps above delta_m."""
        sim = self._vectorizer.similarity(new.context_tokens(), old.context_tokens())
        return sim >= self._config.merge_threshold

    def find_match(self, phrase: AttentionPhrase) -> "AttentionPhrase | None":
        """The existing phrase ``phrase`` should merge into, if any."""
        for old in self._phrases:
            if old.kind != phrase.kind:
                continue
            if self._content_similar(phrase, old) and self._context_similar(phrase, old):
                return old
        return None

    def add(self, phrase: AttentionPhrase) -> AttentionPhrase:
        """Merge ``phrase`` into an existing entry or append it.

        Returns the canonical phrase object (the merge target or the phrase
        itself).
        """
        if not phrase.tokens:
            return phrase
        self._vectorizer.partial_fit(phrase.context_tokens())
        match = self.find_match(phrase)
        if match is None:
            self._phrases.append(phrase)
            return phrase
        if phrase.text != match.text and phrase.text not in match.aliases:
            match.aliases.append(phrase.text)
        match.support += phrase.support
        # Keep the shorter phrase as canonical (the paper keeps the most
        # general form; the longer variants usually add modifiers).
        if len(phrase.tokens) < len(match.tokens):
            match.aliases.append(match.text)
            match.tokens = list(phrase.tokens)
            if phrase.text in match.aliases:
                match.aliases.remove(phrase.text)
        match.context_titles.extend(phrase.context_titles)
        return match

    def add_all(self, phrases: "list[AttentionPhrase]") -> list[AttentionPhrase]:
        """Normalise a batch; returns canonical phrases in insertion order."""
        return [self.add(p) for p in phrases]
