"""Indexed storage engine behind the Attention Ontology.

The production GIANT system keeps the ontology in MySQL behind Tars RPC
services and serves millions of tagging/interpretation requests against it.
This module is the reproduction's equivalent storage layer, split out from
the :class:`~repro.core.ontology.AttentionOntology` façade so storage and
serving can evolve independently (see DESIGN.md):

* **type-partitioned node tables** — one id->node table per
  :class:`NodeType`, so per-type scans never touch other partitions;
* **inverted token index** — phrase token -> node ids, the candidate
  generator behind serving-time tagging and query interpretation (replaces
  the seed's O(all-nodes) scans);
* **phrase/alias exact-match map** — lower-cased ``type::phrase`` -> id,
  covering canonical phrases and merged aliases;
* **versioned snapshots and deltas** — every mutation bumps ``version``;
  mutations can be recorded into :class:`OntologyDelta` batches that a
  serving process replays to refresh its store incrementally (in the
  spirit of answering-queries-under-updates incremental view maintenance).
"""

from __future__ import annotations

import copy
import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from ..errors import DeltaGapError, OntologyError
from ..text.tokenizer import tokenize


def creation_order(node_id: str) -> "tuple[int, str]":
    """Sort key restoring store creation order — ids embed the global
    counter (``con_000042``); ids without a numeric suffix sort after,
    by string.  Shared by serialization and the cluster's merge rules so
    the ordering convention lives next to the id format."""
    try:
        return (int(node_id.rsplit("_", 1)[1]), node_id)
    except (IndexError, ValueError):
        return (1 << 62, node_id)


class NodeType(enum.Enum):
    CATEGORY = "category"
    CONCEPT = "concept"
    ENTITY = "entity"
    EVENT = "event"
    TOPIC = "topic"


class EdgeType(enum.Enum):
    ISA = "isA"
    INVOLVE = "involve"
    CORRELATE = "correlate"


@dataclass
class AttentionNode:
    """One ontology node.

    Attributes:
        node_id: unique id, assigned by the store.
        node_type: one of the five attention types.
        phrase: canonical surface phrase.
        aliases: merged near-duplicate phrases (attention normalization).
        payload: free-form attributes — events store trigger/time/location,
            concepts may store member hints, etc.
    """

    node_id: str
    node_type: NodeType
    phrase: str
    aliases: set[str] = field(default_factory=set)
    payload: dict = field(default_factory=dict)

    @property
    def tokens(self) -> list[str]:
        return tokenize(self.phrase)


@dataclass(frozen=True)
class Edge:
    """A typed directed edge source -> target."""

    source: str
    target: str
    edge_type: EdgeType
    weight: float = 1.0


@dataclass
class OntologyDelta:
    """One ordered batch of ontology mutations.

    Each pipeline stage commits one delta; replaying the same deltas, in
    order, against a fresh :class:`OntologyStore` reproduces the store
    exactly (node ids are assigned deterministically from creation order).
    ``ops`` entries are JSON-ready dicts with an ``op`` discriminator:

    * ``{"op": "node", "type", "phrase", "payload", "node_id"}`` —
      create-or-merge; ``node_id`` pins the id the recording store
      assigned, so a replay on any store (a shard, a replica whose
      counter has diverged) addresses the same node — older deltas
      without it fall back to counter-assigned ids;
    * ``{"op": "alias", "node_id", "alias"}`` — attach an alias;
    * ``{"op": "edge", "source", "target", "type", "weight"}``;
    * ``{"op": "payload", "node_id", "payload"}`` — merge payload keys;
    * ``{"op": "ring", "epoch", "num_shards", "vnodes"}`` — a cluster
      ring-epoch flip (no content change; see
      :meth:`OntologyStore.set_ring_epoch`).  Ring records travel alone,
      one op per delta, so the flip lands on a batch boundary.
    """

    stage: str = ""
    base_version: int = 0
    version: int = 0
    ops: list[dict] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.ops)

    def __bool__(self) -> bool:
        return bool(self.ops)

    @property
    def nodes_added(self) -> int:
        return sum(1 for op in self.ops if op["op"] == "node" and op.get("created"))

    @property
    def edges_added(self) -> int:
        return sum(1 for op in self.ops if op["op"] == "edge")


@dataclass(frozen=True)
class StoreSnapshot:
    """A point-in-time marker: store version plus Table 1/2-shape stats."""

    version: int
    stats: dict


class OntologyStore:
    """Mutable, indexed attention-ontology storage.

    isA edges must stay acyclic (the ontology is a DAG); correlate edges
    are symmetric and stored in both directions.
    """

    def __init__(self) -> None:
        self._tables: dict[NodeType, dict[str, AttentionNode]] = {
            t: {} for t in NodeType
        }
        self._by_id: dict[str, AttentionNode] = {}
        self._by_phrase: dict[str, str] = {}
        self._token_index: dict[NodeType, dict[str, set[str]]] = {
            t: defaultdict(set) for t in NodeType
        }
        self._out: dict[str, dict[tuple[str, EdgeType], Edge]] = defaultdict(dict)
        self._in: dict[str, dict[tuple[str, EdgeType], Edge]] = defaultdict(dict)
        self._counter = 0
        self._version = 0
        self._ring: "dict | None" = None
        self._snapshots: list[StoreSnapshot] = []
        self._recording: "OntologyDelta | None" = None
        self._delta_depth = 0

    # ------------------------------------------------------------------
    # versioning / deltas
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic mutation counter (bumps once per effective change)."""
        return self._version

    @property
    def ring(self) -> "dict | None":
        """Consistent-hash ring metadata from the last applied ``ring``
        op (``{"epoch", "num_shards", "vnodes"}``), or ``None`` when the
        stream never recorded a ring epoch.  The store itself ignores
        the placement — it is cluster metadata riding the delta stream
        so snapshots carry the active ring to every bootstrapping
        follower (see :mod:`repro.cluster.ring`)."""
        return dict(self._ring) if self._ring is not None else None

    def set_ring_epoch(self, epoch: int, num_shards: int,
                       vnodes: int) -> dict:
        """Record a cluster ring-epoch flip in the mutation stream.

        The op changes no ontology content — it bumps the version by one
        and pins the consistent-hash ring (shard count and virtual-node
        fan-out) that owns every key from this stream position on, so
        all consumers derive the same placement at the same version.
        Returns the recorded op.
        """
        if num_shards <= 0:
            raise OntologyError("a ring epoch needs at least one shard")
        if vnodes <= 0:
            raise OntologyError("a ring epoch needs at least one vnode")
        if self._ring is not None and epoch <= self._ring["epoch"]:
            raise OntologyError(
                f"ring epoch must advance ({self._ring['epoch']} -> "
                f"{epoch})")
        op = {"op": "ring", "epoch": int(epoch),
              "num_shards": int(num_shards), "vnodes": int(vnodes)}
        self._ring = {"epoch": op["epoch"], "num_shards": op["num_shards"],
                      "vnodes": op["vnodes"]}
        self._record(op)
        return op

    def snapshot(self) -> StoreSnapshot:
        """Record and return a version-stamped stats snapshot."""
        snap = StoreSnapshot(self._version, self.stats())
        self._snapshots.append(snap)
        return snap

    def snapshots(self) -> list[StoreSnapshot]:
        return list(self._snapshots)

    def begin_delta(self, stage: str = "") -> None:
        """Start recording mutations into a delta (nesting-safe)."""
        if self._delta_depth == 0:
            self._recording = OntologyDelta(stage=stage,
                                            base_version=self._version,
                                            version=self._version)
        self._delta_depth += 1

    def commit_delta(self) -> "OntologyDelta | None":
        """Finish recording; returns the delta at the outermost commit."""
        if self._delta_depth == 0:
            raise OntologyError("commit_delta without begin_delta")
        self._delta_depth -= 1
        if self._delta_depth > 0:
            return None
        delta = self._recording
        self._recording = None
        delta.version = self._version
        return delta

    def apply_delta(self, delta: OntologyDelta) -> None:
        """Replay a recorded delta; the store must be at its base version.

        Recording bumps the version exactly once per op, so a well-formed
        delta satisfies ``base_version + len(ops) == version``; that is
        checked *before* any op is applied, rejecting truncated or
        inconsistent batches while the store is still untouched.  A delta
        whose ops themselves diverge mid-replay (corrupted content) still
        raises afterwards — the store is then partially updated and should
        be rebuilt from a snapshot plus a clean delta stream.
        """
        if self._version != delta.base_version:
            raise OntologyError(
                f"delta expects store version {delta.base_version}, "
                f"store is at {self._version}"
            )
        if delta.base_version + len(delta.ops) != delta.version:
            raise OntologyError(
                f"delta is internally inconsistent: {len(delta.ops)} ops "
                f"cannot advance version {delta.base_version} to "
                f"{delta.version} (truncated batch?)"
            )
        for op in delta.ops:
            kind = op["op"]
            if kind == "node":
                self.add_node(NodeType(op["type"]), op["phrase"],
                              payload=copy.deepcopy(op["payload"]) or None,
                              node_id=op.get("node_id"))
            elif kind == "alias":
                self.add_alias(op["node_id"], op["alias"])
            elif kind == "edge":
                self.add_edge(op["source"], op["target"],
                              EdgeType(op["type"]), weight=op["weight"])
            elif kind == "payload":
                self.update_payload(op["node_id"], copy.deepcopy(op["payload"]))
            elif kind == "ring":
                self.set_ring_epoch(op["epoch"], op["num_shards"],
                                    op["vnodes"])
            else:
                raise OntologyError(f"unknown delta op {kind!r}")
        if self._version != delta.version:
            raise OntologyError(
                f"delta replay ended at version {self._version}, "
                f"expected {delta.version}"
            )

    def _record(self, op: dict) -> None:
        self._version += 1
        if self._recording is not None:
            self._recording.ops.append(op)

    # ------------------------------------------------------------------
    # compaction / bootstrap
    # ------------------------------------------------------------------
    def compact(self) -> dict:
        """Fold the store's state into a full snapshot dump (a JSON-ready
        dict preserving node ids, version and id counter).

        Long delta histories replay linearly; compaction lets a cold
        replica bootstrap from ``snapshot + tail deltas`` instead — see
        :meth:`bootstrap` and :func:`repro.core.serialize.store_to_dict`.
        """
        from .serialize import store_to_dict  # local: avoids import cycle

        return store_to_dict(self)

    @classmethod
    def bootstrap(cls, snapshot: "dict | None" = None,
                  deltas: "Iterable[OntologyDelta] | None" = None
                  ) -> "OntologyStore":
        """Cold-start a store from a :meth:`compact` snapshot plus tail
        deltas.

        Deltas *fully* at or behind the snapshot's version are skipped
        (the tail may overlap the compacted prefix under at-least-once
        delivery); the result is identical to replaying the full delta
        stream.  A batch that *straddles* the store's version — its base
        predates the snapshot but its end is ahead — can be neither
        skipped nor replayed (part of it is already folded in), so it
        raises :class:`~repro.errors.DeltaGapError` naming the
        overlapping range before any op is applied.
        """
        from .serialize import store_from_dict  # local: avoids import cycle

        store = store_from_dict(snapshot) if snapshot is not None else cls()
        for delta in deltas or ():
            if DeltaGapError.check("bootstrap", store.version, delta):
                store.apply_delta(delta)
        return store

    # ------------------------------------------------------------------
    # nodes
    # ------------------------------------------------------------------
    def add_node(self, node_type: NodeType, phrase: str,
                 payload: "dict | None" = None,
                 node_id: "str | None" = None) -> AttentionNode:
        """Add (or return the existing) node for ``phrase``/``node_type``.

        ``node_id`` pins an explicit id (shard-aware delta addressing): a
        replayed op carries the id the recording store assigned, so every
        replica — including hash-partitioned shards that only see a
        subset of the stream — agrees on global node ids.  The counter is
        advanced past any explicit id so later auto-assigned ids never
        collide.
        """
        key = self._phrase_key(node_type, phrase)
        existing_id = self._by_phrase.get(key)
        if existing_id is not None:
            node = self._by_id[existing_id]
            if node_id is not None and node_id != existing_id:
                raise OntologyError(
                    f"node {phrase!r} already exists as {existing_id}, "
                    f"cannot re-create it as {node_id}"
                )
            if payload:
                node.payload.update(payload)
                self._record({"op": "node", "type": node_type.value,
                              "phrase": phrase,
                              "payload": copy.deepcopy(payload),
                              "node_id": existing_id,
                              "created": False})
            return node
        if node_id is None:
            self._counter += 1
            node_id = f"{node_type.value[:3]}_{self._counter:06d}"
        else:
            if node_id in self._by_id:
                raise OntologyError(f"node id {node_id!r} is already taken")
            try:
                self._counter = max(self._counter,
                                    int(node_id.rsplit("_", 1)[1]))
            except (IndexError, ValueError):
                pass
        node = AttentionNode(node_id, node_type, phrase, payload=dict(payload or {}))
        self._tables[node_type][node_id] = node
        self._by_id[node_id] = node
        self._by_phrase[key] = node_id
        index = self._token_index[node_type]
        for token in set(node.tokens):
            index[token].add(node_id)
        self._record({"op": "node", "type": node_type.value, "phrase": phrase,
                      "payload": copy.deepcopy(payload or {}),
                      "node_id": node_id, "created": True})
        return node

    @staticmethod
    def _phrase_key(node_type: NodeType, phrase: str) -> str:
        return f"{node_type.value}::{phrase.lower()}"

    def add_alias(self, node_id: str, alias: str) -> None:
        node = self.node(node_id)
        if alias in node.aliases:
            return
        node.aliases.add(alias)
        self._by_phrase.setdefault(self._phrase_key(node.node_type, alias), node_id)
        self._record({"op": "alias", "node_id": node_id, "alias": alias})

    def update_payload(self, node_id: str, payload: dict) -> None:
        """Merge ``payload`` keys into a node (recorded in deltas)."""
        node = self.node(node_id)
        if not payload:
            return
        node.payload.update(payload)
        self._record({"op": "payload", "node_id": node_id,
                      "payload": copy.deepcopy(payload)})

    def node(self, node_id: str) -> AttentionNode:
        try:
            return self._by_id[node_id]
        except KeyError:
            raise OntologyError(f"unknown node {node_id!r}") from None

    def find(self, node_type: NodeType, phrase: str) -> "AttentionNode | None":
        node_id = self._by_phrase.get(self._phrase_key(node_type, phrase))
        return self._by_id[node_id] if node_id is not None else None

    def nodes(self, node_type: "NodeType | None" = None) -> list[AttentionNode]:
        if node_type is None:
            return list(self._by_id.values())
        return list(self._tables[node_type].values())

    def count(self, node_type: "NodeType | None" = None) -> int:
        """Node count, O(1) per partition."""
        if node_type is None:
            return len(self._by_id)
        return len(self._tables[node_type])

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._by_id

    def __len__(self) -> int:
        return len(self._by_id)

    # ------------------------------------------------------------------
    # inverted-index candidate generation
    # ------------------------------------------------------------------
    def nodes_with_token(self, token: str, node_type: NodeType
                         ) -> list[AttentionNode]:
        """Nodes of ``node_type`` whose canonical phrase contains ``token``."""
        index = self._token_index[node_type]
        ids = index.get(token)
        if not ids:
            return []
        table = self._tables[node_type]
        return [table[node_id] for node_id in sorted(ids)]

    def candidates(self, tokens: "list[str] | set[str]", node_type: NodeType
                   ) -> list[AttentionNode]:
        """Nodes of ``node_type`` sharing at least one phrase token with
        ``tokens`` — the serving-time candidate set (any phrase whose LCS
        overlap with ``tokens`` is non-zero is in it)."""
        index = self._token_index[node_type]
        ids: set[str] = set()
        for token in set(tokens):
            hit = index.get(token)
            if hit:
                ids.update(hit)
        table = self._tables[node_type]
        return [table[node_id] for node_id in sorted(ids)]

    def contained_phrases(self, tokens: list[str], node_type: NodeType
                          ) -> list[AttentionNode]:
        """Nodes whose phrase occurs as a contiguous token subsequence of
        ``tokens``, via the inverted index (no full partition scan)."""
        out: list[AttentionNode] = []
        for node in self.candidates(tokens, node_type):
            ptoks = node.tokens
            if not ptoks or len(ptoks) > len(tokens):
                continue
            k = len(ptoks)
            if any(tokens[i:i + k] == ptoks
                   for i in range(len(tokens) - k + 1)):
                out.append(node)
        return out

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    def add_edge(self, source_id: str, target_id: str, edge_type: EdgeType,
                 weight: float = 1.0) -> Edge:
        """Add a typed edge; isA edges are checked for cycles.

        Correlate edges are stored in both directions (symmetric relation).
        """
        if source_id not in self._by_id or target_id not in self._by_id:
            raise OntologyError("both endpoints must exist before adding an edge")
        if source_id == target_id:
            raise OntologyError("self-loops are not allowed")
        if edge_type == EdgeType.ISA and self._reaches(target_id, source_id, EdgeType.ISA):
            raise OntologyError(
                f"isA edge {source_id}->{target_id} would create a cycle"
            )
        edge = Edge(source_id, target_id, edge_type, weight)
        self._out[source_id][(target_id, edge_type)] = edge
        self._in[target_id][(source_id, edge_type)] = edge
        if edge_type == EdgeType.CORRELATE:
            mirror = Edge(target_id, source_id, edge_type, weight)
            self._out[target_id][(source_id, edge_type)] = mirror
            self._in[source_id][(target_id, edge_type)] = mirror
        self._record({"op": "edge", "source": source_id, "target": target_id,
                      "type": edge_type.value, "weight": weight})
        return edge

    def has_edge(self, source_id: str, target_id: str, edge_type: EdgeType) -> bool:
        return (target_id, edge_type) in self._out.get(source_id, {})

    def edges(self, edge_type: "EdgeType | None" = None) -> list[Edge]:
        """All edges (correlate pairs reported once, canonical direction)."""
        seen: set[tuple[str, str, EdgeType]] = set()
        out: list[Edge] = []
        for source, targets in self._out.items():
            for (target, etype), edge in targets.items():
                if edge_type is not None and etype != edge_type:
                    continue
                if etype == EdgeType.CORRELATE:
                    key = (min(source, target), max(source, target), etype)
                    if key in seen:
                        continue
                    seen.add(key)
                out.append(edge)
        return out

    def out_edges(self, node_id: str) -> list[Edge]:
        """Outgoing edges of ``node_id`` in insertion order (correlate
        mirrors included) — the edge-level twin of :meth:`successors`,
        used by the cluster tier to preserve traversal order across
        shard moves."""
        return list(self._out.get(node_id, {}).values())

    def in_edges(self, node_id: str) -> list[Edge]:
        """Incoming edges of ``node_id`` in insertion order."""
        return list(self._in.get(node_id, {}).values())

    def successors(self, node_id: str, edge_type: "EdgeType | None" = None
                   ) -> list[AttentionNode]:
        out = []
        for (target, etype) in self._out.get(node_id, {}):
            if edge_type is None or etype == edge_type:
                out.append(self._by_id[target])
        return out

    def predecessors(self, node_id: str, edge_type: "EdgeType | None" = None
                     ) -> list[AttentionNode]:
        out = []
        for (source, etype) in self._in.get(node_id, {}):
            if edge_type is None or etype == edge_type:
                out.append(self._by_id[source])
        return out

    def has_path(self, start: str, goal: str,
                 edge_type: EdgeType = EdgeType.ISA) -> bool:
        """True when ``goal`` is reachable from ``start`` along edges of
        ``edge_type`` (e.g. start is an isA ancestor of goal)."""
        return self._reaches(start, goal, edge_type)

    def _reaches(self, start: str, goal: str, edge_type: EdgeType) -> bool:
        stack = [start]
        visited = {start}
        while stack:
            current = stack.pop()
            if current == goal:
                return True
            for (target, etype) in self._out.get(current, {}):
                if etype == edge_type and target not in visited:
                    visited.add(target)
                    stack.append(target)
        return False

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Node counts per type and edge counts per type (Table 1-2 shape)."""
        out: dict[str, int] = {
            t.value: len(self._tables[t]) for t in NodeType
        }
        for etype in EdgeType:
            out[etype.value] = len(self.edges(etype))
        return out
