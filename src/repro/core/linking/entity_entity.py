"""Entity-entity correlate edges via hinge-loss embeddings.

Paper Section 3.2 ("Edges between Entities"): high-frequency co-occurring
entity pairs in queries and documents are positives, negative pairs are
sampled, and entity embeddings are trained with a hinge loss so correlated
entities end up close in Euclidean distance.  A pair is classified as
correlated when its distance falls below a threshold.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from ...config import LinkingConfig, make_rng
from ...nn.autograd import Tensor
from ...nn.functional import hinge_pair_loss
from ...nn.layers import Embedding
from ...nn.optim import Adam
from ...text.ner import NerTagger
from ...text.tokenizer import tokenize


def mine_cooccurrence_pairs(texts: "list[str] | list[list[str]]",
                            ner: NerTagger,
                            min_count: int = 2,
                            exclude_types: "frozenset[str] | set[str]" = frozenset({"LOC"}),
                            ) -> "dict[tuple[str, str], int]":
    """Count co-occurring entity pairs in queries/documents.

    Args:
        texts: raw strings or token lists (queries and document texts).
        ner: gazetteer recognizer for entity mentions.
        min_count: minimum pair frequency to keep.
        exclude_types: NER types not eligible for correlate pairing —
            locations co-occur with everything in event headlines, so they
            are excluded by default.

    Returns:
        (entity_a, entity_b) -> count with a < b lexicographically.
    """
    counts: Counter[tuple[str, str]] = Counter()
    for text in texts:
        tokens = tokenize(text) if isinstance(text, str) else list(text)
        entities = sorted({
            " ".join(tokens[s:e])
            for s, e, etype in ner.entity_spans(tokens)
            if etype not in exclude_types
        })
        for i, a in enumerate(entities):
            for b in entities[i + 1 :]:
                counts[(a, b)] += 1
    return {pair: c for pair, c in counts.items() if c >= min_count}


class EntityEmbeddingTrainer:
    """Trains correlate embeddings and thresholds distances into edges."""

    def __init__(self, entities: "list[str]",
                 config: "LinkingConfig | None" = None, seed: int = 0) -> None:
        if not entities:
            raise ValueError("entity list must be non-empty")
        self._config = config or LinkingConfig()
        self._config.validate()
        self._entities = sorted(set(entities))
        self._index = {e: i for i, e in enumerate(self._entities)}
        rng = make_rng(seed)
        self._embedding = Embedding(len(self._entities), self._config.embedding_dim,
                                    rng=rng)
        self._rng = rng

    @property
    def entities(self) -> list[str]:
        return list(self._entities)

    def _distance(self, ids_a: np.ndarray, ids_b: np.ndarray) -> Tensor:
        va = self._embedding(ids_a)
        vb = self._embedding(ids_b)
        diff = va - vb
        return (diff * diff).sum(axis=1)

    def fit(self, positive_pairs: "dict[tuple[str, str], int] | list[tuple[str, str]]",
            epochs: int = 30, lr: float = 0.05,
            negatives_per_positive: int = 2,
            pull_weight: float = 0.1) -> list[float]:
        """Train with hinge loss; returns per-epoch losses.

        ``pull_weight`` adds a small absolute attraction on positive pairs
        so correlated items end up *below* the distance threshold, not just
        margin-separated from negatives.
        """
        if isinstance(positive_pairs, dict):
            pairs = [p for p, _c in sorted(positive_pairs.items())]
        else:
            pairs = list(positive_pairs)
        pairs = [
            (a, b) for a, b in pairs if a in self._index and b in self._index
        ]
        if not pairs:
            raise ValueError("no trainable positive pairs")
        pos_set = {frozenset(p) for p in pairs}
        n = len(self._entities)
        optimizer = Adam(self._embedding.parameters(), lr=lr)
        losses: list[float] = []
        for _epoch in range(epochs):
            anchors, positives, negatives = [], [], []
            for a, b in pairs:
                for _k in range(negatives_per_positive):
                    neg = int(self._rng.integers(0, n))
                    tries = 0
                    while (frozenset((self._entities[neg], a)) in pos_set
                           or self._entities[neg] == a) and tries < 10:
                        neg = int(self._rng.integers(0, n))
                        tries += 1
                    anchors.append(self._index[a])
                    positives.append(self._index[b])
                    negatives.append(neg)
            optimizer.zero_grad()
            pos_dist = self._distance(np.asarray(anchors), np.asarray(positives))
            neg_dist = self._distance(np.asarray(anchors), np.asarray(negatives))
            loss = hinge_pair_loss(pos_dist, neg_dist, margin=self._config.hinge_margin)
            if pull_weight:
                loss = loss + pull_weight * pos_dist.mean()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        return losses

    def distance(self, entity_a: str, entity_b: str) -> float:
        """Euclidean distance between two trained entity embeddings."""
        ia = self._index.get(entity_a)
        ib = self._index.get(entity_b)
        if ia is None or ib is None:
            raise KeyError("unknown entity")
        va = self._embedding.weight.data[ia]
        vb = self._embedding.weight.data[ib]
        return float(np.linalg.norm(va - vb))

    def correlated_pairs(self, threshold: "float | None" = None
                         ) -> list[tuple[str, str, float]]:
        """All entity pairs with embedding distance below the threshold."""
        threshold = threshold if threshold is not None else self._config.correlate_distance
        weights = self._embedding.weight.data
        out: list[tuple[str, str, float]] = []
        # Pairwise distances (entity counts are modest — thousands at most).
        sq = (weights ** 2).sum(axis=1)
        d2 = sq[:, None] + sq[None, :] - 2.0 * (weights @ weights.T)
        np.fill_diagonal(d2, np.inf)
        idx_a, idx_b = np.where(d2 <= threshold ** 2)
        for i, j in zip(idx_a, idx_b):
            if i < j:
                out.append((self._entities[i], self._entities[j], float(np.sqrt(max(0.0, d2[i, j])))))
        return out
