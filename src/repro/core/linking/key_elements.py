"""Event/topic key-element recognition -> involve edges.

Paper Section 3.2 ("Edges between Attentions and Entities", events/topics):
the GCTSP-Net is re-used *without* ATSP decoding as a 4-class node
classifier (entity / trigger / location / other) over the event's
query-title interaction graph; recognised elements receive involve edges.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gctsp import GCTSPNet, GraphExample


@dataclass
class KeyElements:
    """Recognised elements of one event/topic."""

    entities: list[str]
    triggers: list[str]
    locations: list[str]

    def as_dict(self) -> dict[str, list[str]]:
        return {
            "entity": self.entities,
            "trigger": self.triggers,
            "location": self.locations,
        }


def recognize_key_elements(model: GCTSPNet, example: GraphExample) -> KeyElements:
    """Run the 4-class head and group tokens by role.

    Multi-token elements are reassembled by input order: consecutive tokens
    of the same role in the highest-weighted text form one element.
    """
    token_roles = model.predict_key_elements(example)
    graph = example.graph
    grouped: dict[str, list[str]] = {"entity": [], "trigger": [], "location": []}
    seen: set[tuple[str, str]] = set()

    for text in graph.texts:
        body = [t for t in text if t not in (graph.sos_id, graph.eos_id)]
        current_role: "str | None" = None
        current_tokens: list[str] = []
        for node in body:
            token = graph.tokens[node]
            role = token_roles.get(token)
            if role == current_role and role is not None:
                current_tokens.append(token)
                continue
            _flush(grouped, seen, current_role, current_tokens)
            current_role = role
            current_tokens = [token] if role else []
        _flush(grouped, seen, current_role, current_tokens)

    return KeyElements(
        entities=grouped["entity"],
        triggers=grouped["trigger"],
        locations=grouped["location"],
    )


def _flush(grouped: dict[str, list[str]], seen: set[tuple[str, str]],
           role: "str | None", tokens: list[str]) -> None:
    if role and tokens:
        surface = " ".join(tokens)
        if (role, surface) not in seen:
            seen.add((role, surface))
            grouped[role].append(surface)
