"""Concept-concept correlate edges — the paper's noted extension.

Section 3.2 closes with: "the same approach for correlate relationship
discovery can be applied to other type of nodes such as concepts.
Currently, we only constructed such relationships between entities."  This
module implements that extension: concepts co-occur when their member
entities overlap or their phrases co-occur in queries; embeddings are
trained with the same hinge loss; close pairs receive correlate edges.
"""

from __future__ import annotations

from collections import Counter

from ...config import LinkingConfig
from ..ontology import AttentionOntology, EdgeType, NodeType
from .entity_entity import EntityEmbeddingTrainer


def concept_cooccurrence_pairs(ontology: AttentionOntology,
                               min_shared_entities: int = 1
                               ) -> "dict[tuple[str, str], int]":
    """Concept pairs weighted by the number of shared member entities."""
    concepts = ontology.nodes(NodeType.CONCEPT)
    members: dict[str, set[str]] = {}
    for concept in concepts:
        instance_names = {
            n.phrase for n in ontology.instances_of(concept.node_id)
            if n.node_type == NodeType.ENTITY
        }
        if instance_names:
            members[concept.phrase] = instance_names

    counts: Counter[tuple[str, str]] = Counter()
    names = sorted(members)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            shared = len(members[a] & members[b])
            if shared >= min_shared_entities:
                counts[(a, b)] = shared
    return dict(counts)


def link_concept_correlations(ontology: AttentionOntology,
                              config: "LinkingConfig | None" = None,
                              epochs: int = 40, seed: int = 0) -> int:
    """Train concept correlate embeddings and add edges.

    Returns the number of correlate edges created.
    """
    config = config or LinkingConfig()
    pairs = concept_cooccurrence_pairs(ontology)
    concepts = [n.phrase for n in ontology.nodes(NodeType.CONCEPT)]
    if not pairs or len(concepts) < 3:
        return 0
    trainer = EntityEmbeddingTrainer(concepts, config, seed=seed)
    try:
        trainer.fit(pairs, epochs=epochs)
    except ValueError:
        return 0
    created = 0
    for a, b, distance in trainer.correlated_pairs():
        na = ontology.find(NodeType.CONCEPT, a)
        nb = ontology.find(NodeType.CONCEPT, b)
        if na is None or nb is None:
            continue
        if not ontology.has_edge(na.node_id, nb.node_id, EdgeType.CORRELATE):
            ontology.add_edge(na.node_id, nb.node_id, EdgeType.CORRELATE,
                              weight=1.0 / (1.0 + distance))
            created += 1
    return created
