"""Attention-attention edges (paper Section 3.2, "Edges between Attentions").

* concept -> concept isA when one concept is a (token) suffix of another;
* topic/event isA when they share a pattern and their non-overlapping
  elements are themselves isA-related, or when one phrase drops an element
  of the other ("jay chou will have a concert" isA "have a concert");
* concept -> topic involve when the concept phrase is contained in the
  topic phrase.
"""

from __future__ import annotations

from ..ontology import AttentionOntology, EdgeType, NodeType


def _is_suffix(shorter: list[str], longer: list[str]) -> bool:
    if len(shorter) >= len(longer):
        return False
    return longer[-len(shorter):] == shorter


def _is_subsequence(shorter: list[str], longer: list[str]) -> bool:
    it = iter(longer)
    return all(tok in it for tok in shorter)


def link_attention_isa(ontology: AttentionOntology) -> int:
    """Create isA edges among concepts and among events/topics.

    Returns the number of edges created.
    """
    created = 0

    # Concept suffix rule: "animated films" isA-parent of "famous animated
    # films" (source = general parent, target = specific instance).
    concepts = ontology.nodes(NodeType.CONCEPT)
    for general in concepts:
        g_tokens = general.tokens
        for specific in concepts:
            if general.node_id == specific.node_id:
                continue
            if _is_suffix(g_tokens, specific.tokens):
                if not ontology.has_edge(general.node_id, specific.node_id, EdgeType.ISA):
                    ontology.add_edge(general.node_id, specific.node_id, EdgeType.ISA)
                    created += 1

    # Topic/event rule: an event whose tokens contain all tokens of a topic
    # (in order) is an instance of that topic; also a topic that drops
    # elements of an event ("have a concert") is a parent.
    topics = ontology.nodes(NodeType.TOPIC)
    events = ontology.nodes(NodeType.EVENT)
    for topic in topics:
        t_tokens = topic.tokens
        for event in events:
            e_tokens = event.tokens
            pattern = topic.payload.get("pattern")
            child_events = topic.payload.get("events", ())
            is_child = tuple(e_tokens) in set(map(tuple, child_events))
            if is_child or _is_subsequence(t_tokens, e_tokens):
                if not ontology.has_edge(topic.node_id, event.node_id, EdgeType.ISA):
                    ontology.add_edge(topic.node_id, event.node_id, EdgeType.ISA,
                                      weight=1.0 if is_child else 0.8)
                    created += 1
            elif pattern is not None:
                # Shared pattern with isA-related slot fillers.
                slot_ok = _slot_entities_isa(ontology, topic, event)
                if slot_ok and not ontology.has_edge(topic.node_id, event.node_id,
                                                     EdgeType.ISA):
                    ontology.add_edge(topic.node_id, event.node_id, EdgeType.ISA,
                                      weight=0.6)
                    created += 1
    return created


def _slot_entities_isa(ontology: AttentionOntology, topic, event) -> bool:
    """True when topic/event differ only in isA-related slot elements."""
    pattern = tuple(topic.payload.get("pattern", ()))
    if "X" not in pattern:
        return False
    slot = pattern.index("X")
    e_tokens = event.tokens
    prefix = list(pattern[:slot])
    suffix = list(pattern[slot + 1 :])
    if len(e_tokens) <= len(prefix) + len(suffix):
        return False
    if e_tokens[: len(prefix)] != prefix:
        return False
    if suffix and e_tokens[-len(suffix):] != suffix:
        return False
    entity_tokens = e_tokens[len(prefix) : len(e_tokens) - len(suffix)]
    entity_phrase = " ".join(entity_tokens)
    entity_node = ontology.find(NodeType.ENTITY, entity_phrase)
    concept_tokens = topic.payload.get("concept")
    if entity_node is None or concept_tokens is None:
        return False
    concept_node = ontology.find(NodeType.CONCEPT, " ".join(concept_tokens))
    if concept_node is None:
        return False
    return ontology.has_edge(concept_node.node_id, entity_node.node_id, EdgeType.ISA)


def link_concept_topic_involve(ontology: AttentionOntology) -> int:
    """involve edges: topic -> concept when the concept is inside the topic.

    Paper: "we connect a concept to a topic if the concept is contained in
    the topic phrase."
    """
    created = 0
    topics = ontology.nodes(NodeType.TOPIC)
    concepts = ontology.nodes(NodeType.CONCEPT)
    for topic in topics:
        t_tokens = topic.tokens
        for concept in concepts:
            c_tokens = concept.tokens
            if not c_tokens or len(c_tokens) > len(t_tokens):
                continue
            contained = any(
                t_tokens[i : i + len(c_tokens)] == c_tokens
                for i in range(len(t_tokens) - len(c_tokens) + 1)
            )
            if contained and not ontology.has_edge(topic.node_id, concept.node_id,
                                                   EdgeType.INVOLVE):
                ontology.add_edge(topic.node_id, concept.node_id, EdgeType.INVOLVE)
                created += 1
    return created
