"""Attention linking: edge construction for the ontology (paper Section 3.2).

* :mod:`categories` — attention-category isA edges via click co-occurrence;
* :mod:`attentions` — attention-attention isA / involve edges via suffix and
  pattern rules;
* :mod:`concept_entity` — concept-entity isA classifier with automatically
  constructed training data (paper Figure 4);
* :mod:`entity_entity` — correlate edges via hinge-loss co-occurrence
  embeddings;
* :mod:`key_elements` — event/topic involve edges via GCTSP-Net 4-class
  key-element recognition.
"""

from .categories import link_attention_categories
from .attentions import link_attention_isa, link_concept_topic_involve
from .concept_entity import (
    ConceptEntityClassifier,
    ConceptEntityExample,
    build_concept_entity_dataset,
)
from .entity_entity import EntityEmbeddingTrainer, mine_cooccurrence_pairs
from .key_elements import recognize_key_elements

__all__ = [
    "link_attention_categories",
    "link_attention_isa",
    "link_concept_topic_involve",
    "ConceptEntityClassifier",
    "ConceptEntityExample",
    "build_concept_entity_dataset",
    "EntityEmbeddingTrainer",
    "mine_cooccurrence_pairs",
    "recognize_key_elements",
]
