"""Concept-entity isA classification (paper Section 3.2 + Figure 4).

Co-occurrence alone is too noisy for concept-entity edges, so the paper
trains a relationship classifier on an *automatically constructed* dataset:

* positives — (concept, entity) pairs where (i) the entity was a follow-up
  query right after the concept query in one user's session and (ii) the
  entity is mentioned in a document clicked for the concept query;
* negatives — entities of the same higher-level category inserted at random
  positions of the document.

The classifier here is the paper's GBDT option over manual features of the
pair and its click context.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ...config import make_rng
from ...nn.gbdt import GradientBoostedClassifier
from ...text.stopwords import content_words
from ...text.tokenizer import tokenize


@dataclass
class ConceptEntityExample:
    """A (concept, entity) pair with its click context."""

    concept: str
    entity: str
    doc_tokens: list[str]  # a clicked document's tokens (title+body)
    label: int  # 1 = isA holds
    session_count: int = 0  # times entity followed concept in sessions
    click_count: int = 0  # clicks from concept query onto docs naming entity


def build_concept_entity_dataset(
    sessions: "list[tuple[str, str]]",
    concept_of_query: "dict[str, str]",
    entity_names: "set[str]",
    entity_category: "dict[str, str]",
    docs_of_concept: "dict[str, list[list[str]]]",
    negatives_per_positive: int = 1,
    seed: int = 0,
) -> list[ConceptEntityExample]:
    """Construct the training set from session and click data (Figure 4).

    Args:
        sessions: consecutive (first query, follow-up query) pairs.
        concept_of_query: maps a query string to the concept it conveys.
        entity_names: known entity surface forms.
        entity_category: entity -> leaf category (for negative sampling
            "entities belonging to the same higher-level category").
        docs_of_concept: concept -> tokenized clicked documents.
        negatives_per_positive: negative examples sampled per positive.
        seed: RNG seed for negative sampling.

    Returns:
        Labeled examples.
    """
    rng = make_rng(seed)
    session_counts: dict[tuple[str, str], int] = defaultdict(int)
    for first, followup in sessions:
        concept = concept_of_query.get(first)
        if concept is None:
            continue
        entity = followup if followup in entity_names else None
        if entity is None:
            continue
        session_counts[(concept, entity)] += 1

    by_category: dict[str, list[str]] = defaultdict(list)
    for entity, category in entity_category.items():
        by_category[category].append(entity)

    examples: list[ConceptEntityExample] = []
    for (concept, entity), count in sorted(session_counts.items()):
        docs = docs_of_concept.get(concept, [])
        mentioned = [d for d in docs if _mentions(d, entity)]
        if not mentioned:
            continue
        doc = mentioned[0]
        examples.append(
            ConceptEntityExample(concept, entity, list(doc), 1,
                                 session_count=count, click_count=len(mentioned))
        )
        # Negatives: same-category entities randomly inserted into the doc.
        category = entity_category.get(entity, "")
        candidates = [e for e in by_category.get(category, []) if e != entity
                      and (concept, e) not in session_counts]
        if not candidates:
            continue
        k = min(negatives_per_positive, len(candidates))
        chosen = rng.choice(len(candidates), size=k, replace=False)
        for idx in chosen:
            negative = candidates[int(idx)]
            fake_doc = _insert_randomly(doc, tokenize(negative), rng)
            examples.append(
                ConceptEntityExample(concept, negative, fake_doc, 0,
                                     session_count=0, click_count=0)
            )
    return examples


def _mentions(doc_tokens: list[str], entity: str) -> bool:
    etoks = tokenize(entity)
    n, k = len(doc_tokens), len(etoks)
    return any(doc_tokens[i : i + k] == etoks for i in range(n - k + 1))


def _insert_randomly(doc_tokens: list[str], entity_tokens: list[str],
                     rng: np.random.Generator) -> list[str]:
    pos = int(rng.integers(0, len(doc_tokens) + 1))
    return doc_tokens[:pos] + entity_tokens + doc_tokens[pos:]


class ConceptEntityClassifier:
    """GBDT over manual features of a concept-entity pair in context."""

    def __init__(self, n_estimators: int = 25, max_depth: int = 3) -> None:
        self._model = GradientBoostedClassifier(
            n_estimators=n_estimators, max_depth=max_depth
        )
        self._fitted = False

    @staticmethod
    def features(example: ConceptEntityExample) -> np.ndarray:
        """Manual feature vector (paper: "a classifier such as GBDT based on
        manual features")."""
        concept_toks = tokenize(example.concept)
        entity_toks = tokenize(example.entity)
        doc = example.doc_tokens
        doc_set = set(doc)
        concept_content = content_words(concept_toks)
        overlap = sum(1 for t in concept_content if t in doc_set)

        # Context window stats around the entity mention.
        positions = [
            i for i in range(len(doc) - len(entity_toks) + 1)
            if doc[i : i + len(entity_toks)] == entity_toks
        ]
        first_pos = positions[0] / max(1, len(doc)) if positions else 1.0
        near_concept = 0.0
        if positions and concept_content:
            window = doc[max(0, positions[0] - 8) : positions[0] + len(entity_toks) + 8]
            near_concept = sum(1 for t in concept_content if t in window) / len(concept_content)

        return np.array([
            float(example.session_count),
            float(example.click_count),
            float(len(positions)),
            first_pos,
            near_concept,
            overlap / max(1, len(concept_content)),
            float(len(entity_toks)),
            float(len(concept_toks)),
        ])

    def fit(self, examples: "list[ConceptEntityExample]") -> "ConceptEntityClassifier":
        if not examples:
            raise ValueError("no training examples")
        x = np.stack([self.features(e) for e in examples])
        y = np.array([e.label for e in examples])
        self._model.fit(x, y)
        self._fitted = True
        return self

    def predict(self, examples: "list[ConceptEntityExample]") -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("classifier is not fitted")
        x = np.stack([self.features(e) for e in examples])
        return self._model.predict(x)

    def predict_proba(self, examples: "list[ConceptEntityExample]") -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("classifier is not fitted")
        x = np.stack([self.features(e) for e in examples])
        return self._model.predict_proba(x)
