"""Attention-category isA edges (paper Section 3.2).

For an attention phrase p used as a search query, let n_p be its clicked
documents and n_p^g those belonging to category g.  P(g|p) = n_p^g / n_p;
an isA edge p -> g is created when P(g|p) > delta_g (paper: 0.3).
"""

from __future__ import annotations

from ..ontology import AttentionOntology, EdgeType, NodeType


def category_distribution(categories: "dict[str, float]") -> "dict[str, float]":
    """Normalise a raw category click-count map to probabilities."""
    total = sum(categories.values())
    if total <= 0:
        return {}
    return {c: v / total for c, v in categories.items()}


def link_attention_categories(ontology: AttentionOntology,
                              attention_categories: "dict[str, dict[str, float]]",
                              threshold: float = 0.3) -> int:
    """Create category isA edges from per-attention category distributions.

    Args:
        ontology: the ontology (category nodes are created on demand).
        attention_categories: attention phrase -> {category: P(g|p)} (or raw
            counts, normalised here).
        threshold: delta_g.

    Returns:
        Number of edges created.
    """
    created = 0
    for phrase, distribution in attention_categories.items():
        node = None
        for node_type in (NodeType.CONCEPT, NodeType.EVENT, NodeType.TOPIC,
                          NodeType.ENTITY):
            node = ontology.find(node_type, phrase)
            if node is not None:
                break
        if node is None:
            continue
        for category, probability in category_distribution(distribution).items():
            if probability <= threshold:
                continue
            cat_node = ontology.add_node(NodeType.CATEGORY, category)
            if not ontology.has_edge(cat_node.node_id, node.node_id, EdgeType.ISA):
                ontology.add_edge(cat_node.node_id, node.node_id, EdgeType.ISA,
                                  weight=probability)
                created += 1
    return created
