"""Ontology persistence: JSON round-trip for stores and deltas.

The production system stores the ontology in MySQL behind Tars RPC
services; this module provides the equivalent durable representation for
the reproduction — a deterministic JSON document that fully reconstructs
nodes (with aliases and payloads) and edges (with types and weights) —
plus the :class:`~repro.core.store.OntologyDelta` round-trip that lets a
serving process refresh its :class:`~repro.core.store.OntologyStore`
incrementally from pipeline-emitted update batches instead of reloading a
full dump.

Two representations coexist (DESIGN.md):

* the **portable ontology dump** (:func:`ontology_to_dict`) re-assigns
  node ids on load — the seed format, fine for CLI hand-offs;
* the **store snapshot** (:func:`store_to_dict`) preserves node ids, the
  mutation ``version`` and the id counter, so tail
  :class:`~repro.core.store.OntologyDelta` batches recorded *after* the
  snapshot apply cleanly — the compaction/bootstrap format behind
  :meth:`OntologyStore.compact` and :meth:`OntologyStore.bootstrap`.

:func:`store_to_delta` additionally folds a whole store into one
synthetic bootstrap delta (explicit node ids, base version 0) — the form
the cluster's :class:`~repro.cluster.router.ShardRouter` can split across
shards when only a saved ontology, not its delta history, is available.
"""

from __future__ import annotations

import copy
import json
from typing import Any

from ..errors import OntologyError
from .ontology import AttentionOntology, EdgeType, NodeType
from .store import OntologyDelta, OntologyStore, creation_order

FORMAT_VERSION = 1
DELTA_FORMAT_VERSION = 1
STORE_FORMAT_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Coerce payload values to JSON-compatible structures."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def ontology_to_dict(ontology: AttentionOntology) -> dict:
    """Serialise an ontology to a plain dict."""
    nodes = []
    for node in ontology.nodes():
        nodes.append({
            "id": node.node_id,
            "type": node.node_type.value,
            "phrase": node.phrase,
            "aliases": sorted(node.aliases),
            "payload": _jsonable(node.payload),
        })
    nodes.sort(key=lambda n: n["id"])
    edges = [
        {
            "source": e.source,
            "target": e.target,
            "type": e.edge_type.value,
            "weight": e.weight,
        }
        for e in sorted(ontology.edges(),
                        key=lambda e: (e.source, e.target, e.edge_type.value))
    ]
    return {"version": FORMAT_VERSION, "nodes": nodes, "edges": edges}


def ontology_from_dict(data: dict) -> AttentionOntology:
    """Reconstruct an ontology from :func:`ontology_to_dict` output."""
    if data.get("version") != FORMAT_VERSION:
        raise OntologyError(f"unsupported ontology format: {data.get('version')!r}")
    ontology = AttentionOntology()
    id_map: dict[str, str] = {}
    for node_data in data["nodes"]:
        node = ontology.add_node(
            NodeType(node_data["type"]), node_data["phrase"],
            payload=node_data.get("payload") or {},
        )
        id_map[node_data["id"]] = node.node_id
        for alias in node_data.get("aliases", []):
            ontology.add_alias(node.node_id, alias)
    for edge_data in data["edges"]:
        source = id_map.get(edge_data["source"])
        target = id_map.get(edge_data["target"])
        if source is None or target is None:
            raise OntologyError("edge references unknown node id")
        etype = EdgeType(edge_data["type"])
        if not ontology.has_edge(source, target, etype):
            ontology.add_edge(source, target, etype,
                              weight=edge_data.get("weight", 1.0))
    return ontology


def delta_to_dict(delta: OntologyDelta) -> dict:
    """Serialise one update batch to a plain dict."""
    return {
        "version": DELTA_FORMAT_VERSION,
        "stage": delta.stage,
        "base_version": delta.base_version,
        "store_version": delta.version,
        "ops": [_jsonable(op) for op in delta.ops],
    }


def delta_from_dict(data: dict) -> OntologyDelta:
    """Reconstruct an update batch from :func:`delta_to_dict` output.

    Payload tuples become lists on the way through JSON (exactly as in the
    full-ontology round-trip); node/edge structure replays identically.
    """
    if data.get("version") != DELTA_FORMAT_VERSION:
        raise OntologyError(f"unsupported delta format: {data.get('version')!r}")
    return OntologyDelta(
        stage=data.get("stage", ""),
        base_version=data["base_version"],
        version=data["store_version"],
        ops=[dict(op) for op in data["ops"]],
    )


def delta_to_json_line(delta: OntologyDelta) -> str:
    """One delta as a single canonical JSON line (no trailing newline) —
    the record format of the replication log's segment files.  Canonical
    form (sorted keys, compact separators) makes the on-disk bytes
    deterministic, so identical streams produce identical segments."""
    return json.dumps(delta_to_dict(delta), sort_keys=True,
                      separators=(",", ":"))


def delta_from_json_line(line: str) -> OntologyDelta:
    """Inverse of :func:`delta_to_json_line`.

    Raises ``ValueError`` on a syntactically torn line (the replication
    log's crash recovery catches it to find the last good record) and
    :class:`~repro.errors.OntologyError` on a well-formed JSON document
    of the wrong shape.
    """
    data = json.loads(line)
    if not isinstance(data, dict):
        raise OntologyError("delta log line is not a JSON object")
    return delta_from_dict(data)


def save_deltas(deltas: "list[OntologyDelta]", path: str) -> None:
    """Write a delta sequence (one pipeline run's update batches) to JSON."""
    payload = [delta_to_dict(d) for d in deltas]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)


def load_deltas(path: str) -> "list[OntologyDelta]":
    """Read a delta sequence written by :func:`save_deltas`."""
    with open(path, encoding="utf-8") as handle:
        return [delta_from_dict(d) for d in json.load(handle)]


def _alias_key_map(store: OntologyStore) -> dict[str, str]:
    """The store's exact-match entries that come from *aliases* (not
    canonical phrases) — key -> winning node id.  Contested alias keys
    resolve by first registration (``setdefault``); the map preserves
    that outcome across snapshot/bootstrap round-trips, where aliases
    are otherwise re-registered in node-creation order."""
    out: dict[str, str] = {}
    for key, node_id in store._by_phrase.items():
        node = store.node(node_id)
        if key != store._phrase_key(node.node_type, node.phrase):
            out[key] = node_id
    return out


def store_to_dict(store: OntologyStore) -> dict:
    """Serialise a store to a snapshot dict preserving ids and version.

    Unlike :func:`ontology_to_dict`, the snapshot is *addressable*: node
    ids, the mutation version, the id counter and the alias-key winners
    survive the round-trip, so deltas recorded after the snapshot apply
    to the reloaded store and exact-match lookups answer identically.
    """
    nodes = []
    for node in sorted(store.nodes(), key=lambda n: creation_order(n.node_id)):
        nodes.append({
            "id": node.node_id,
            "type": node.node_type.value,
            "phrase": node.phrase,
            "aliases": sorted(node.aliases),
            "payload": _jsonable(node.payload),
        })
    edges = [
        {
            "source": e.source,
            "target": e.target,
            "type": e.edge_type.value,
            "weight": e.weight,
        }
        for e in sorted(store.edges(),
                        key=lambda e: (e.source, e.target, e.edge_type.value))
    ]
    out = {
        "format": STORE_FORMAT_VERSION,
        "store_version": store.version,
        "counter": store._counter,
        "alias_map": _alias_key_map(store),
        "nodes": nodes,
        "edges": edges,
    }
    ring = store.ring
    if ring is not None:
        # The active consistent-hash ring epoch rides the snapshot, so a
        # follower bootstrapping from it derives the same placement as
        # one that replayed the stream's ring records (cluster/ring.py).
        out["ring"] = ring
    return out


def store_from_dict(data: dict) -> OntologyStore:
    """Reconstruct a store from :func:`store_to_dict` output.

    Nodes keep their recorded ids; the mutation version and id counter
    are restored afterwards, so a tail delta whose ``base_version``
    equals the snapshot's ``store_version`` applies directly.
    """
    if data.get("format") != STORE_FORMAT_VERSION:
        raise OntologyError(
            f"unsupported store snapshot format: {data.get('format')!r}")
    store = OntologyStore()
    for node_data in data["nodes"]:
        store.add_node(NodeType(node_data["type"]), node_data["phrase"],
                       payload=node_data.get("payload") or None,
                       node_id=node_data["id"])
        for alias in node_data.get("aliases", []):
            store.add_alias(node_data["id"], alias)
    for edge_data in data["edges"]:
        etype = EdgeType(edge_data["type"])
        if not store.has_edge(edge_data["source"], edge_data["target"], etype):
            store.add_edge(edge_data["source"], edge_data["target"], etype,
                           weight=edge_data.get("weight", 1.0))
    # Contested alias keys: restore the original first-registration
    # winners (the rebuild above registered aliases in node order).
    for key, node_id in data.get("alias_map", {}).items():
        store._by_phrase[key] = node_id
    ring = data.get("ring")
    if ring is not None:
        store._ring = {"epoch": ring["epoch"],
                       "num_shards": ring["num_shards"],
                       "vnodes": ring["vnodes"]}
    store._version = data["store_version"]
    store._counter = data["counter"]
    return store


def save_store(store: OntologyStore, path: str) -> None:
    """Write a store snapshot (compaction output) to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(store_to_dict(store), handle, indent=1, sort_keys=True)


def load_store(path: str) -> OntologyStore:
    """Read a store snapshot written by :func:`save_store`."""
    with open(path, encoding="utf-8") as handle:
        return store_from_dict(json.load(handle))


def save_store_columnar(store: OntologyStore, path: str) -> int:
    """Write a store snapshot as a columnar segment
    (:func:`~repro.core.columnar.encode_store_segment`); returns the
    byte size written.  The JSON twin (:func:`save_store`) remains the
    default-readable format — the segment packs the *same* snapshot
    dict, so both decode to ``rpc.dumps``-identical stores."""
    from .columnar import encode_store_segment

    data = encode_store_segment(store_to_dict(store))
    with open(path, "wb") as handle:
        handle.write(data)
    return len(data)


def load_store_columnar(path: str) -> OntologyStore:
    """Read a columnar store segment written by
    :func:`save_store_columnar`.  Raises
    :class:`~repro.errors.SegmentIntegrityError` on a truncated or
    corrupt segment (checksum validated before any column is parsed)."""
    from .columnar import decode_store_segment

    with open(path, "rb") as handle:
        return store_from_dict(decode_store_segment(handle.read()))


def store_to_delta(store: OntologyStore, stage: str = "bootstrap"
                   ) -> OntologyDelta:
    """Fold a whole store into one synthetic, replayable bootstrap delta.

    Ops carry explicit node ids (shard-aware addressing) and are ordered
    so replay is valid on a fresh store: nodes in creation order (with
    their full merged payloads), then aliases — the current exact-match
    *winners* first, so replayed ``setdefault`` claims resolve contested
    alias keys exactly as the source store does — then edges.  The delta
    starts a *new* stream (``base_version`` 0); its version is the op
    count, not the source store's mutation version.
    """
    ops: list[dict] = []
    nodes = sorted(store.nodes(), key=lambda n: creation_order(n.node_id))
    for node in nodes:
        ops.append({"op": "node", "type": node.node_type.value,
                    "phrase": node.phrase,
                    "payload": copy.deepcopy(node.payload),
                    "node_id": node.node_id, "created": True})
    winner_ops: list[dict] = []
    loser_ops: list[dict] = []
    for node in nodes:
        for alias in sorted(node.aliases):
            op = {"op": "alias", "node_id": node.node_id, "alias": alias}
            key = store._phrase_key(node.node_type, alias)
            if store._by_phrase.get(key) == node.node_id:
                winner_ops.append(op)
            else:
                loser_ops.append(op)
    ops.extend(winner_ops)
    ops.extend(loser_ops)
    for edge in sorted(store.edges(),
                       key=lambda e: (e.source, e.target, e.edge_type.value)):
        ops.append({"op": "edge", "source": edge.source,
                    "target": edge.target, "type": edge.edge_type.value,
                    "weight": edge.weight})
    return OntologyDelta(stage=stage, base_version=0, version=len(ops),
                         ops=ops)


def save_ontology(ontology: AttentionOntology, path: str) -> None:
    """Write the ontology to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(ontology_to_dict(ontology), handle, indent=1, sort_keys=True)


def load_ontology(path: str) -> AttentionOntology:
    """Read an ontology from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        return ontology_from_dict(json.load(handle))
