"""Ontology persistence: JSON round-trip for stores and deltas.

The production system stores the ontology in MySQL behind Tars RPC
services; this module provides the equivalent durable representation for
the reproduction — a deterministic JSON document that fully reconstructs
nodes (with aliases and payloads) and edges (with types and weights) —
plus the :class:`~repro.core.store.OntologyDelta` round-trip that lets a
serving process refresh its :class:`~repro.core.store.OntologyStore`
incrementally from pipeline-emitted update batches instead of reloading a
full dump.
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import OntologyError
from .ontology import AttentionOntology, EdgeType, NodeType
from .store import OntologyDelta

FORMAT_VERSION = 1
DELTA_FORMAT_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Coerce payload values to JSON-compatible structures."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def ontology_to_dict(ontology: AttentionOntology) -> dict:
    """Serialise an ontology to a plain dict."""
    nodes = []
    for node in ontology.nodes():
        nodes.append({
            "id": node.node_id,
            "type": node.node_type.value,
            "phrase": node.phrase,
            "aliases": sorted(node.aliases),
            "payload": _jsonable(node.payload),
        })
    nodes.sort(key=lambda n: n["id"])
    edges = [
        {
            "source": e.source,
            "target": e.target,
            "type": e.edge_type.value,
            "weight": e.weight,
        }
        for e in sorted(ontology.edges(),
                        key=lambda e: (e.source, e.target, e.edge_type.value))
    ]
    return {"version": FORMAT_VERSION, "nodes": nodes, "edges": edges}


def ontology_from_dict(data: dict) -> AttentionOntology:
    """Reconstruct an ontology from :func:`ontology_to_dict` output."""
    if data.get("version") != FORMAT_VERSION:
        raise OntologyError(f"unsupported ontology format: {data.get('version')!r}")
    ontology = AttentionOntology()
    id_map: dict[str, str] = {}
    for node_data in data["nodes"]:
        node = ontology.add_node(
            NodeType(node_data["type"]), node_data["phrase"],
            payload=node_data.get("payload") or {},
        )
        id_map[node_data["id"]] = node.node_id
        for alias in node_data.get("aliases", []):
            ontology.add_alias(node.node_id, alias)
    for edge_data in data["edges"]:
        source = id_map.get(edge_data["source"])
        target = id_map.get(edge_data["target"])
        if source is None or target is None:
            raise OntologyError("edge references unknown node id")
        etype = EdgeType(edge_data["type"])
        if not ontology.has_edge(source, target, etype):
            ontology.add_edge(source, target, etype,
                              weight=edge_data.get("weight", 1.0))
    return ontology


def delta_to_dict(delta: OntologyDelta) -> dict:
    """Serialise one update batch to a plain dict."""
    return {
        "version": DELTA_FORMAT_VERSION,
        "stage": delta.stage,
        "base_version": delta.base_version,
        "store_version": delta.version,
        "ops": [_jsonable(op) for op in delta.ops],
    }


def delta_from_dict(data: dict) -> OntologyDelta:
    """Reconstruct an update batch from :func:`delta_to_dict` output.

    Payload tuples become lists on the way through JSON (exactly as in the
    full-ontology round-trip); node/edge structure replays identically.
    """
    if data.get("version") != DELTA_FORMAT_VERSION:
        raise OntologyError(f"unsupported delta format: {data.get('version')!r}")
    return OntologyDelta(
        stage=data.get("stage", ""),
        base_version=data["base_version"],
        version=data["store_version"],
        ops=[dict(op) for op in data["ops"]],
    )


def save_deltas(deltas: "list[OntologyDelta]", path: str) -> None:
    """Write a delta sequence (one pipeline run's update batches) to JSON."""
    payload = [delta_to_dict(d) for d in deltas]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)


def load_deltas(path: str) -> "list[OntologyDelta]":
    """Read a delta sequence written by :func:`save_deltas`."""
    with open(path, encoding="utf-8") as handle:
        return [delta_from_dict(d) for d in json.load(handle)]


def save_ontology(ontology: AttentionOntology, path: str) -> None:
    """Write the ontology to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(ontology_to_dict(ontology), handle, indent=1, sort_keys=True)


def load_ontology(path: str) -> AttentionOntology:
    """Read an ontology from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        return ontology_from_dict(json.load(handle))
