"""Ontology persistence: JSON round-trip.

The production system stores the ontology in MySQL behind Tars RPC
services; this module provides the equivalent durable representation for
the reproduction — a deterministic JSON document that fully reconstructs
nodes (with aliases and payloads) and edges (with types and weights).
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import OntologyError
from .ontology import AttentionOntology, EdgeType, NodeType

FORMAT_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Coerce payload values to JSON-compatible structures."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def ontology_to_dict(ontology: AttentionOntology) -> dict:
    """Serialise an ontology to a plain dict."""
    nodes = []
    for node in ontology.nodes():
        nodes.append({
            "id": node.node_id,
            "type": node.node_type.value,
            "phrase": node.phrase,
            "aliases": sorted(node.aliases),
            "payload": _jsonable(node.payload),
        })
    nodes.sort(key=lambda n: n["id"])
    edges = [
        {
            "source": e.source,
            "target": e.target,
            "type": e.edge_type.value,
            "weight": e.weight,
        }
        for e in sorted(ontology.edges(),
                        key=lambda e: (e.source, e.target, e.edge_type.value))
    ]
    return {"version": FORMAT_VERSION, "nodes": nodes, "edges": edges}


def ontology_from_dict(data: dict) -> AttentionOntology:
    """Reconstruct an ontology from :func:`ontology_to_dict` output."""
    if data.get("version") != FORMAT_VERSION:
        raise OntologyError(f"unsupported ontology format: {data.get('version')!r}")
    ontology = AttentionOntology()
    id_map: dict[str, str] = {}
    for node_data in data["nodes"]:
        node = ontology.add_node(
            NodeType(node_data["type"]), node_data["phrase"],
            payload=node_data.get("payload") or {},
        )
        id_map[node_data["id"]] = node.node_id
        for alias in node_data.get("aliases", []):
            ontology.add_alias(node.node_id, alias)
    for edge_data in data["edges"]:
        source = id_map.get(edge_data["source"])
        target = id_map.get(edge_data["target"])
        if source is None or target is None:
            raise OntologyError("edge references unknown node id")
        etype = EdgeType(edge_data["type"])
        if not ontology.has_edge(source, target, etype):
            ontology.add_edge(source, target, etype,
                              weight=edge_data.get("weight", 1.0))
    return ontology


def save_ontology(ontology: AttentionOntology, path: str) -> None:
    """Write the ontology to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(ontology_to_dict(ontology), handle, indent=1, sort_keys=True)


def load_ontology(path: str) -> AttentionOntology:
    """Read an ontology from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        return ontology_from_dict(json.load(handle))
