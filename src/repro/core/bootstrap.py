"""Pattern-concept duality bootstrapping (paper Section 3.1).

Concepts can be extracted from queries matching known patterns, and new
patterns can be learned from queries containing known concepts — so starting
from a handful of seed patterns ("best X", "top N X") the pattern and
concept sets grow together (Brin 1998's DIPRE idea applied to query logs,
as in the authors' prior concept-mining system).

A :class:`Pattern` is a (prefix, suffix) token pair; a query matches when it
starts with the prefix and ends with the suffix, the slot in between being
the concept candidate.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..text.stopwords import content_words
from ..text.tokenizer import tokenize


@dataclass(frozen=True)
class Pattern:
    """A query pattern with a concept slot between prefix and suffix."""

    prefix: tuple[str, ...]
    suffix: tuple[str, ...] = ()

    def match(self, tokens: "list[str] | tuple[str, ...]") -> "tuple[str, ...] | None":
        """Return the slot tokens if ``tokens`` matches, else None."""
        n, p, s = len(tokens), len(self.prefix), len(self.suffix)
        if n <= p + s:
            return None
        if tuple(tokens[:p]) != self.prefix:
            return None
        if s and tuple(tokens[n - s :]) != self.suffix:
            return None
        slot = tuple(tokens[p : n - s])
        return slot if slot else None

    def __str__(self) -> str:  # pragma: no cover - display helper
        return " ".join(self.prefix) + " X" + (" " + " ".join(self.suffix) if self.suffix else "")


DEFAULT_SEED_PATTERNS: tuple[Pattern, ...] = (
    Pattern(("best",)),
    Pattern(("top", "5")),
    Pattern(("top", "10")),
    Pattern(("what", "are", "the")),
)


class PatternBootstrapper:
    """Iterative pattern/concept accumulation over a query corpus."""

    def __init__(self, seed_patterns: "tuple[Pattern, ...] | list[Pattern]" = DEFAULT_SEED_PATTERNS,
                 min_pattern_support: int = 2, min_concept_support: int = 1,
                 max_iterations: int = 5, max_slot_len: int = 6) -> None:
        self.patterns: set[Pattern] = set(seed_patterns)
        self.min_pattern_support = min_pattern_support
        self.min_concept_support = min_concept_support
        self.max_iterations = max_iterations
        self.max_slot_len = max_slot_len

    @staticmethod
    def _valid_concept(slot: tuple[str, ...]) -> bool:
        words = content_words(list(slot))
        return len(words) >= 1 and len(slot) <= 8

    def _extract_concepts(self, queries: "list[list[str]]") -> Counter:
        found: Counter = Counter()
        for tokens in queries:
            for pattern in self.patterns:
                slot = pattern.match(tokens)
                if slot and len(slot) <= self.max_slot_len and self._valid_concept(slot):
                    found[slot] += 1
        return found

    def _learn_patterns(self, queries: "list[list[str]]",
                        concepts: "set[tuple[str, ...]]") -> Counter:
        learned: Counter = Counter()
        for tokens in queries:
            n = len(tokens)
            for concept in concepts:
                k = len(concept)
                if k >= n:
                    continue
                for start in range(0, n - k + 1):
                    if tuple(tokens[start : start + k]) != concept:
                        continue
                    prefix = tuple(tokens[:start])
                    suffix = tuple(tokens[start + k :])
                    if len(prefix) + len(suffix) == 0:
                        continue
                    if len(prefix) <= 3 and len(suffix) <= 2:
                        learned[Pattern(prefix, suffix)] += 1
        return learned

    def run(self, queries: "list[str] | list[list[str]]"
            ) -> tuple[set[tuple[str, ...]], set[Pattern]]:
        """Bootstrap; returns (concepts, patterns).

        Args:
            queries: raw query strings or pre-tokenized queries.

        Returns:
            The accumulated concept token-tuples and patterns.
        """
        tokenized = [
            tokenize(q) if isinstance(q, str) else list(q) for q in queries
        ]
        concepts: set[tuple[str, ...]] = set()
        for _iteration in range(self.max_iterations):
            found = self._extract_concepts(tokenized)
            new_concepts = {
                slot for slot, count in found.items()
                if count >= self.min_concept_support and slot not in concepts
            }
            if not new_concepts and _iteration > 0:
                break
            concepts |= new_concepts
            learned = self._learn_patterns(tokenized, concepts)
            new_patterns = {
                p for p, count in learned.items()
                if count >= self.min_pattern_support and p not in self.patterns
            }
            if not new_patterns and not new_concepts:
                break
            self.patterns |= new_patterns
        return concepts, set(self.patterns)
