"""Lower an :class:`OntologyDelta` into per-relation Z-sets.

This is the bridge between the mutation log (``core``) and the
maintained-view layer (``repro.views``): one replayable delta batch
becomes a dict of relation-name -> :class:`~repro.views.zset.ZSet` of
changed rows, which a :class:`~repro.views.catalog.ViewCatalog` folds
into every registered view in a single pass.

Relation schemas (rows are plain hashable tuples):

- ``"nodes"``:   ``(node_id, node_type_value, phrase)``
- ``"edges"``:   ``(source, target, edge_type_value, weight)``
- ``"aliases"``: ``(node_id, alias)``
- ``"tokens"``:  ``(node_type_value, token, node_id)`` — the inverted
  posting rows, one per *distinct* token of the phrase, mirroring the
  store's ``set(node.tokens)`` indexing rule.

Lowering mirrors :meth:`OntologyStore.apply_delta` semantics exactly:

- only ``created`` node ops emit ``nodes``/``tokens`` rows (a
  merge-into-existing node op is payload-only and changes no posting);
- ghost node ops (``"ghost": True`` in shard sub-deltas) emit nothing —
  ghosts are routing copies, never *owned* rows, so per-shard view
  fragments stay owned-only for free;
- ``payload`` and ``ring`` ops advance the version without touching any
  relation, so they lower to zero rows (fan-in 0).

Everything here is additive (weight ``+1``) because the ontology only
grows; retractions appear only in locally-derived deltas (e.g. a shard
demoting moved-away records during rebalance builds a weight ``-1``
tokens Z-set by hand).
"""

from __future__ import annotations

from ..text.tokenizer import tokenize
from ..views.zset import ZSet
from .store import OntologyDelta

#: The relation names every lowered batch carries (possibly empty).
RELATIONS = ("nodes", "edges", "aliases", "tokens")


def token_rows(node_type_value: str, phrase: str, node_id: str
               ) -> "list[tuple[str, str, str]]":
    """The posting rows one node contributes: one per distinct token,
    in sorted order (deterministic fold order)."""
    return [(node_type_value, token, node_id)
            for token in sorted(set(tokenize(phrase)))]


def delta_to_zsets(delta: OntologyDelta) -> "dict[str, ZSet]":
    """Lower ``delta`` into per-relation Z-sets of changed rows."""
    nodes = ZSet()
    edges = ZSet()
    aliases = ZSet()
    tokens = ZSet()
    for op in delta.ops:
        kind = op["op"]
        if kind == "node":
            if not op.get("created") or op.get("ghost"):
                continue
            node_id = op["node_id"]
            type_value = op["type"]
            phrase = op["phrase"]
            nodes.add((node_id, type_value, phrase))
            for row in token_rows(type_value, phrase, node_id):
                tokens.add(row)
        elif kind == "edge":
            edges.add((op["source"], op["target"], op["type"],
                       op["weight"]))
        elif kind == "alias":
            aliases.add((op["node_id"], op["alias"]))
        # "payload" and "ring" ops advance the version only.
    return {"nodes": nodes, "edges": edges, "aliases": aliases,
            "tokens": tokens}
