"""Attention derivation: higher-level concepts and topics.

Paper Section 3.1 ("Attention Derivation"):

* **Common Suffix Discovery (CSD)** — concepts sharing a high-frequency
  suffix that forms a noun phrase spawn a parent concept; e.g. "famous
  animated films" / "hayao miyazaki animated films" -> "animated films".
* **Common Pattern Discovery (CPD)** — events sharing a pattern whose
  differing elements all belong to one concept spawn a topic with the slot
  generalised to the concept name; e.g. "jay chou will have a concert" +
  "taylor swift will have a concert" -> "pop singers will have a concert".
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from ..text.pos import PosTagger
from ..text.ner import NerTagger


def common_suffix_discovery(concept_token_lists: "list[list[str]]",
                            pos_tagger: "PosTagger | None" = None,
                            min_count: int = 2, min_suffix_len: int = 1,
                            ) -> dict[tuple[str, ...], list[tuple[str, ...]]]:
    """Derive parent concepts from frequent noun-phrase suffixes.

    Args:
        concept_token_lists: tokenized concept phrases.
        pos_tagger: used to check the suffix forms a noun phrase (last token
            must be noun-like).
        min_count: minimum number of concepts sharing the suffix.
        min_suffix_len: minimum suffix length in tokens.

    Returns:
        Mapping derived-suffix -> list of child concepts (token tuples).
        A suffix identical to one of its children is not derived.
    """
    pos_tagger = pos_tagger or PosTagger()
    suffix_children: dict[tuple[str, ...], set[tuple[str, ...]]] = defaultdict(set)
    for tokens in concept_token_lists:
        t = tuple(tokens)
        for start in range(1, len(t)):  # proper suffixes only
            suffix = t[start:]
            if len(suffix) >= min_suffix_len:
                suffix_children[suffix].add(t)

    derived: dict[tuple[str, ...], list[tuple[str, ...]]] = {}
    for suffix, children in suffix_children.items():
        if len(children) < min_count:
            continue
        tags = pos_tagger.tag(list(suffix))
        if tags[-1] not in ("NOUN", "PROPN"):
            continue
        if any(tag in ("VERB", "PUNCT") for tag in tags):
            continue
        derived[suffix] = sorted(children)

    # Keep only maximal-coverage suffixes: drop a suffix that is itself a
    # suffix of another derived suffix with the same children set.
    redundant: set[tuple[str, ...]] = set()
    items = list(derived.items())
    for i, (suffix_a, children_a) in enumerate(items):
        for suffix_b, children_b in items:
            if suffix_a == suffix_b:
                continue
            longer = len(suffix_b) > len(suffix_a)
            if longer and suffix_b[-len(suffix_a):] == suffix_a and set(children_b) == set(children_a):
                redundant.add(suffix_a)
    for suffix in redundant:
        del derived[suffix]
    return derived


@dataclass(frozen=True)
class DerivedTopic:
    """A topic derived by CPD."""

    phrase: tuple[str, ...]
    pattern: tuple[str, ...]  # with "X" placeholder
    concept: tuple[str, ...]  # the generalising concept phrase
    events: tuple[tuple[str, ...], ...]  # child event phrases


def _find_entity_span(tokens: list[str], ner: NerTagger
                      ) -> "tuple[int, int] | None":
    spans = ner.entity_spans(tokens)
    if not spans:
        return None
    # Use the first (usually subject) entity span.
    start, end, _etype = spans[0]
    return (start, end)


def common_pattern_discovery(event_token_lists: "list[list[str]]",
                             ner_tagger: NerTagger,
                             entity_concepts: "dict[str, list[tuple[str, ...]]]",
                             min_count: int = 2,
                             min_search_support: int = 0,
                             search_counts: "dict[tuple[str, ...], int] | None" = None,
                             ) -> list[DerivedTopic]:
    """Derive topics from events sharing a pattern (CPD).

    Args:
        event_token_lists: tokenized event phrases.
        ner_tagger: locates the entity slot in each event phrase.
        entity_concepts: entity surface -> list of concept token-tuples it
            belongs to (isA parents), most fine-grained first.
        min_count: minimum events sharing a pattern.
        min_search_support: topics must have been searched at least this
            many times (paper filters un-searched derivations).
        search_counts: optional phrase -> search count map for the filter.

    Returns:
        Derived topics.
    """
    groups: dict[tuple[str, ...], list[tuple[tuple[str, ...], str]]] = defaultdict(list)
    for tokens in event_token_lists:
        span = _find_entity_span(tokens, ner_tagger)
        if span is None:
            continue
        start, end = span
        entity = " ".join(tokens[start:end])
        pattern = tuple(tokens[:start]) + ("X",) + tuple(tokens[end:])
        groups[pattern].append((tuple(tokens), entity))

    topics: list[DerivedTopic] = []
    for pattern, members in groups.items():
        if len(members) < min_count:
            continue
        entities = {entity for _tokens, entity in members}
        if len(entities) < min_count:
            continue
        # Most fine-grained concept shared by *all* slot entities.
        shared: "list[tuple[str, ...]] | None" = None
        concept_sets = []
        for entity in entities:
            parents = entity_concepts.get(entity, [])
            if not parents:
                concept_sets = []
                break
            concept_sets.append(set(map(tuple, parents)))
        if concept_sets:
            common = set.intersection(*concept_sets)
            if common:
                # Fine-grained = the longest phrase (most specific name).
                shared = sorted(common, key=lambda c: (-len(c), c))[0]
        if shared is None:
            continue
        slot = pattern.index("X")
        phrase = pattern[:slot] + shared + pattern[slot + 1 :]
        if search_counts is not None and min_search_support > 0:
            if search_counts.get(phrase, 0) < min_search_support:
                continue
        topics.append(
            DerivedTopic(
                phrase=phrase,
                pattern=pattern,
                concept=shared,
                events=tuple(sorted(tokens for tokens, _e in members)),
            )
        )
    topics.sort(key=lambda t: t.phrase)
    return topics
