"""QTIG node features for the GCTSP-Net.

Per the paper (Section 3.1): each node is represented by the concatenated
embeddings of its NER tag, POS tag, stopword flag, character count, and the
sequential id in which the node was added to the graph.  This module turns
a :class:`QueryTitleGraph` into an integer feature matrix; the GCTSP-Net
owns the embedding tables that map each integer column to a dense vector.
"""

from __future__ import annotations

import numpy as np

from ..graph.qtig import QueryTitleGraph, SOS, EOS
from ..text.ner import NerTagger, NER_TAGS
from ..text.pos import PosTagger, POS_TAGS
from ..text.stopwords import is_stopword

# Feature columns: (name, vocabulary size).
_NER_VOCAB = ["<special>"] + ["O"] + [f"B-{t}" for t in NER_TAGS if t != "O"] + [
    f"I-{t}" for t in NER_TAGS if t != "O"
]
_POS_VOCAB = ["<special>"] + list(POS_TAGS)
_STOP_VOCAB = ["<special>", "content", "stop"]
_LEN_BUCKETS = 8  # clamp character counts to 0..7 ( >7 chars -> bucket 7 )
_SEQ_BUCKETS = 32  # clamp node insertion order

FEATURE_FIELDS: tuple[tuple[str, int], ...] = (
    ("ner", len(_NER_VOCAB)),
    ("pos", len(_POS_VOCAB)),
    ("stop", len(_STOP_VOCAB)),
    ("length", _LEN_BUCKETS + 1),  # +1 for the special bucket 0
    ("seqid", _SEQ_BUCKETS + 1),
)


class NodeFeatureExtractor:
    """Computes the (N, 5) integer feature matrix of a QTIG."""

    def __init__(self, pos_tagger: "PosTagger | None" = None,
                 ner_tagger: "NerTagger | None" = None) -> None:
        self._pos = pos_tagger or PosTagger()
        self._ner = ner_tagger or NerTagger()
        self._ner_index = {t: i for i, t in enumerate(_NER_VOCAB)}
        self._pos_index = {t: i for i, t in enumerate(_POS_VOCAB)}

    def extract(self, graph: QueryTitleGraph) -> np.ndarray:
        """Return integer features, one row per node, columns per field."""
        n = graph.num_nodes
        features = np.zeros((n, len(FEATURE_FIELDS)), dtype=np.int64)

        # Tag each input text once; a node takes the tags of its first
        # occurrence (texts are ordered by weight, so the highest-weighted
        # context wins — consistent with the QTIG edge policy).
        node_pos: dict[int, str] = {}
        node_ner: dict[int, str] = {}
        for text in graph.texts:
            body = [t for t in text if t not in (graph.sos_id, graph.eos_id)]
            tokens = [graph.tokens[i] for i in body]
            if not tokens:
                continue
            pos_tags = self._pos.tag(tokens)
            ner_tags = self._ner.tag(tokens)
            for node_id, pos_tag, ner_tag in zip(body, pos_tags, ner_tags):
                node_pos.setdefault(node_id, pos_tag)
                node_ner.setdefault(node_id, ner_tag)

        for node_id in range(n):
            token = graph.tokens[node_id]
            if token in (SOS, EOS):
                # All-special row (index 0 in every vocabulary).
                continue
            features[node_id, 0] = self._ner_index.get(node_ner.get(node_id, "O"), 1)
            features[node_id, 1] = self._pos_index.get(node_pos.get(node_id, "NOUN"), 1)
            features[node_id, 2] = 2 if is_stopword(token) else 1
            features[node_id, 3] = min(len(token), _LEN_BUCKETS - 1) + 1
            features[node_id, 4] = min(node_id, _SEQ_BUCKETS - 1) + 1
        return features
