"""Query-title alignment candidate generation (paper Section 3.1).

A concept mentioned in a query usually re-appears in clicked titles, often
in a *more detailed* form — the title chunk contains the query tokens in the
same order with extra tokens interleaved ("fuel efficient cars" -> "fuel
efficient compact cars").  Aligning a query against its top clicked titles
and selecting the minimal covering chunk yields concept candidates.
"""

from __future__ import annotations

from ..text.stopwords import content_words


def align_query_title(query_tokens: list[str], title_tokens: list[str],
                      max_gap: int = 2) -> "list[str] | None":
    """Minimal title chunk containing the query's content words in order.

    Args:
        query_tokens: tokenized query.
        title_tokens: tokenized title.
        max_gap: maximum number of extra title tokens allowed between two
            consecutive matched query tokens (keeps chunks phrase-like).

    Returns:
        The title chunk (token list) or None when no alignment exists.
    """
    needles = content_words(query_tokens)
    if not needles:
        return None

    best: "tuple[int, int] | None" = None  # (start, end) inclusive
    n = len(title_tokens)
    for start in range(n):
        if title_tokens[start] != needles[0]:
            continue
        pos = start
        ok = True
        for needle in needles[1:]:
            nxt = None
            for j in range(pos + 1, min(n, pos + 2 + max_gap)):
                if title_tokens[j] == needle:
                    nxt = j
                    break
            if nxt is None:
                ok = False
                break
            pos = nxt
        if ok:
            span = (start, pos)
            if best is None or (span[1] - span[0]) < (best[1] - best[0]):
                best = span
    if best is None:
        return None
    return title_tokens[best[0] : best[1] + 1]


def extract_aligned_candidates(query_tokens: list[str],
                               titles: "list[list[str]]",
                               max_gap: int = 2) -> list[list[str]]:
    """Alignment candidates of a query against its clicked titles.

    Titles should be ordered by click count (top clicked first); candidates
    keep that order so downstream selection can prefer high-CTR evidence.
    """
    out: list[list[str]] = []
    for title in titles:
        chunk = align_query_title(query_tokens, title, max_gap=max_gap)
        if chunk and chunk not in out:
            out.append(chunk)
    return out
