"""CoverRank: event-candidate selection from title subtitles.

Paper Section 3.1 ("Training Dataset Construction", events): document titles
are split into subtitles at punctuation; subtitles within a length band
[L_l, L_h] are scored by the number of unique non-stop query tokens they
cover, ties broken by click-through rate; the top subtitle becomes the event
candidate.  The same procedure doubles as the CoverRank baseline (Table 6).
"""

from __future__ import annotations

from ..text.stopwords import PUNCTUATION, content_words


def split_subtitles(title_tokens: list[str]) -> list[list[str]]:
    """Split a tokenized title into subtitles at punctuation tokens."""
    out: list[list[str]] = []
    current: list[str] = []
    for token in title_tokens:
        if token in PUNCTUATION or (len(token) == 1 and not token.isalnum()):
            if current:
                out.append(current)
                current = []
        else:
            current.append(token)
    if current:
        out.append(current)
    return out


def cover_score(subtitle: list[str], query_tokens_sets: "list[set[str]]") -> int:
    """Unique non-stop query tokens covered by ``subtitle`` (all queries)."""
    covered: set[str] = set()
    words = set(content_words(subtitle))
    for query_set in query_tokens_sets:
        covered |= words & query_set
    return len(covered)


def cover_rank(queries: "list[list[str]]", titles: "list[list[str]]",
               title_ctrs: "list[float] | None" = None,
               min_len: int = 3, max_len: int = 20
               ) -> list[tuple[list[str], int, float]]:
    """Rank all subtitle candidates.

    Args:
        queries: tokenized queries of the cluster.
        titles: tokenized clicked titles.
        title_ctrs: per-title click-through weight (defaults to rank order).
        min_len: minimum subtitle length L_l in tokens.
        max_len: maximum subtitle length L_h in tokens.

    Returns:
        (subtitle, cover score, ctr) tuples sorted by (-score, -ctr).
    """
    if title_ctrs is None:
        title_ctrs = [1.0 / (rank + 1) for rank in range(len(titles))]
    query_sets = [set(content_words(q)) for q in queries]
    candidates: list[tuple[list[str], int, float]] = []
    seen: set[tuple[str, ...]] = set()
    for title, ctr in zip(titles, title_ctrs):
        for subtitle in split_subtitles(title):
            if not min_len <= len(subtitle) <= max_len:
                continue
            key = tuple(subtitle)
            if key in seen:
                continue
            seen.add(key)
            candidates.append((subtitle, cover_score(subtitle, query_sets), ctr))
    candidates.sort(key=lambda c: (-c[1], -c[2]))
    return candidates


def select_event_candidate(queries: "list[list[str]]", titles: "list[list[str]]",
                           title_ctrs: "list[float] | None" = None,
                           min_len: int = 3, max_len: int = 20
                           ) -> "list[str] | None":
    """The top-ranked subtitle, or None when no subtitle qualifies."""
    ranked = cover_rank(queries, titles, title_ctrs, min_len, max_len)
    return ranked[0][0] if ranked else None
