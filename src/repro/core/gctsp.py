"""GCTSP-Net: Graph Convolution - Traveling Salesman Problem Network.

The paper's multi-task phrase miner (Section 3.1):

1. encode the query-title interaction graph with a multi-layer R-GCN (basis
   decomposition) over typed edges;
2. classify each node — binary (belongs to the attention phrase) for
   concept/event/topic mining, or 4-class (entity/trigger/location/other)
   for event key-element recognition;
3. order the predicted-positive nodes by solving an asymmetric TSP over
   BFS shortest-path distances in the decoding variant of the graph
   (ATSP-decoding), yielding the output phrase.

One model class serves all tasks; ``num_classes`` selects the head.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import GCTSPConfig, make_rng
from ..errors import TrainingError
from ..graph.qtig import QueryTitleGraph, build_qtig, RELATION_SEQ
from ..nn.autograd import Tensor, concat, no_grad
from ..nn.functional import log_softmax
from ..nn.layers import Module, Embedding
from ..nn.optim import Adam
from ..nn.rgcn import RGCN
from ..text.dependency import DependencyParser
from ..tsp import solve_path_atsp
from .features import FEATURE_FIELDS, NodeFeatureExtractor

# Fixed forward-relation vocabulary shared by all graphs, so one trained
# model transfers across clusters. "root" never appears as an arc label.
RELATION_VOCAB: tuple[str, ...] = (
    RELATION_SEQ, "det", "amod", "nummod", "compound", "nsubj", "dobj",
    "case", "nmod", "advmod", "punct", "dep",
)

# Key-element classes for the 4-class task (paper Section 3.2).
KEY_ELEMENT_CLASSES: tuple[str, ...] = ("other", "entity", "trigger", "location")


@dataclass
class GraphExample:
    """A prepared training/inference example."""

    graph: QueryTitleGraph
    features: np.ndarray  # (N, num_fields) ints
    adjacencies: list[np.ndarray] = field(default_factory=list)
    labels: "np.ndarray | None" = None  # (N,) ints
    gold_tokens: "list[str] | None" = None


def prepare_example(queries: "list[list[str]]", titles: "list[list[str]]",
                    extractor: NodeFeatureExtractor,
                    parser: "DependencyParser | None" = None,
                    gold_tokens: "list[str] | None" = None,
                    token_roles: "dict[str, str] | None" = None,
                    keep_all_edges: bool = False) -> GraphExample:
    """Build a :class:`GraphExample` from tokenized queries and titles.

    Args:
        queries: tokenized queries (descending weight order).
        titles: tokenized clicked titles (same ordering).
        extractor: node feature extractor (with registered taggers).
        parser: dependency parser for QTIG edges.
        gold_tokens: tokens of the gold phrase; produces binary labels.
        token_roles: token -> role ("entity"/"trigger"/"location"); produces
            4-class labels for key-element recognition (overrides
            ``gold_tokens`` when both are given).
        keep_all_edges: ablation knob forwarded to QTIG construction.
    """
    graph = build_qtig(queries, titles, parser=parser, keep_all_edges=keep_all_edges)
    features = extractor.extract(graph)
    adjacencies, _names = graph.adjacency_matrices(list(RELATION_VOCAB))

    labels: "np.ndarray | None" = None
    if token_roles is not None:
        labels = np.zeros(graph.num_nodes, dtype=np.int64)
        class_index = {c: i for i, c in enumerate(KEY_ELEMENT_CLASSES)}
        for token, role in token_roles.items():
            node = graph.node_ids.get(token)
            if node is not None and role in class_index:
                labels[node] = class_index[role]
    elif gold_tokens is not None:
        gold = set(gold_tokens)
        labels = np.zeros(graph.num_nodes, dtype=np.int64)
        for token, node in graph.node_ids.items():
            if token in gold and node > 1:  # exclude sos/eos
                labels[node] = 1

    return GraphExample(graph=graph, features=features,
                        adjacencies=adjacencies, labels=labels,
                        gold_tokens=list(gold_tokens) if gold_tokens else None)


class GCTSPNet(Module):
    """The GCTSP-Net model (feature embeddings + R-GCN + ATSP decoder)."""

    def __init__(self, config: "GCTSPConfig | None" = None, num_classes: int = 2,
                 feature_dim: int = 8) -> None:
        self.config = config or GCTSPConfig()
        self.config.validate()
        rng = make_rng(self.config.seed)
        self.num_classes = num_classes
        self.feature_dim = feature_dim
        self.embeddings = [
            Embedding(vocab_size, feature_dim, rng=rng)
            for _name, vocab_size in FEATURE_FIELDS
        ]
        in_dim = feature_dim * len(FEATURE_FIELDS)
        self.rgcn = RGCN(
            in_dim=in_dim,
            hidden_dim=self.config.hidden_size,
            num_classes=num_classes,
            num_relations=2 * len(RELATION_VOCAB),
            num_layers=self.config.num_layers,
            num_bases=self.config.num_bases,
            rng=rng,
        )

    # ------------------------------------------------------------------
    def node_logits(self, example: GraphExample) -> Tensor:
        """Per-node class logits (N, num_classes)."""
        columns = [
            emb(example.features[:, i]) for i, emb in enumerate(self.embeddings)
        ]
        h = concat(columns, axis=1)
        return self.rgcn(h, example.adjacencies)

    def _example_loss(self, example: GraphExample,
                      class_weights: "np.ndarray | None") -> Tensor:
        if example.labels is None:
            raise TrainingError("example has no labels")
        logits = self.node_logits(example)
        logp = log_softmax(logits, axis=-1)
        n = example.features.shape[0]
        picked = logp[np.arange(n), example.labels]
        if class_weights is not None:
            weights = class_weights[example.labels]
            return -(picked * weights).sum() * (1.0 / weights.sum())
        return -picked.mean()

    def fit(self, examples: "list[GraphExample]",
            epochs: "int | None" = None, lr: "float | None" = None,
            balance_classes: bool = True, verbose: bool = False,
            dev_examples: "list[GraphExample] | None" = None) -> list[float]:
        """Train on labeled examples; returns per-epoch mean losses."""
        if not examples:
            raise TrainingError("no training examples")
        epochs = epochs if epochs is not None else self.config.epochs
        lr = lr if lr is not None else self.config.learning_rate
        rng = make_rng(self.config.seed + 1)

        class_weights = None
        if balance_classes:
            counts = np.zeros(self.num_classes)
            for ex in examples:
                if ex.labels is None:
                    raise TrainingError("example has no labels")
                counts += np.bincount(ex.labels, minlength=self.num_classes)
            counts = np.maximum(counts, 1.0)
            class_weights = counts.sum() / (self.num_classes * counts)

        optimizer = Adam(self.parameters(), lr=lr, weight_decay=self.config.l2)
        losses: list[float] = []
        order = np.arange(len(examples))
        for epoch in range(epochs):
            rng.shuffle(order)
            total = 0.0
            for idx in order:
                optimizer.zero_grad()
                loss = self._example_loss(examples[idx], class_weights)
                loss.backward()
                optimizer.clip_grad_norm(5.0)
                optimizer.step()
                total += loss.item()
            losses.append(total / len(examples))
            if verbose:  # pragma: no cover - logging aid
                print(f"epoch {epoch}: loss={losses[-1]:.4f}")
        return losses

    # ------------------------------------------------------------------
    def predict_labels(self, example: GraphExample) -> np.ndarray:
        """Argmax class per node."""
        with no_grad():
            logits = self.node_logits(example)
        return logits.data.argmax(axis=1)

    def predict_positive_nodes(self, example: GraphExample) -> list[int]:
        """Node ids predicted to belong to the phrase (binary head)."""
        labels = self.predict_labels(example)
        return [i for i in range(2, example.graph.num_nodes) if labels[i] == 1]

    def extract_phrase(self, example: GraphExample) -> list[str]:
        """Full GCTSP inference: classify nodes, order them by ATSP-decoding."""
        positives = self.predict_positive_nodes(example)
        return self.order_nodes(example.graph, positives)

    @staticmethod
    def order_nodes(graph: QueryTitleGraph, positives: "list[int]") -> list[str]:
        """ATSP-decode an ordering of ``positives`` into a token list."""
        if not positives:
            return []
        nodes = [graph.sos_id] + list(positives) + [graph.eos_id]
        dist = graph.decoding_distances(nodes, positives)
        path = solve_path_atsp(dist, 0, len(nodes) - 1)
        ordered = [nodes[i] for i in path if nodes[i] not in (graph.sos_id, graph.eos_id)]
        return [graph.tokens[i] for i in ordered]

    # ------------------------------------------------------------------
    def predict_key_elements(self, example: GraphExample) -> dict[str, str]:
        """4-class head: token -> role for predicted non-"other" nodes."""
        labels = self.predict_labels(example)
        out: dict[str, str] = {}
        for node in range(2, example.graph.num_nodes):
            cls = KEY_ELEMENT_CLASSES[labels[node]]
            if cls != "other":
                out[example.graph.tokens[node]] = cls
        return out
