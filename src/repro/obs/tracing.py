"""Request-scoped tracing across threads, sockets and worker processes.

Answers "where did this request spend its time" across the serving
fabric's chain — ``RpcClient`` → ``RpcServer`` → ``MicroBatcher`` worker
thread → ``ShardedStoreView`` scatter → spawned shard workers — without
any third-party dependency (DESIGN.md §12):

* a :class:`TraceContext` is ``(trace id, span id)``.  The *current*
  context rides a :class:`contextvars.ContextVar`, so concurrent asyncio
  tasks each carry their own; crossing into the batcher's worker thread
  is explicit (:func:`push_context` / :func:`pop_context`), because
  ``run_in_executor`` does not copy the caller's context;
* on the wire the context is one optional ``"trace": {"tid", "sid"}``
  key in the JSON *request* envelope.  Requests are always JSON — even
  on connections negotiated to binary responses — so one field layout
  covers both wire formats, and a pre-trace peer simply ignores the
  unknown key (version skew degrades to untraced, never breaks);
* a :class:`Tracer` appends finished spans to a JSON-lines log
  (``spans-<process>.jsonl`` under its trace dir, one file per process —
  no cross-process write contention), exportable to Chrome's
  ``trace_event`` format (:func:`write_chrome_trace`) for timeline
  viewing in ``chrome://tracing`` / Perfetto.

A tracer with no trace dir is *disabled*: :meth:`Tracer.span` is a
no-op unless a parent context is already present — in which case it
still mints child contexts so downstream processes that *are* tracing
log a connected tree.  Telemetry never changes results: spans carry
ids and timing only, and the byte-identity suites run with tracing on.

The clock defaults to :func:`time.time` (not ``perf_counter``): span
timestamps must be comparable across processes for one merged timeline.
It is injectable for deterministic tests.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
import warnings
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Callable

#: Environment variable naming the span-log directory.  ``cli serve
#: --trace-dir`` sets it before spawning shard workers, so the whole
#: process tree traces into one directory with zero plumbing.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

_current: "ContextVar[TraceContext | None]" = ContextVar(
    "repro_trace_context", default=None)


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one request: which trace it belongs
    to and which span is its parent on the far side of a boundary."""

    trace_id: str
    span_id: str

    def to_wire(self) -> "dict[str, str]":
        return {"tid": self.trace_id, "sid": self.span_id}

    @classmethod
    def from_wire(cls, payload: Any) -> "TraceContext | None":
        """Parse a request's ``"trace"`` value; anything malformed is
        treated as absent (an untraced or incompatible peer)."""
        if not isinstance(payload, dict):
            return None
        trace_id = payload.get("tid")
        span_id = payload.get("sid")
        if isinstance(trace_id, str) and isinstance(span_id, str):
            return cls(trace_id, span_id)
        return None


def current_context() -> "TraceContext | None":
    """The context of the request this task/thread is serving."""
    return _current.get()


def push_context(ctx: "TraceContext | None"):
    """Set the current context (returns a token for
    :func:`pop_context`).  Used at explicit thread hand-offs — e.g. the
    batcher setting the batch span's context inside its worker thread."""
    return _current.set(ctx)


def pop_context(token) -> None:
    _current.reset(token)


class Span:
    """Handle yielded by :meth:`Tracer.span`; lets the instrumented code
    attach attributes (shard id, batch size, …) before the span ends."""

    __slots__ = ("ctx", "attrs")

    def __init__(self, ctx: TraceContext, attrs: "dict[str, Any]") -> None:
        self.ctx = ctx
        self.attrs = attrs

    def set(self, **attrs: Any) -> None:
        self.attrs.update(attrs)


_INHERIT = object()


class Tracer:
    """Appends finished spans to ``<trace_dir>/spans-<process>.jsonl``.

    Args:
        trace_dir: span-log directory; ``None`` disables writing (spans
            still propagate incoming contexts, see module docstring).
        process: name stamped on every span and on the log filename;
            must be unique per process within a trace dir (workers use
            ``shard-<id>``, the CLI ``serve``; default ``pid-<pid>``).
        clock: wall-clock source for span start/duration; injectable
            for deterministic tests.
    """

    def __init__(self, trace_dir: "str | None" = None,
                 process: "str | None" = None,
                 clock: "Callable[[], float] | None" = None) -> None:
        self.trace_dir = trace_dir
        self.enabled = trace_dir is not None
        self.process = process or f"pid-{os.getpid()}"
        self._clock = clock or time.time
        self._lock = threading.Lock()
        self._file = None
        self._sequence = itertools.count(1)
        self.spans_written = 0

    # ------------------------------------------------------------------
    def _next_id(self) -> str:
        # Process-qualified counters: unique across the process tree as
        # long as process names are (no randomness — spans stay
        # deterministic under a fake clock).
        return f"{self.process}:{next(self._sequence)}"

    @contextmanager
    def span(self, name: str, parent: Any = _INHERIT, **attrs: Any):
        """Open a span named ``name``.

        ``parent`` defaults to the current context (inheritance within
        a process); pass an explicit :class:`TraceContext` (e.g. parsed
        off a request frame) or ``None`` to force a root.  Yields a
        :class:`Span` handle — or ``None`` on the fast path (tracer
        disabled and nothing to propagate), which costs two branch
        checks and no allocation.
        """
        parent_ctx = current_context() if parent is _INHERIT else parent
        if not self.enabled and parent_ctx is None:
            yield None
            return
        if parent_ctx is None:
            span_id = self._next_id()
            ctx = TraceContext(f"t{span_id}", span_id)
            parent_id = None
        else:
            ctx = TraceContext(parent_ctx.trace_id, self._next_id())
            parent_id = parent_ctx.span_id
        handle = Span(ctx, dict(attrs))
        token = _current.set(ctx)
        start = self._clock()
        try:
            yield handle
        finally:
            _current.reset(token)
            if self.enabled:
                self._write({
                    "name": name,
                    "trace": ctx.trace_id,
                    "span": ctx.span_id,
                    "parent": parent_id,
                    "process": self.process,
                    "ts": start,
                    "dur": self._clock() - start,
                    "attrs": handle.attrs,
                })

    def _write(self, record: "dict[str, Any]") -> None:
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        with self._lock:
            if self._file is None:
                os.makedirs(self.trace_dir, exist_ok=True)
                path = os.path.join(self.trace_dir,
                                    f"spans-{self.process}.jsonl")
                self._file = open(path, "a", encoding="utf-8")
            self._file.write(line)
            self._file.flush()  # each span line survives a crash
            self.spans_written += 1

    def describe(self) -> "dict[str, Any]":
        return {"enabled": self.enabled, "trace_dir": self.trace_dir,
                "process": self.process,
                "spans_written": self.spans_written}

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


#: The process-wide tracer.  Created lazily from ``REPRO_TRACE_DIR`` so
#: spawned worker processes (which inherit the environment) trace into
#: the same directory without any argument plumbing.
_TRACER: "Tracer | None" = None


def get_tracer() -> Tracer:
    global _TRACER
    if _TRACER is None:
        _TRACER = Tracer(os.environ.get(TRACE_DIR_ENV) or None)
    return _TRACER


def configure_tracer(trace_dir: "str | None" = None,
                     process: "str | None" = None,
                     clock: "Callable[[], float] | None" = None) -> Tracer:
    """Replace the process-wide tracer (closing the old one's log).
    Explicit arguments win over the environment; ``trace_dir=None``
    disables writing."""
    global _TRACER
    if _TRACER is not None:
        _TRACER.close()
    _TRACER = Tracer(trace_dir, process=process, clock=clock)
    return _TRACER


# ----------------------------------------------------------------------
# span-log readout / Chrome trace_event export
# ----------------------------------------------------------------------
#: Keys :func:`write_chrome_trace` indexes unconditionally; a span line
#: missing any of them is malformed (e.g. torn mid-record by a crash).
_SPAN_KEYS = ("name", "trace", "span", "process", "ts", "dur")


def load_spans(trace_dir: str) -> "list[dict]":
    """All spans under ``trace_dir`` (every ``spans-*.jsonl``), in
    deterministic (filename, line) order.

    Span logs are written by live processes that can die mid-line, so a
    log may end in a torn (truncated) record, and a mid-file line may
    parse but lack span fields.  Such lines are **skipped with a
    warning** — one bad tail must not make a whole trace directory
    unexportable."""
    spans: "list[dict]" = []
    try:
        names = sorted(os.listdir(trace_dir))
    except FileNotFoundError:
        return spans
    for name in names:
        if not (name.startswith("spans-") and name.endswith(".jsonl")):
            continue
        with open(os.path.join(trace_dir, name), encoding="utf-8") as fh:
            for number, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    span = json.loads(line)
                except json.JSONDecodeError:
                    span = None
                if not isinstance(span, dict) or \
                        any(key not in span for key in _SPAN_KEYS):
                    warnings.warn(
                        f"skipping malformed span line {name}:{number} "
                        f"({line[:40]!r}...)", stacklevel=2)
                    continue
                spans.append(span)
    return spans


def write_chrome_trace(trace_dir: str, out_path: str) -> int:
    """Merge the span logs into one Chrome ``trace_event`` JSON file
    (complete events, ``ph="X"``, microsecond timestamps) loadable in
    ``chrome://tracing`` or https://ui.perfetto.dev; returns the number
    of spans exported."""
    spans = load_spans(trace_dir)
    processes = sorted({span["process"] for span in spans})
    pids = {process: index + 1 for index, process in enumerate(processes)}
    traces = sorted({span["trace"] for span in spans})
    tids = {trace: index + 1 for index, trace in enumerate(traces)}
    events: "list[dict]" = [
        {"ph": "M", "name": "process_name", "pid": pids[process], "tid": 0,
         "args": {"name": process}}
        for process in processes
    ]
    for span in spans:
        args = dict(span.get("attrs") or {})
        args.update(trace=span["trace"], span=span["span"],
                    parent=span.get("parent"))
        events.append({
            "ph": "X",
            "name": span["name"],
            "cat": "span",
            "ts": span["ts"] * 1e6,
            "dur": span["dur"] * 1e6,
            "pid": pids[span["process"]],
            "tid": tids[span["trace"]],
            "args": args,
        })
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump({"traceEvents": events,
                   "displayTimeUnit": "ms"}, fh)
    return len(spans)
