"""Black-box flight recorder for the serving fabric (DESIGN.md §14).

When a check fires in production the question is never "what is the
state now" but "what did the system *do* just before".  The
:class:`FlightRecorder` answers it the way an aircraft recorder does:
every serving layer reports structured events into one bounded ring —
request errors and slow calls (``rpc.py``), batcher deadline flushes
(``batcher.py``), scatter stragglers (``cluster/shards.py``), ring-epoch
flips, worker restarts and ``DeltaGapError`` re-bootstraps
(``cluster/remote.py``, ``replication``), view rehydrates
(``views/catalog.py``) — and the ring holds the last N of them at all
times, costing one lock and one deque append per event.

Events are plain dicts ``{seq, ts, kind, component, ...}`` so they ride
the RPC codec unchanged (the ``obs_dump`` method returns the ring).
*Anomalous* kinds additionally trigger an automatic JSON-lines dump of
the whole ring to the recorder directory — rate-limited, so an error
storm produces a few dumps, not thousands — which is what the
fault-injection campaign and CI read to explain a failed check.

Like the tracer, the process-wide recorder is configured lazily from an
environment variable (:data:`RECORDER_DIR_ENV`), so spawned shard
workers inherit the dump directory with zero plumbing; a recorder with
no directory still keeps its ring (``obs_dump`` works, auto-dump is
off).  The clock defaults to :func:`time.time` — event timestamps must
merge across processes — and is injectable for deterministic tests.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Callable

#: Environment variable naming the dump directory.  ``cli serve
#: --recorder-dir`` sets it before spawning shard workers, so every
#: process in the tree dumps into one place.
RECORDER_DIR_ENV = "REPRO_RECORDER_DIR"

#: Event kinds that are anomalies by default: each one is a symptom the
#: fabric recovered from (or failed on) rather than normal operation,
#: so it is worth a dump of the surrounding ring.
ANOMALY_KINDS = frozenset({
    "rpc.error",
    "rpc.slow_call",
    "scatter.straggler",
    "worker.restart",
    "replication.gap_rebootstrap",
    "views.rehydrate",
    "shard.unavailable",
    "audit.violation",
})


class FlightRecorder:
    """A bounded ring of structured events with anomaly-triggered dumps.

    Args:
        recorder_dir: dump directory; ``None`` disables file dumps (the
            ring itself always records).
        process: name stamped on dump filenames and the dump header;
            unique per process within a recorder dir (workers use
            ``shard-<id>``; default ``pid-<pid>``).
        capacity: ring size — how far back a dump can see.
        slow_call_seconds: latency threshold the instrumented call
            sites compare against before reporting ``rpc.slow_call`` /
            ``scatter.straggler`` events.
        min_dump_interval: seconds between *automatic* anomaly dumps
            (explicit :meth:`dump` calls are never limited).
        clock: wall-clock source for event timestamps and dump rate
            limiting; injectable for deterministic tests.
    """

    def __init__(self, recorder_dir: "str | None" = None,
                 process: "str | None" = None, capacity: int = 256,
                 slow_call_seconds: float = 0.5,
                 min_dump_interval: float = 1.0,
                 clock: "Callable[[], float] | None" = None) -> None:
        if capacity <= 0:
            raise ValueError("recorder capacity must be positive")
        self.recorder_dir = recorder_dir
        self.process = process or f"pid-{os.getpid()}"
        self.capacity = capacity
        self.slow_call_seconds = slow_call_seconds
        self.min_dump_interval = min_dump_interval
        self._clock = clock or time.time
        self._lock = threading.RLock()
        self._ring: "deque[dict]" = deque(maxlen=capacity)
        self._seq = 0
        self._last_auto_dump: "float | None" = None
        self.events_recorded = 0
        self.anomalies = 0
        self.dumps_written = 0
        self.last_dump_path: "str | None" = None

    # ------------------------------------------------------------------
    def record(self, kind: str, component: str, *,
               anomaly: "bool | None" = None, **fields: Any) -> dict:
        """Append one event; returns it.

        ``component`` names the part of the fabric the event is about
        (``rpc.server.tag_documents``, ``shard-2``, ``cluster.parent``,
        …) — dumps must *name the failing component*, not just count.
        ``anomaly`` defaults by membership in :data:`ANOMALY_KINDS`;
        anomalous events auto-dump the ring when a recorder dir is
        configured (rate-limited by ``min_dump_interval``).
        """
        if anomaly is None:
            anomaly = kind in ANOMALY_KINDS
        auto_dump = False
        with self._lock:
            self._seq += 1
            event = {"seq": self._seq, "ts": self._clock(), "kind": kind,
                     "component": component, "anomaly": anomaly}
            event.update(fields)
            self._ring.append(event)
            self.events_recorded += 1
            if anomaly:
                self.anomalies += 1
                if self.recorder_dir is not None:
                    now = event["ts"]
                    if (self._last_auto_dump is None or
                            now - self._last_auto_dump
                            >= self.min_dump_interval):
                        self._last_auto_dump = now
                        auto_dump = True
        if auto_dump:
            self.dump(reason=kind)
        return event

    def events(self) -> "list[dict]":
        """The ring's events, oldest first (a copy)."""
        with self._lock:
            return [dict(event) for event in self._ring]

    # ------------------------------------------------------------------
    def dump(self, path: "str | None" = None,
             reason: str = "on-demand") -> "str | None":
        """Write the ring as JSON lines (one header record, then one
        line per event, oldest first); returns the path, or ``None``
        when there is nowhere to write (no dir and no explicit path).
        """
        with self._lock:
            events = [dict(event) for event in self._ring]
            if path is None:
                if self.recorder_dir is None:
                    return None
                path = os.path.join(
                    self.recorder_dir,
                    f"flight-{self.process}-{self.dumps_written + 1}.jsonl")
            header = {"dump": self.dumps_written + 1, "reason": reason,
                      "process": self.process, "ts": self._clock(),
                      "events": len(events)}
            self.dumps_written += 1
            self.last_dump_path = path
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            for record in [header] + events:
                fh.write(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")) + "\n")
        return path

    def describe(self) -> "dict[str, Any]":
        with self._lock:
            return {
                "process": self.process,
                "recorder_dir": self.recorder_dir,
                "capacity": self.capacity,
                "slow_call_seconds": self.slow_call_seconds,
                "events_recorded": self.events_recorded,
                "events_held": len(self._ring),
                "anomalies": self.anomalies,
                "dumps_written": self.dumps_written,
                "last_dump_path": self.last_dump_path,
            }


#: The process-wide recorder, created lazily from ``REPRO_RECORDER_DIR``
#: (spawned workers inherit the environment, exactly like the tracer).
_RECORDER: "FlightRecorder | None" = None


def get_recorder() -> FlightRecorder:
    global _RECORDER
    if _RECORDER is None:
        _RECORDER = FlightRecorder(os.environ.get(RECORDER_DIR_ENV) or None)
    return _RECORDER


def configure_recorder(recorder_dir: "str | None" = None,
                       process: "str | None" = None,
                       capacity: int = 256,
                       slow_call_seconds: float = 0.5,
                       min_dump_interval: float = 1.0,
                       clock: "Callable[[], float] | None" = None
                       ) -> FlightRecorder:
    """Replace the process-wide recorder.  Explicit arguments win over
    the environment; ``recorder_dir=None`` disables file dumps."""
    global _RECORDER
    _RECORDER = FlightRecorder(
        recorder_dir, process=process, capacity=capacity,
        slow_call_seconds=slow_call_seconds,
        min_dump_interval=min_dump_interval, clock=clock)
    return _RECORDER
