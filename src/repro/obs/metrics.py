"""Process-wide metrics: counters, gauges, log-bucketed histograms.

Every serving layer used to keep its own ad-hoc ``stats()`` dict of
plain ints — unreadable as a whole and torn under concurrency (two
fields read at different instants).  This module is the one registry
those layers now write through (DESIGN.md §12):

* a :class:`MetricsRegistry` holds named instruments behind **one
  re-entrant lock**: every update and every :meth:`~MetricsRegistry.
  snapshot` serializes on it, so a snapshot is a consistent
  point-in-time cut across *all* instruments — no torn reads;
* :class:`Histogram` is log-bucketed (geometric buckets, ~19% width)
  with exact ``count``/``sum``/``min``/``max`` and percentile readout
  clamped to the observed ``[min, max]`` — p50/p95/p99 never exceed the
  true maximum, and a constant stream reads back exactly;
* the registry's **clock is injectable** (default
  :func:`time.perf_counter`), so latency tests drive a fake clock and
  assert exact bucket/percentile math;
* :meth:`MetricsRegistry.scope` hands out namespaced handles
  (``serving``, ``serving.2``, … — auto-suffixed per instance), so two
  service instances in one process keep distinct per-instance counters
  while one process-wide snapshot still covers everything.

Instruments are cheap plain-Python objects; there is no background
thread and no third-party dependency.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable

from ..errors import ReproError

#: Geometric bucket growth: 4 buckets per power of two (~19% width), so
#: a bucketed percentile is within one bucket (<19%) of the true value.
_GROWTH = 2.0 ** 0.25
_LOG_GROWTH = math.log(_GROWTH)
#: Bucket index cap: base * _GROWTH**256 = base * 2**64 — any larger
#: observation clamps into the overflow bucket (max stays exact).
_MAX_BUCKET = 256


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str, lock: threading.RLock) -> None:
        self.name = name
        self._lock = lock
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def _state(self) -> int:  # caller holds the registry lock
        return self._value


class Gauge:
    """A number that goes up and down (queue depth, lag, in-flight)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str, lock: threading.RLock) -> None:
        self.name = name
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _state(self) -> float:  # caller holds the registry lock
        return self._value


class Histogram:
    """Log-bucketed distribution with exact min/max/sum/count.

    Observations land in geometric buckets (``base * _GROWTH**i``);
    :meth:`percentile` walks the cumulative counts and returns the
    matched bucket's upper bound clamped to the observed ``[min, max]``
    — so percentiles are within one bucket width (<19%) of the true
    value, never exceed the true max, and a constant stream reads back
    its exact value at every quantile.

    Args:
        base: upper bound of the first bucket.  The default (1µs) suits
            latencies in seconds; count-valued histograms (batch sizes)
            pass ``base=1.0``.
    """

    __slots__ = ("name", "_lock", "_base", "_buckets", "_count", "_sum",
                 "_min", "_max")

    def __init__(self, name: str, lock: threading.RLock,
                 base: float = 1e-6) -> None:
        if base <= 0:
            raise ReproError("histogram base must be positive")
        self.name = name
        self._lock = lock
        self._base = base
        self._buckets: "dict[int, int]" = {}
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def _bucket_of(self, value: float) -> int:
        if value <= self._base:
            return 0
        # ceil with a tiny slack so exact bucket bounds stay in their
        # own bucket instead of spilling into the next one.
        index = int(math.ceil(math.log(value / self._base)
                              / _LOG_GROWTH - 1e-9))
        return min(index, _MAX_BUCKET)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            index = self._bucket_of(value)
            self._buckets[index] = self._buckets.get(index, 0) + 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def max(self) -> float:
        with self._lock:
            return self._max if self._count else 0.0

    @property
    def min(self) -> float:
        with self._lock:
            return self._min if self._count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (``0 < q <= 1``) as a bucket upper bound
        clamped to the observed ``[min, max]``."""
        with self._lock:
            return self._percentile_locked(q)

    def _percentile_locked(self, q: float) -> float:
        if self._count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self._count))
        cumulative = 0
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if cumulative >= rank:
                upper = self._base * (_GROWTH ** index)
                return min(max(upper, self._min), self._max)
        return self._max  # unreachable; defensive

    def _state(self, buckets: bool = False) -> "dict[str, Any]":
        # caller holds the registry lock
        if self._count == 0:
            state = {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                     "avg": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        else:
            state = {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "avg": self._sum / self._count,
                "p50": self._percentile_locked(0.50),
                "p95": self._percentile_locked(0.95),
                "p99": self._percentile_locked(0.99),
            }
        if buckets:
            # Opt-in raw bucket counts (plus the geometric base), so a
            # sampler can diff two snapshots and compute *windowed*
            # percentiles from the bucket-count deltas.  Off by default:
            # the plain state is the stable ``obs_status`` wire shape.
            state["base"] = self._base
            state["buckets"] = dict(self._buckets)
        return state

    @property
    def state(self) -> "dict[str, Any]":
        with self._lock:
            return self._state()


class MetricsRegistry:
    """Named instruments behind one lock, with a consistent snapshot.

    Args:
        clock: monotonic time source used by :meth:`time` (and by the
            components holding a scope, e.g. the batcher's queue-wait
            measurement).  Injectable for deterministic latency tests.
    """

    def __init__(self, clock: "Callable[[], float]" = time.perf_counter
                 ) -> None:
        self.clock = clock
        self._lock = threading.RLock()
        self._instruments: "dict[str, Any]" = {}
        self._scopes: "dict[str, int]" = {}

    # ------------------------------------------------------------------
    # instrument accessors (get-or-create)
    # ------------------------------------------------------------------
    def _get(self, name: str, cls, **kwargs):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(name, self._lock, **kwargs)
                self._instruments[name] = instrument
            elif not isinstance(instrument, cls):
                raise ReproError(
                    f"metric {name!r} is a "
                    f"{type(instrument).__name__}, not a {cls.__name__}")
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, base: float = 1e-6) -> Histogram:
        """Get or create; an existing histogram keeps its original
        ``base`` (first caller wins)."""
        return self._get(name, Histogram, base=base)

    @contextmanager
    def time(self, name: str):
        """Observe the duration of a ``with`` block into histogram
        ``name`` (measured on :attr:`clock`; also observed on error —
        failures have latency too)."""
        start = self.clock()
        try:
            yield
        finally:
            self.histogram(name).observe(self.clock() - start)

    # ------------------------------------------------------------------
    # namespacing
    # ------------------------------------------------------------------
    def scope(self, prefix: str) -> "Scope":
        """A namespaced handle whose instruments live under ``prefix.``.

        Each call mints a distinct namespace: the first gets ``prefix``
        itself, later ones ``prefix.2``, ``prefix.3``, … — so two
        service instances in one process never share (and corrupt) each
        other's per-instance counters, while :meth:`snapshot` still
        covers them all.
        """
        with self._lock:
            nth = self._scopes.get(prefix, 0) + 1
            self._scopes[prefix] = nth
        return Scope(self, prefix if nth == 1 else f"{prefix}.{nth}")

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------
    def snapshot(self, buckets: bool = False) -> "dict[str, Any]":
        """One consistent point-in-time cut of every instrument, sorted
        by name.  Counters/gauges read as numbers, histograms as
        ``{count, sum, min, max, avg, p50, p95, p99}`` dicts — plain
        JSON-encodable values (the ``obs_status`` RPC payload).

        The cut carries a ``"sampled_at"`` key stamped from this
        registry's injectable :attr:`clock`, taken under the same lock —
        so two snapshots diff on a consistent time base without any
        consumer calling wall-clock itself.  With ``buckets=True``
        histogram states additionally expose their raw bucket counts
        (see :meth:`Histogram._state`) for windowed-percentile math.
        """
        with self._lock:
            cut: "dict[str, Any]" = {"sampled_at": self.clock()}
            for name, instrument in self._instruments.items():
                if buckets and isinstance(instrument, Histogram):
                    cut[name] = instrument._state(buckets=True)
                else:
                    cut[name] = instrument._state()
            return dict(sorted(cut.items()))

    def kinds(self) -> "dict[str, str]":
        """Instrument kind (``counter`` / ``gauge`` / ``histogram``) by
        name — how a sampler tells a cumulative counter (derive a rate)
        from a gauge (record the level) without guessing from values."""
        with self._lock:
            return {name: type(instrument).__name__.lower()
                    for name in sorted(self._instruments)
                    for instrument in (self._instruments[name],)}


class Scope:
    """A prefix-namespaced view of a registry (see
    :meth:`MetricsRegistry.scope`)."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry

    @property
    def prefix(self) -> str:
        return self._prefix

    def scope(self, name: str) -> "Scope":
        """A child namespace (itself auto-suffixed if minted twice)."""
        return self._registry.scope(f"{self._prefix}.{name}")

    def counter(self, name: str) -> Counter:
        return self._registry.counter(f"{self._prefix}.{name}")

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(f"{self._prefix}.{name}")

    def histogram(self, name: str, base: float = 1e-6) -> Histogram:
        return self._registry.histogram(f"{self._prefix}.{name}", base=base)

    def time(self, name: str):
        return self._registry.time(f"{self._prefix}.{name}")

    def snapshot(self) -> "dict[str, Any]":
        """This scope's slice of the registry snapshot, prefix stripped
        — the substrate for the legacy per-instance ``stats()`` views
        (one lock acquisition, so the slice is torn-read free)."""
        marker = self._prefix + "."
        with self._registry._lock:
            return {name[len(marker):]: instrument._state()
                    for name, instrument
                    in sorted(self._registry._instruments.items())
                    if name.startswith(marker)}


#: The process-wide default registry: components that are not handed an
#: explicit registry scope themselves here, so one ``obs_status`` call
#: reads the whole process.
_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _GLOBAL
