"""Continuous metric sampling: bounded ring-buffer time series.

A :class:`~repro.obs.metrics.MetricsRegistry` snapshot is a
point-in-time cut; watching a serving process under load needs the cut
*over time*.  The :class:`MetricsCollector` samples a registry on a
fixed interval and keeps, per derived series, a bounded ring of
``(t, value)`` points (DESIGN.md §14):

* **counters** record their raw cumulative value under their own name
  (what the SLO burn-rate math diffs across windows) plus a derived
  ``<name>.rate`` — the per-second delta between consecutive snapshots;
* **gauges** record their level as-is;
* **histograms** record ``<name>.rate`` (observations/second) and
  *windowed* ``<name>.p50`` / ``.p95`` / ``.p99`` — percentiles of only
  the observations that landed **between** the two snapshots, computed
  from the bucket-count deltas (``snapshot(buckets=True)``), so a
  latency regression shows up immediately instead of being averaged
  into the process's lifetime distribution.  Windows with no new
  observations append no percentile points — consumers (the SLO
  engine) must straddle such gaps.

Timestamps come from the snapshot's ``sampled_at`` stamp — the
registry's injectable clock — so the collector never calls wall-clock
itself and fake-clock tests drive exact series.  Sampling is either
manual (:meth:`MetricsCollector.sample`, what tests and the pull-based
``obs_watch`` path use) or a background daemon thread
(:meth:`~MetricsCollector.start`, what ``cli serve --collect-interval``
runs).
"""

from __future__ import annotations

import math
import threading
from typing import Any

from .metrics import _GROWTH, MetricsRegistry, get_registry

_QUANTILES = ((0.50, "p50"), (0.95, "p95"), (0.99, "p99"))


class SeriesRing:
    """A bounded ring of ``(t, value)`` samples, oldest evicted first."""

    __slots__ = ("name", "capacity", "_buf", "_next", "_len")

    def __init__(self, name: str, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("series capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._buf: "list[tuple[float, float] | None]" = [None] * capacity
        self._next = 0
        self._len = 0

    def append(self, t: float, value: float) -> None:
        self._buf[self._next] = (t, value)
        self._next = (self._next + 1) % self.capacity
        if self._len < self.capacity:
            self._len += 1

    def __len__(self) -> int:
        return self._len

    def samples(self) -> "list[tuple[float, float]]":
        """All held samples, oldest first."""
        if self._len < self.capacity:
            return [s for s in self._buf[:self._len]]
        return (self._buf[self._next:] + self._buf[:self._next])  # type: ignore[operator]

    def latest(self) -> "tuple[float, float] | None":
        if self._len == 0:
            return None
        return self._buf[(self._next - 1) % self.capacity]

    def since(self, t0: float) -> "list[tuple[float, float]]":
        """Samples with ``t >= t0``, oldest first."""
        return [s for s in self.samples() if s[0] >= t0]


class MetricsCollector:
    """Samples a registry into per-series rings (see module docstring).

    Args:
        registry: the registry to sample; defaults to the process one.
        interval: seconds between background-thread samples (manual
            :meth:`sample` calls ignore it).
        capacity: ring length per series — at the default 1s interval,
            240 points is four minutes of history per series.
    """

    def __init__(self, registry: "MetricsRegistry | None" = None, *,
                 interval: float = 1.0, capacity: int = 240) -> None:
        if interval <= 0:
            raise ValueError("collector interval must be positive")
        self._registry = registry if registry is not None else get_registry()
        self.interval = interval
        self.capacity = capacity
        self._lock = threading.Lock()
        self._series: "dict[str, SeriesRing]" = {}
        self._prev: "dict[str, Any] | None" = None
        self._thread: "threading.Thread | None" = None
        self._stop = threading.Event()
        self.samples_taken = 0
        self.last_sampled_at: "float | None" = None

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample(self) -> float:
        """Take one sample; returns its ``sampled_at`` timestamp."""
        snap = self._registry.snapshot(buckets=True)
        kinds = self._registry.kinds()
        now = snap["sampled_at"]
        with self._lock:
            prev = self._prev
            self._prev = snap
            self.samples_taken += 1
            self.last_sampled_at = now
            dt = now - prev["sampled_at"] if prev is not None else 0.0
            for name, value in snap.items():
                if name == "sampled_at":
                    continue
                kind = kinds.get(name)
                if kind == "counter":
                    self._append(name, now, value)
                    if prev is not None and dt > 0:
                        before = prev.get(name)
                        if isinstance(before, (int, float)):
                            self._append(f"{name}.rate", now,
                                         (value - before) / dt)
                elif kind == "gauge":
                    self._append(name, now, value)
                elif kind == "histogram":
                    self._sample_histogram(name, value,
                                           prev.get(name) if prev is not None
                                           else None,
                                           now, dt,
                                           first=prev is None)
        return now

    def _sample_histogram(self, name: str, cur: dict,
                          before: "dict | None", now: float, dt: float,
                          first: bool) -> None:
        if first or dt <= 0:
            return
        count_before = before["count"] if isinstance(before, dict) else 0
        count_delta = cur["count"] - count_before
        self._append(f"{name}.rate", now, count_delta / dt)
        if count_delta <= 0:
            return  # an idle window appends no percentile points
        pcts = _windowed_percentiles(cur, before)
        if pcts is None:
            return
        for q, label in _QUANTILES:
            self._append(f"{name}.{label}", now, pcts[q])

    def _append(self, name: str, t: float, value: float) -> None:
        ring = self._series.get(name)
        if ring is None:
            ring = self._series[name] = SeriesRing(name, self.capacity)
        ring.append(t, float(value))

    # ------------------------------------------------------------------
    # background sampling
    # ------------------------------------------------------------------
    def start(self) -> "MetricsCollector":
        """Sample every ``interval`` seconds on a daemon thread."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-collector", daemon=True)
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.sample()
            except Exception:
                pass  # telemetry must never take the serving process down

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=10.0)
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------
    def names(self) -> "list[str]":
        with self._lock:
            return sorted(self._series)

    def series(self, name: str) -> "list[tuple[float, float]]":
        """All held points of one series, oldest first (empty list for
        a series that was never derived)."""
        with self._lock:
            ring = self._series.get(name)
            return ring.samples() if ring is not None else []

    def latest(self, name: str) -> "tuple[float, float] | None":
        with self._lock:
            ring = self._series.get(name)
            return ring.latest() if ring is not None else None

    def window(self, name: str, seconds: float,
               now: "float | None" = None
               ) -> "list[tuple[float, float]]":
        """Points of ``name`` within the trailing ``seconds`` window."""
        with self._lock:
            ring = self._series.get(name)
            if ring is None:
                return []
            if now is None:
                now = self.last_sampled_at
            if now is None:
                return []
            return ring.since(now - seconds)

    def tail(self, points: int = 30, prefix: "str | None" = None
             ) -> "dict[str, list[list[float]]]":
        """The last ``points`` of every series (optionally filtered by
        name prefix) as JSON-encodable ``{name: [[t, v], ...]}`` — the
        ``obs_watch`` payload."""
        with self._lock:
            out = {}
            for name in sorted(self._series):
                if prefix is not None and not name.startswith(prefix):
                    continue
                samples = self._series[name].samples()[-points:]
                out[name] = [[t, v] for t, v in samples]
            return out

    def describe(self) -> "dict[str, Any]":
        with self._lock:
            return {
                "interval": self.interval,
                "capacity": self.capacity,
                "running": self.running,
                "samples_taken": self.samples_taken,
                "last_sampled_at": self.last_sampled_at,
                "series": len(self._series),
            }


def _windowed_percentiles(cur: dict, before: "dict | None"
                          ) -> "dict[float, float] | None":
    """Percentiles of the observations between two bucketed histogram
    states, from their bucket-count deltas.  Like
    :meth:`~repro.obs.metrics.Histogram.percentile`, the readout is the
    matched bucket's upper bound — clamped to the cumulative ``max``
    (the window's own max is unknown, but can never exceed it)."""
    base = cur.get("base")
    cur_buckets = cur.get("buckets")
    if base is None or cur_buckets is None:
        return None  # snapshot taken without buckets=True
    prev_buckets = (before or {}).get("buckets") or {}
    deltas = {}
    for index, count in cur_buckets.items():
        moved = count - prev_buckets.get(index, 0)
        if moved > 0:
            deltas[index] = moved
    total = sum(deltas.values())
    if total == 0:
        return None
    out = {}
    ordered = sorted(deltas)
    for q, _label in _QUANTILES:
        rank = max(1, math.ceil(q * total))
        cumulative = 0
        for index in ordered:
            cumulative += deltas[index]
            if cumulative >= rank:
                upper = base * (_GROWTH ** index)
                out[q] = min(upper, cur["max"])
                break
    return out


#: The process-wide collector.  Unlike the tracer/recorder there is no
#: environment default: continuous sampling is opt-in per process
#: (``cli serve --collect-interval``, the traffic harness, tests).
_COLLECTOR: "MetricsCollector | None" = None


def get_collector() -> "MetricsCollector | None":
    return _COLLECTOR


def configure_collector(registry: "MetricsRegistry | None" = None, *,
                        interval: float = 1.0,
                        capacity: int = 240) -> MetricsCollector:
    """Replace the process-wide collector (stopping the old one's
    thread)."""
    global _COLLECTOR
    if _COLLECTOR is not None:
        _COLLECTOR.stop()
    _COLLECTOR = MetricsCollector(registry, interval=interval,
                                  capacity=capacity)
    return _COLLECTOR
