"""repro.obs: zero-dependency observability for the serving fabric.

Two halves (DESIGN.md §12):

* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  (counters, gauges, log-bucketed latency histograms) behind one lock,
  with namespaced scopes and a consistent JSON-encodable snapshot
  (surfaced by the ``obs_status`` RPC method and ``cli stats
  --connect``);
* :mod:`repro.obs.tracing` — request-scoped :class:`TraceContext`
  propagation across asyncio tasks, worker threads, sockets and spawned
  shard-worker processes, with spans appended to JSON-lines logs and a
  Chrome ``trace_event`` exporter.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Scope,
    get_registry,
)
from .tracing import (
    TRACE_DIR_ENV,
    Span,
    TraceContext,
    Tracer,
    configure_tracer,
    current_context,
    get_tracer,
    load_spans,
    pop_context,
    push_context,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Scope",
    "get_registry",
    "TRACE_DIR_ENV",
    "Span",
    "TraceContext",
    "Tracer",
    "configure_tracer",
    "current_context",
    "get_tracer",
    "load_spans",
    "pop_context",
    "push_context",
    "write_chrome_trace",
]
