"""repro.obs: zero-dependency observability for the serving fabric.

Four parts (DESIGN.md §12, §14):

* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  (counters, gauges, log-bucketed latency histograms) behind one lock,
  with namespaced scopes and a consistent JSON-encodable snapshot
  (surfaced by the ``obs_status`` RPC method and ``cli stats
  --connect``);
* :mod:`repro.obs.tracing` — request-scoped :class:`TraceContext`
  propagation across asyncio tasks, worker threads, sockets and spawned
  shard-worker processes, with spans appended to JSON-lines logs and a
  Chrome ``trace_event`` exporter;
* :mod:`repro.obs.timeseries` + :mod:`repro.obs.slo` — the continuous
  layer: a :class:`MetricsCollector` sampling the registry into bounded
  ring-buffer series (counter rates, windowed histogram percentiles)
  and an :class:`SloEngine` turning declarative latency/error-budget
  specs into multi-window burn-rate verdicts (``obs_watch`` RPC,
  ``cli watch --connect``);
* :mod:`repro.obs.recorder` — the black-box :class:`FlightRecorder`:
  a bounded ring of structured events every serving layer reports
  into, dumped as JSON lines on anomaly or on demand (``obs_dump``
  RPC, ``cli serve --recorder-dir``).
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Scope,
    get_registry,
)
from .recorder import (
    ANOMALY_KINDS,
    RECORDER_DIR_ENV,
    FlightRecorder,
    configure_recorder,
    get_recorder,
)
from .slo import (
    SloEngine,
    SloSpec,
    configure_slo_engine,
    default_slos,
    get_slo_engine,
)
from .timeseries import (
    MetricsCollector,
    SeriesRing,
    configure_collector,
    get_collector,
)
from .tracing import (
    TRACE_DIR_ENV,
    Span,
    TraceContext,
    Tracer,
    configure_tracer,
    current_context,
    get_tracer,
    load_spans,
    pop_context,
    push_context,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Scope",
    "get_registry",
    "ANOMALY_KINDS",
    "RECORDER_DIR_ENV",
    "FlightRecorder",
    "configure_recorder",
    "get_recorder",
    "SloEngine",
    "SloSpec",
    "configure_slo_engine",
    "default_slos",
    "get_slo_engine",
    "MetricsCollector",
    "SeriesRing",
    "configure_collector",
    "get_collector",
    "TRACE_DIR_ENV",
    "Span",
    "TraceContext",
    "Tracer",
    "configure_tracer",
    "current_context",
    "get_tracer",
    "load_spans",
    "pop_context",
    "push_context",
    "write_chrome_trace",
]
