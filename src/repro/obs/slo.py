"""Declarative SLOs with multi-window burn-rate verdicts.

An SLO here is what an on-call rotation would page on (DESIGN.md §14):
a latency target over a collector percentile series, an error budget
over a pair of cumulative counter series, or both.  The
:class:`SloEngine` evaluates specs against a
:class:`~repro.obs.timeseries.MetricsCollector`'s rings and yields one
of four verdicts:

* ``page`` — the error budget is burning at ``page_burn``× or faster in
  **both** the short and the long window (the classic multi-window
  rule: the long window proves the burn is sustained, the short window
  proves it is still happening), or the latency series exceeds
  ``latency_page_factor`` × target;
* ``warn`` — both windows burn at ``warn_burn``× or faster, or latency
  exceeds its target;
* ``healthy`` — data present, no threshold crossed;
* ``unknown`` — not enough samples to say (a collector that never ran,
  or series the spec names that were never derived).

A burn rate of 1.0 means "spending the budget exactly as provisioned";
the window's error fraction is computed from the *raw counter* series
the collector records: the delta between the newest sample and the
nearest sample **at or before the window start** — so a window that
straddles a sampling gap (idle collector, missed ticks) still measures
the true cumulative movement instead of dropping to zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from .timeseries import MetricsCollector

_SEVERITY = {"unknown": 0, "healthy": 1, "warn": 2, "page": 3}


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective over collector series.

    Args:
        name: verdict label (``serving-latency``, ``rpc-errors``, …).
        latency_series: collector series holding the guarded latency
            percentile (e.g. ``aio.batcher.execute_seconds.p95``).
        latency_target: seconds the series must stay at or under.
        latency_page_factor: multiple of the target that escalates a
            latency breach from ``warn`` to ``page``.
        error_series / total_series: *raw cumulative counter* series
            (the collector records counters under their own name)
            whose windowed deltas form the error fraction.
        error_budget: allowed error fraction (0 < budget <= 1); burn
            rate = window error fraction / budget.
        short_window / long_window: trailing windows (seconds) that
            must **both** exceed a threshold to cross it.
        warn_burn / page_burn: burn-rate thresholds.
    """

    name: str
    latency_series: "str | None" = None
    latency_target: "float | None" = None
    latency_page_factor: float = 2.0
    error_series: "str | None" = None
    total_series: "str | None" = None
    error_budget: float = 0.01
    short_window: float = 300.0
    long_window: float = 3600.0
    warn_burn: float = 1.0
    page_burn: float = 10.0

    def __post_init__(self) -> None:
        has_latency = self.latency_series is not None \
            and self.latency_target is not None
        has_errors = self.error_series is not None \
            and self.total_series is not None
        if not has_latency and not has_errors:
            raise ValueError(
                f"SLO {self.name!r} needs a latency objective "
                "(latency_series + latency_target) and/or an error "
                "objective (error_series + total_series)")
        if not 0.0 < self.error_budget <= 1.0:
            raise ValueError("error_budget must be in (0, 1]")
        if self.short_window <= 0 or self.long_window < self.short_window:
            raise ValueError(
                "windows must satisfy 0 < short_window <= long_window")
        if self.warn_burn <= 0 or self.page_burn < self.warn_burn:
            raise ValueError(
                "burn thresholds must satisfy 0 < warn_burn <= page_burn")


def _windowed_delta(samples: "list[tuple[float, float]]", now: float,
                    window: float) -> "float | None":
    """Movement of a cumulative counter over ``[now - window, now]``.

    The baseline is the nearest sample at or before the window start —
    falling back to the oldest held sample when the series begins
    inside the window — so a window straddling missing samples still
    sees the cumulative movement across the gap.  ``None`` when fewer
    than two usable samples exist.
    """
    usable = [s for s in samples if s[0] <= now]
    if len(usable) < 2:
        return None
    start = now - window
    baseline = usable[0]
    for sample in usable:
        if sample[0] <= start:
            baseline = sample
        else:
            break
    newest = usable[-1]
    if newest[0] <= baseline[0]:
        return None
    return newest[1] - baseline[1]


class SloEngine:
    """Evaluates :class:`SloSpec` objectives over one collector."""

    def __init__(self, collector: MetricsCollector,
                 specs: "Iterable[SloSpec]" = ()) -> None:
        self._collector = collector
        self._specs: "list[SloSpec]" = list(specs)

    @property
    def specs(self) -> "list[SloSpec]":
        return list(self._specs)

    def add(self, spec: SloSpec) -> SloSpec:
        self._specs.append(spec)
        return spec

    # ------------------------------------------------------------------
    def evaluate(self, spec: SloSpec,
                 now: "float | None" = None) -> "dict[str, Any]":
        """One spec's verdict dict (JSON-encodable)."""
        if now is None:
            now = self._collector.last_sampled_at
        verdict = "unknown"
        out: "dict[str, Any]" = {"slo": spec.name, "evaluated_at": now}
        if now is None:  # the collector never sampled
            out["verdict"] = verdict
            return out
        latency = self._latency_part(spec, now)
        if latency is not None:
            out["latency"] = latency
            verdict = _worst(verdict, latency["status"])
        errors = self._error_part(spec, now)
        if errors is not None:
            out["error_budget"] = errors
            verdict = _worst(verdict, errors["status"])
        out["verdict"] = verdict
        return out

    def evaluate_all(self, now: "float | None" = None
                     ) -> "list[dict[str, Any]]":
        return [self.evaluate(spec, now=now) for spec in self._specs]

    # ------------------------------------------------------------------
    def _latency_part(self, spec: SloSpec,
                      now: float) -> "dict[str, Any] | None":
        if spec.latency_series is None or spec.latency_target is None:
            return None
        part = {"series": spec.latency_series,
                "target": spec.latency_target}
        points = self._collector.window(spec.latency_series,
                                        spec.long_window, now=now)
        if not points:
            part["status"] = "unknown"
            return part
        t, value = points[-1]
        part["value"] = value
        part["at"] = t
        if value > spec.latency_target * spec.latency_page_factor:
            part["status"] = "page"
        elif value > spec.latency_target:
            part["status"] = "warn"
        else:
            part["status"] = "healthy"
        return part

    def _error_part(self, spec: SloSpec,
                    now: float) -> "dict[str, Any] | None":
        if spec.error_series is None or spec.total_series is None:
            return None
        part: "dict[str, Any]" = {"budget": spec.error_budget,
                                  "windows": {}}
        burns = []
        error_samples = self._collector.series(spec.error_series)
        total_samples = self._collector.series(spec.total_series)
        for label, window in (("short", spec.short_window),
                              ("long", spec.long_window)):
            errors = _windowed_delta(error_samples, now, window)
            total = _windowed_delta(total_samples, now, window)
            burn = None
            fraction = None
            if errors is not None and total is not None and total > 0:
                fraction = errors / total
                burn = fraction / spec.error_budget
                burns.append(burn)
            part["windows"][label] = {"seconds": window, "errors": errors,
                                      "total": total,
                                      "error_fraction": fraction,
                                      "burn": burn}
        if not burns:
            part["status"] = "unknown"
            return part
        # Both windows must cross a threshold (when only one window has
        # data it decides alone): min() over the available burns.
        confirmed = min(burns)
        if confirmed >= spec.page_burn:
            part["status"] = "page"
        elif confirmed >= spec.warn_burn:
            part["status"] = "warn"
        else:
            part["status"] = "healthy"
        return part


def _worst(a: str, b: str) -> str:
    return a if _SEVERITY[a] >= _SEVERITY[b] else b


def default_slos(short_window: float = 30.0,
                 long_window: float = 120.0) -> "list[SloSpec]":
    """The objectives ``cli serve --collect-interval`` watches out of
    the box: micro-batcher execute latency and RPC server errors.  The
    default windows are interactive-scale (seconds, not hours) because
    ``cli watch`` is a live view, not an alerting pipeline."""
    return [
        SloSpec(name="serving-latency",
                latency_series="aio.batcher.execute_seconds.p95",
                latency_target=0.25,
                short_window=short_window, long_window=long_window),
        SloSpec(name="rpc-errors",
                error_series="rpc.server.errors",
                total_series="rpc.server.frames_in",
                error_budget=0.05,
                short_window=short_window, long_window=long_window,
                warn_burn=1.0, page_burn=10.0),
    ]


#: The process-wide engine, configured alongside the collector by
#: ``cli serve --collect-interval`` and surfaced by ``obs_watch``.
_ENGINE: "SloEngine | None" = None


def get_slo_engine() -> "SloEngine | None":
    return _ENGINE


def configure_slo_engine(collector: MetricsCollector,
                         specs: "Iterable[SloSpec] | None" = None
                         ) -> SloEngine:
    """Replace the process-wide engine (``specs=None`` installs
    :func:`default_slos`)."""
    global _ENGINE
    _ENGINE = SloEngine(collector,
                        default_slos() if specs is None else specs)
    return _ENGINE
