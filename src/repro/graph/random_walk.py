"""Random-walk query-doc clustering (paper Algorithm 1, steps 1-4).

From each seed query we propagate probability mass over the bipartite click
graph using the transport probabilities of Eq. (1)-(2), with restart.  A
visited query/document is kept when its visiting probability exceeds
``delta_v`` *and* it shares more than half of the seed query's non-stop
words (the paper's second condition filters drifting walks).
"""

from __future__ import annotations

from collections import defaultdict

from ..config import MiningConfig
from ..text.stopwords import content_words
from ..text.tokenizer import tokenize
from .click_graph import ClickGraph, QueryDocCluster


class RandomWalkClusterer:
    """Builds :class:`QueryDocCluster`s around seed queries."""

    def __init__(self, graph: ClickGraph, config: "MiningConfig | None" = None) -> None:
        self._graph = graph
        self._config = config or MiningConfig()
        self._config.validate()

    def _share_enough_words(self, seed_content: set[str], query: str) -> bool:
        """True if ``query`` covers more than half of the seed content words."""
        if not seed_content:
            return False
        words = set(content_words(tokenize(query)))
        overlap = len(words & seed_content)
        return overlap * 2 >= len(seed_content)

    def cluster(self, seed_query: str) -> QueryDocCluster:
        """Random walk from ``seed_query``; returns the correlated cluster."""
        cfg = self._config
        graph = self._graph

        query_visits: dict[str, float] = defaultdict(float)
        doc_visits: dict[str, float] = defaultdict(float)
        query_visits[seed_query] = 1.0

        frontier = {seed_query: 1.0}
        for _step in range(cfg.walk_steps):
            # Query -> doc half-step; restart mass returns to the seed query.
            doc_frontier: dict[str, float] = defaultdict(float)
            restart_mass = 0.0
            for query, mass in frontier.items():
                restart_mass += mass * cfg.restart_prob
                move = mass * (1.0 - cfg.restart_prob)
                for doc_id, p in graph.p_doc_given_query(query).items():
                    doc_frontier[doc_id] += move * p
            for doc_id, mass in doc_frontier.items():
                doc_visits[doc_id] += mass

            # Doc -> query half-step.
            next_frontier: dict[str, float] = defaultdict(float)
            for doc_id, mass in doc_frontier.items():
                for query, p in graph.p_query_given_doc(doc_id).items():
                    next_frontier[query] += mass * p
            next_frontier[seed_query] += restart_mass
            # Dangling mass (queries with no clicked docs) also restarts.
            leaked = 1.0 - sum(next_frontier.values())
            if leaked > 1e-12:
                next_frontier[seed_query] += leaked
            for query, mass in next_frontier.items():
                query_visits[query] += mass
            frontier = dict(next_frontier)

        # Normalise accumulated visit mass to probabilities.
        q_total = sum(query_visits.values())
        d_total = sum(doc_visits.values())
        query_prob = {q: m / q_total for q, m in query_visits.items()} if q_total else {}
        doc_prob = {d: m / d_total for d, m in doc_visits.items()} if d_total else {}

        seed_content = set(content_words(tokenize(seed_query)))
        kept_queries = [
            (q, p)
            for q, p in query_prob.items()
            if q == seed_query
            or (p >= cfg.visit_threshold and self._share_enough_words(seed_content, q))
        ]
        kept_docs = [(d, p) for d, p in doc_prob.items() if p >= cfg.visit_threshold]

        kept_queries.sort(key=lambda item: (-item[1], item[0]))
        kept_docs.sort(key=lambda item: (-item[1], item[0]))
        kept_queries = kept_queries[: cfg.max_cluster_queries]
        kept_docs = kept_docs[: cfg.max_cluster_docs]

        return QueryDocCluster(
            seed_query=seed_query,
            queries=[q for q, _ in kept_queries],
            doc_ids=[d for d, _ in kept_docs],
            query_weights=dict(kept_queries),
            doc_weights=dict(kept_docs),
        )

    def cluster_all(self, seed_queries: "list[str] | None" = None) -> list[QueryDocCluster]:
        """Cluster every (or the given) seed query."""
        seeds = seed_queries if seed_queries is not None else self._graph.queries()
        return [self.cluster(q) for q in seeds]
