"""Query-Title Interaction Graph (paper Section 3.1, Algorithm 2).

A QTIG merges the tokens of a query-title cluster into a single graph:

* one node per unique token, plus virtual ``<sos>`` / ``<eos>`` nodes
  prepended/appended to every input text;
* a bi-directional ``seq`` edge between tokens adjacent in any input;
* a bi-directional typed edge for every syntactic dependency between
  non-adjacent tokens;
* **first-edge-kept policy**: a node pair is connected by at most one edge —
  the first one constructed wins.  Since texts are visited in descending
  random-walk weight and seq edges are added before dependency edges, this
  realises the paper's preference order (seq > dependency, high-weight text >
  low-weight text).

The class also produces the *decoding variant* used by ATSP-decoding:
uni-directional seq edges following input order, ``sos`` wired to the first
predicted-positive token of each text and the last positive token of each
text wired to ``eos``; pairwise distances are BFS shortest paths.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..errors import GraphError
from ..text.dependency import DependencyParser, DependencyArc

RELATION_SEQ = "seq"
RELATION_INV_SUFFIX = "_inv"

SOS, EOS = "<sos>", "<eos>"


@dataclass
class QueryTitleGraph:
    """The constructed interaction graph.

    Attributes:
        tokens: node id -> token surface (ids 0 and 1 are ``<sos>``/``<eos>``).
        node_ids: token surface -> node id.
        edges: directed forward edges (u, v) -> relation label.  Every edge
            implicitly has an inverse counterpart (label + ``_inv``).
        texts: the input texts as lists of node ids **including** sos/eos.
        text_kinds: per text, ``"query"`` or ``"title"``.
    """

    tokens: list[str] = field(default_factory=lambda: [SOS, EOS])
    node_ids: dict[str, int] = field(default_factory=lambda: {SOS: 0, EOS: 1})
    edges: dict[tuple[int, int], str] = field(default_factory=dict)
    texts: list[list[int]] = field(default_factory=list)
    text_kinds: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # node/edge helpers
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.tokens)

    @property
    def sos_id(self) -> int:
        return 0

    @property
    def eos_id(self) -> int:
        return 1

    def node_id(self, token: str) -> int:
        try:
            return self.node_ids[token]
        except KeyError:
            raise GraphError(f"token {token!r} not in graph") from None

    def _intern(self, token: str) -> int:
        idx = self.node_ids.get(token)
        if idx is None:
            idx = len(self.tokens)
            self.node_ids[token] = idx
            self.tokens.append(token)
        return idx

    def _pair_connected(self, u: int, v: int) -> bool:
        return (u, v) in self.edges or (v, u) in self.edges

    def _add_edge(self, u: int, v: int, label: str) -> bool:
        """Add a forward edge unless the pair is already connected."""
        if u == v or self._pair_connected(u, v):
            return False
        self.edges[(u, v)] = label
        return True

    # ------------------------------------------------------------------
    # relations and adjacency for the R-GCN
    # ------------------------------------------------------------------
    def relation_labels(self) -> list[str]:
        """Sorted distinct forward labels present in the graph."""
        return sorted(set(self.edges.values()))

    def adjacency_matrices(self, relation_vocab: "list[str] | None" = None
                           ) -> tuple[list[np.ndarray], list[str]]:
        """Per-relation row-normalised adjacency matrices.

        Each forward label contributes two relations (forward + ``_inv``).
        ``A_r[v, u] = 1`` means node v receives a message from node u.

        Args:
            relation_vocab: optional fixed forward-label vocabulary so that
                different graphs share relation indices (required when one
                trained model processes many graphs).  Labels in the graph
                but not in the vocabulary are mapped to the first label.
        """
        from ..nn.rgcn import normalize_adjacency

        labels = relation_vocab if relation_vocab is not None else self.relation_labels()
        if not labels:
            labels = [RELATION_SEQ]
        index = {lab: i for i, lab in enumerate(labels)}
        n = self.num_nodes
        num_rel = 2 * len(labels)
        mats = [np.zeros((n, n)) for _ in range(num_rel)]
        for (u, v), label in self.edges.items():
            r = index.get(label, 0)
            mats[2 * r][v, u] = 1.0  # forward: v receives from u
            mats[2 * r + 1][u, v] = 1.0  # inverse: u receives from v
        mats = [normalize_adjacency(m) for m in mats]
        relation_names = []
        for lab in labels:
            relation_names.append(lab)
            relation_names.append(lab + RELATION_INV_SUFFIX)
        return mats, relation_names

    # ------------------------------------------------------------------
    # decoding variant + distances (for ATSP decoding)
    # ------------------------------------------------------------------
    def decoding_adjacency(self, positive_nodes: "set[int] | list[int]") -> dict[int, set[int]]:
        """Directed successor sets of the ATSP-decoding variant."""
        positive = set(positive_nodes)
        succ: dict[int, set[int]] = {i: set() for i in range(self.num_nodes)}
        for text in self.texts:
            body = [t for t in text if t not in (self.sos_id, self.eos_id)]
            for a, b in zip(body, body[1:]):
                succ[a].add(b)
            pos_in_text = [t for t in body if t in positive]
            if pos_in_text:
                succ[self.sos_id].add(pos_in_text[0])
                succ[pos_in_text[-1]].add(self.eos_id)
        return succ

    def decoding_distances(self, nodes: list[int],
                           positive_nodes: "set[int] | list[int]") -> np.ndarray:
        """Pairwise BFS shortest-path distances between ``nodes``.

        Unreachable pairs get a large finite penalty (2 * num_nodes) so the
        ATSP solver still returns a tour.
        """
        succ = self.decoding_adjacency(positive_nodes)
        n = self.num_nodes
        penalty = float(2 * n + 1)
        out = np.full((len(nodes), len(nodes)), penalty)
        for i, source in enumerate(nodes):
            dist = self._bfs(succ, source)
            for j, target in enumerate(nodes):
                if i == j:
                    out[i, j] = 0.0
                elif dist[target] >= 0:
                    out[i, j] = float(dist[target])
        return out

    def _bfs(self, succ: dict[int, set[int]], source: int) -> list[int]:
        dist = [-1] * self.num_nodes
        dist[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for v in succ[u]:
                if dist[v] < 0:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return dist


def build_qtig(queries: list[list[str]], titles: list[list[str]],
               parser: "DependencyParser | None" = None,
               keep_all_edges: bool = False) -> QueryTitleGraph:
    """Construct a QTIG from tokenized queries and titles (Algorithm 2).

    Args:
        queries: tokenized queries, ordered by descending random-walk weight.
        titles: tokenized document titles, same ordering.
        parser: dependency parser (a default rule parser when omitted).
        keep_all_edges: disable the first-edge-kept policy (ablation knob;
            the paper reports first-edge-kept works better).

    Returns:
        The interaction graph.
    """
    parser = parser or DependencyParser()
    graph = QueryTitleGraph()

    all_texts = [(q, "query") for q in queries] + [(t, "title") for t in titles]

    # Pass 1: nodes + seq edges (paper Algorithm 2, lines 2-7).
    for tokens, kind in all_texts:
        ids = [graph.sos_id] + [graph._intern(t) for t in tokens] + [graph.eos_id]
        graph.texts.append(ids)
        graph.text_kinds.append(kind)
        for a, b in zip(ids, ids[1:]):
            if keep_all_edges:
                graph.edges.setdefault((a, b), RELATION_SEQ)
            else:
                graph._add_edge(a, b, RELATION_SEQ)

    # Pass 2: dependency edges (lines 8-12).
    for tokens, _kind in all_texts:
        if not tokens:
            continue
        arcs: list[DependencyArc] = parser.parse(tokens)
        for arc in arcs:
            u = graph.node_ids[tokens[arc.head]]
            v = graph.node_ids[tokens[arc.dependent]]
            if keep_all_edges:
                graph.edges.setdefault((u, v), arc.label)
            else:
                graph._add_edge(u, v, arc.label)

    return graph
