"""Click-graph substrate: bipartite search click graph, random-walk
query-doc clustering (paper Eq. 1-2), and the Query-Title Interaction Graph
(paper Algorithm 2) with its ATSP-decoding variant.
"""

from .click_graph import ClickGraph, QueryDocCluster
from .random_walk import RandomWalkClusterer
from .qtig import QueryTitleGraph, build_qtig, RELATION_SEQ, RELATION_INV_SUFFIX

__all__ = [
    "ClickGraph",
    "QueryDocCluster",
    "RandomWalkClusterer",
    "QueryTitleGraph",
    "build_qtig",
    "RELATION_SEQ",
    "RELATION_INV_SUFFIX",
]
