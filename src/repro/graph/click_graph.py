"""Bipartite search click graph.

The click graph G_sc = (Q, D, E) records how often each query led to a click
on each document (paper Section 3.1, "Problem Definition").  Transport
probabilities between a query and its clicked documents follow Eq. (1)-(2):

    P(d_j | q_i) = c(q_i, d_j) / sum_k c(q_i, d_k)
    P(q_i | d_j) = c(q_i, d_j) / sum_k c(q_k, d_j)
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..errors import GraphError


@dataclass
class QueryDocCluster:
    """A cluster of correlated queries and documents around a seed query.

    Queries and docs are ordered by descending random-walk weight — QTIG
    construction relies on this order (higher-weighted text wins edge ties).
    """

    seed_query: str
    queries: list[str] = field(default_factory=list)
    doc_ids: list[str] = field(default_factory=list)
    query_weights: dict[str, float] = field(default_factory=dict)
    doc_weights: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.seed_query and self.seed_query not in self.queries:
            self.queries.insert(0, self.seed_query)
            self.query_weights.setdefault(self.seed_query, 1.0)


class ClickGraph:
    """Mutable bipartite click graph with cached transport probabilities."""

    def __init__(self) -> None:
        self._clicks: dict[str, dict[str, float]] = defaultdict(dict)  # q -> d -> count
        self._reverse: dict[str, dict[str, float]] = defaultdict(dict)  # d -> q -> count
        self._doc_titles: dict[str, str] = {}
        self._doc_categories: dict[str, str] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_click(self, query: str, doc_id: str, count: float = 1.0,
                  title: "str | None" = None, category: "str | None" = None) -> None:
        """Record ``count`` clicks from ``query`` to ``doc_id``."""
        if count <= 0:
            raise GraphError("click count must be positive")
        self._clicks[query][doc_id] = self._clicks[query].get(doc_id, 0.0) + count
        self._reverse[doc_id][query] = self._reverse[doc_id].get(query, 0.0) + count
        if title is not None:
            self._doc_titles[doc_id] = title
        if category is not None:
            self._doc_categories[doc_id] = category

    def set_title(self, doc_id: str, title: str) -> None:
        self._doc_titles[doc_id] = title

    def set_category(self, doc_id: str, category: str) -> None:
        self._doc_categories[doc_id] = category

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_queries(self) -> int:
        return len(self._clicks)

    @property
    def num_docs(self) -> int:
        return len(self._reverse)

    @property
    def num_edges(self) -> int:
        return sum(len(docs) for docs in self._clicks.values())

    def queries(self) -> list[str]:
        return list(self._clicks.keys())

    def doc_ids(self) -> list[str]:
        return list(self._reverse.keys())

    def title(self, doc_id: str) -> str:
        return self._doc_titles.get(doc_id, "")

    def category(self, doc_id: str) -> "str | None":
        return self._doc_categories.get(doc_id)

    def clicks(self, query: str, doc_id: str) -> float:
        """c(q, d): number of recorded clicks on the pair."""
        return self._clicks.get(query, {}).get(doc_id, 0.0)

    def docs_for_query(self, query: str) -> dict[str, float]:
        """N(q): clicked documents of ``query`` with counts."""
        return dict(self._clicks.get(query, {}))

    def queries_for_doc(self, doc_id: str) -> dict[str, float]:
        """N(d): queries that clicked ``doc_id`` with counts."""
        return dict(self._reverse.get(doc_id, {}))

    # ------------------------------------------------------------------
    # transport probabilities (Eq. 1-2)
    # ------------------------------------------------------------------
    def p_doc_given_query(self, query: str) -> dict[str, float]:
        """P(d | q) over clicked docs of ``query``."""
        docs = self._clicks.get(query)
        if not docs:
            return {}
        total = sum(docs.values())
        return {d: c / total for d, c in docs.items()}

    def p_query_given_doc(self, doc_id: str) -> dict[str, float]:
        """P(q | d) over queries of ``doc_id``."""
        queries = self._reverse.get(doc_id)
        if not queries:
            return {}
        total = sum(queries.values())
        return {q: c / total for q, c in queries.items()}

    def merge(self, other: "ClickGraph") -> None:
        """Fold another day's click graph into this one."""
        for query, docs in other._clicks.items():
            for doc_id, count in docs.items():
                self.add_click(query, doc_id, count)
        self._doc_titles.update(other._doc_titles)
        self._doc_categories.update(other._doc_categories)
