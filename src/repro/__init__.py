"""repro — a full reproduction of GIANT: Scalable Creation of a Web-scale
Ontology (Liu, Guo, Niu et al., SIGMOD 2020).

Public API overview::

    from repro import (
        GiantPipeline,            # end-to-end: click logs -> ontology deltas
        AttentionOntology,        # the ontology DAG (façade over the store)
        OntologyStore,            # indexed storage engine + deltas
        OntologyService,          # online serving: batched tagging/queries
        AsyncOntologyService,     # asyncio front: micro-batched streams
        ClusterService,           # sharded scatter-gather serving tier
        RemoteClusterService,     # shards in follower-fed worker processes
        TaggingWorkerPool,        # multi-process tagging over replicas
        DeltaLog, SnapshotCatalog,  # durable segmented WAL + compaction
        GCTSPNet,                 # the paper's phrase-mining model
        build_world, QueryLogGenerator,  # synthetic click-log substrate
    )

Subpackages:
    repro.core       — ontology store/façade, GCTSP-Net, mining,
                       derivation, linking
    repro.graph      — click graph, random-walk clustering, QTIG
    repro.tsp        — ATSP solvers for ATSP-decoding
    repro.nn         — numpy autograd, R-GCN, LSTM-CRF, seq2seq, Duet, GBDT
    repro.text       — tokenizer, POS, NER, dependency parser, TF-IDF
    repro.synth      — synthetic world + query-log generators
    repro.datasets   — CMD / EMD builders
    repro.baselines  — TextRank, AutoPhrase, Match/Align, LSTM-CRF, ...
    repro.apps       — story trees, document tagging, query understanding,
                       feed-recommendation CTR simulation
    repro.serving    — OntologyService: batched online tagging/query APIs,
                       LRU caching, incremental delta refresh; the
                       asyncio micro-batching front + JSON RPC wrapper
    repro.cluster    — sharded cluster tier: hash-partitioned stores,
                       scatter-gather ClusterService, multi-process
                       tagging workers, remote shard worker processes
    repro.replication — durable segmented delta log, snapshot catalog,
                       log publisher/followers (the system of record)
    repro.obs        — process-wide metrics registry (counters, gauges,
                       latency histograms) and cross-process request
                       tracing with Chrome trace_event export
    repro.eval       — metrics and table/figure rendering
"""

from .cluster import ClusterService, RemoteClusterService, TaggingWorkerPool
from .config import GiantConfig, MiningConfig, LinkingConfig, GCTSPConfig
from .core.gctsp import GCTSPNet
from .core.ontology import AttentionOntology, NodeType, EdgeType
from .core.store import OntologyStore, OntologyDelta
from .pipeline import GiantPipeline, PipelineReport
from .replication import (
    DeltaLog,
    LogFollower,
    LogPublisher,
    SnapshotCatalog,
)
from .serving import AsyncOntologyService, OntologyService
from .synth.world import build_world, WorldConfig
from .synth.querylog import QueryLogGenerator

__version__ = "1.0.0"

__all__ = [
    "GiantConfig",
    "MiningConfig",
    "LinkingConfig",
    "GCTSPConfig",
    "GCTSPNet",
    "AttentionOntology",
    "NodeType",
    "EdgeType",
    "OntologyStore",
    "OntologyDelta",
    "OntologyService",
    "AsyncOntologyService",
    "ClusterService",
    "RemoteClusterService",
    "TaggingWorkerPool",
    "DeltaLog",
    "SnapshotCatalog",
    "LogPublisher",
    "LogFollower",
    "GiantPipeline",
    "PipelineReport",
    "build_world",
    "WorldConfig",
    "QueryLogGenerator",
    "__version__",
]
