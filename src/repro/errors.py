"""Exception hierarchy for the repro (GIANT reproduction) library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """Raised when a configuration value is invalid or inconsistent."""


class GraphError(ReproError):
    """Raised for malformed click graphs or query-title interaction graphs."""


class OntologyError(ReproError):
    """Raised for invalid ontology operations (cycles, unknown nodes, ...)."""


class TrainingError(ReproError):
    """Raised when a model cannot be trained (empty dataset, shape errors)."""


class DecodingError(ReproError):
    """Raised when ATSP decoding cannot produce a valid phrase ordering."""
