"""Exception hierarchy for the repro (GIANT reproduction) library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """Raised when a configuration value is invalid or inconsistent."""


class GraphError(ReproError):
    """Raised for malformed click graphs or query-title interaction graphs."""


class OntologyError(ReproError):
    """Raised for invalid ontology operations (cycles, unknown nodes, ...)."""


class DeltaGapError(ReproError):
    """Raised by serving-tier ``refresh``, ``OntologyStore.bootstrap`` and
    the replication log when a delta stream is not contiguous with the
    consumer's version: either versions are *missing* (a gap) or a batch
    *straddles* the consumer's version (an overlap — part of the batch is
    already folded into the state, so replaying it would double-apply)."""

    @classmethod
    def for_stream(cls, role: str, at_version: int,
                   base_version: int) -> "DeltaGapError":
        """The standard gap message shared by every refresh path."""
        return cls(
            f"delta stream gap: {role} is at version {at_version} but "
            f"the next delta starts at {base_version}; missing versions "
            f"{at_version + 1}..{base_version}"
        )

    @classmethod
    def check(cls, role: str, at_version: int, delta) -> bool:
        """The shared stream-contiguity guard every delta consumer
        applies before touching state: returns ``False`` when ``delta``
        is a fully-covered duplicate (skip it), ``True`` when it starts
        exactly at ``at_version`` (apply it), and raises the gap or
        overlap error otherwise."""
        if delta.version <= at_version:
            return False
        if delta.base_version > at_version:
            raise cls.for_stream(role, at_version, delta.base_version)
        if delta.base_version < at_version:
            raise cls.for_overlap(role, at_version, delta.base_version,
                                  delta.version)
        return True

    @classmethod
    def for_overlap(cls, role: str, at_version: int, base_version: int,
                    version: int) -> "DeltaGapError":
        """The standard overlap message: a batch whose base version
        predates the consumer's state but whose end is ahead of it —
        versions ``base_version + 1..at_version`` are already applied
        (e.g. folded into a snapshot), so the batch can be neither
        skipped nor replayed."""
        return cls(
            f"delta stream overlap: {role} is at version {at_version} but "
            f"the next delta spans {base_version + 1}..{version}; versions "
            f"{base_version + 1}..{at_version} are already applied and "
            f"would double-apply — re-fetch a tail starting at "
            f"{at_version}"
        )


class RingEpochError(DeltaGapError):
    """Raised when a single-shard follower meets a ring-epoch flip it
    cannot apply locally: the new consistent-hash placement moves node
    records *into* its shard, and their state lives on other shards.
    Subclasses :class:`DeltaGapError` because the recovery is the same —
    re-bootstrap from the newest snapshot plus the log tail, which
    crosses the flip with the full store in hand."""


class ShardUnavailableError(ReproError):
    """Raised when a shard worker's connection fails mid-call — the
    socket broke, the peer closed it, or the worker process died.  The
    typed error (instead of a raw ``OSError`` escaping to the serving
    caller) carries the shard id so the cluster's recovery path knows
    which worker to respawn before retrying the read."""

    def __init__(self, shard_id: int, message: str) -> None:
        super().__init__(message)
        self.shard_id = shard_id


class SegmentIntegrityError(OntologyError):
    """Raised when a columnar segment (a snapshot file or a binary wire
    message) fails structural validation — bad magic, an unsupported
    format version, a footer checksum mismatch, or truncation.  Named so
    readonly catalog/log opens surface corruption as a typed refusal
    instead of a struct unpack traceback; recovery is to fall back to an
    older snapshot or re-fetch, never to trust partial columns."""


class TrainingError(ReproError):
    """Raised when a model cannot be trained (empty dataset, shape errors)."""


class DecodingError(ReproError):
    """Raised when ATSP decoding cannot produce a valid phrase ordering."""
