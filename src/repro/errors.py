"""Exception hierarchy for the repro (GIANT reproduction) library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """Raised when a configuration value is invalid or inconsistent."""


class GraphError(ReproError):
    """Raised for malformed click graphs or query-title interaction graphs."""


class OntologyError(ReproError):
    """Raised for invalid ontology operations (cycles, unknown nodes, ...)."""


class DeltaGapError(ReproError):
    """Raised by serving-tier ``refresh`` when the delta stream skips
    versions: the replica cannot advance without the missing batches."""

    @classmethod
    def for_stream(cls, role: str, at_version: int,
                   base_version: int) -> "DeltaGapError":
        """The standard gap message shared by every refresh path."""
        return cls(
            f"delta stream gap: {role} is at version {at_version} but "
            f"the next delta starts at {base_version}; missing versions "
            f"{at_version + 1}..{base_version}"
        )


class TrainingError(ReproError):
    """Raised when a model cannot be trained (empty dataset, shape errors)."""


class DecodingError(ReproError):
    """Raised when ATSP decoding cannot produce a valid phrase ordering."""
