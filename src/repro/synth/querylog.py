"""Search-click-log generation from a ground-truth world.

Each simulated day produces:

* **clicks** — (query, doc_id, title, category, count) records forming the
  day's bipartite click graph.  Click counts are Zipf-distributed; titles
  contain concept tokens in order but interleaved with modifier tokens (the
  paper's query-title alignment signal, Figure 3) and event headlines carry
  a subtitle structure (commas) for CoverRank.
* **sessions** — consecutive-query pairs per simulated user; concept query
  followed by a member-entity query is the positive signal of the paper's
  Figure 4 (concept-entity isA classifier training data).
* **entity co-queries** — "x vs y" queries whose entity pairs share a
  concept (the correlate-edge signal).

Everything is deterministic given the world's config seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import make_rng
from ..text.tokenizer import tokenize
from .vocab import (
    CONCEPT_MODIFIERS,
    CONCEPT_QUERY_TEMPLATES,
    CONCEPT_TITLE_TEMPLATES,
    ENTITY_TITLE_TEMPLATES,
    EVENT_QUERY_TEMPLATES,
    EVENT_TITLE_TEMPLATES,
)
from .world import ConceptSpec, EventSpec, World


@dataclass(frozen=True)
class ClickRecord:
    """One aggregated (query, document) click edge for a day."""

    query: str
    doc_id: str
    title: str
    category: str  # leaf category label of the document
    count: int


@dataclass
class LogDay:
    """All log artifacts of one simulated day."""

    day: int
    clicks: list[ClickRecord] = field(default_factory=list)
    sessions: list[tuple[str, str]] = field(default_factory=list)
    event_ids: list[str] = field(default_factory=list)

    @property
    def queries(self) -> list[str]:
        seen: dict[str, None] = {}
        for rec in self.clicks:
            seen.setdefault(rec.query, None)
        return list(seen)


def mention_with_insertion(phrase: str, modifier: "str | None") -> str:
    """Insert ``modifier`` inside the phrase (before its last two tokens).

    "hayao miyazaki animated films" + "famous" ->
    "hayao miyazaki famous animated films" — concept tokens stay in order
    but are no longer a contiguous span (paper Figure 3).
    """
    tokens = phrase.split()
    if modifier is None or len(tokens) < 3:
        return phrase if modifier is None else f"{modifier} {phrase}"
    cut = max(1, len(tokens) - 2)
    return " ".join(tokens[:cut] + [modifier] + tokens[cut:])


class QueryLogGenerator:
    """Generates day-by-day click logs from a :class:`World`."""

    def __init__(self, world: World, seed: "int | None" = None,
                 concepts_per_day: "int | None" = None,
                 zipf_exponent: float = 1.3, base_clicks: int = 60) -> None:
        self._world = world
        self._rng = make_rng(world.config.seed if seed is None else seed)
        self._concepts_per_day = concepts_per_day
        self._zipf_exponent = zipf_exponent
        self._base_clicks = base_clicks
        self._doc_counter = 0

    # ------------------------------------------------------------------
    def _new_doc_id(self, day: int) -> str:
        self._doc_counter += 1
        return f"d{day:03d}_{self._doc_counter:06d}"

    def _zipf_counts(self, n: int) -> list[int]:
        """Zipf-shaped click counts for n ranked documents."""
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** (-self._zipf_exponent)
        counts = np.maximum(1, (self._base_clicks * weights)).astype(int)
        return counts.tolist()

    # ------------------------------------------------------------------
    def _concept_day_records(self, concept: ConceptSpec, day: int
                             ) -> tuple[list[ClickRecord], list[tuple[str, str]]]:
        rng = self._rng
        leaf_category = concept.category[2]
        records: list[ClickRecord] = []

        num_queries = int(rng.integers(2, min(4, len(CONCEPT_QUERY_TEMPLATES)) + 1))
        query_idx = rng.choice(len(CONCEPT_QUERY_TEMPLATES), size=num_queries, replace=False)
        queries = [CONCEPT_QUERY_TEMPLATES[i].format(concept.phrase) for i in query_idx]

        # Concept-level documents: titles mention the concept, sometimes with
        # an inserted modifier token.
        titles: list[tuple[str, str]] = []  # (title, category)
        num_docs = int(rng.integers(2, 4))
        title_idx = rng.choice(len(CONCEPT_TITLE_TEMPLATES), size=num_docs, replace=False)
        for i in title_idx:
            modifier = (
                str(rng.choice(list(CONCEPT_MODIFIERS)))
                if rng.random() < 0.5
                else None
            )
            mention = mention_with_insertion(concept.phrase, modifier)
            titles.append((CONCEPT_TITLE_TEMPLATES[i].format(mention), leaf_category))

        # Entity-level documents: a couple of member-entity docs.
        members = list(concept.members)
        member_count = min(2, len(members))
        member_idx = rng.choice(len(members), size=member_count, replace=False)
        for i in member_idx:
            entity = members[int(i)]
            template = str(rng.choice(list(ENTITY_TITLE_TEMPLATES)))
            titles.append(
                (template.format(entity=entity, concept=concept.phrase), leaf_category)
            )

        counts = self._zipf_counts(len(titles))
        doc_ids = [self._new_doc_id(day) for _ in titles]
        for query in queries:
            for (title, category), doc_id, count in zip(titles, doc_ids, counts):
                # Every query clicks every doc with a per-query jitter.
                jitter = int(rng.integers(0, 5))
                records.append(
                    ClickRecord(query, doc_id, title, category, max(1, count - jitter))
                )

        # Sessions: concept query followed by a member entity query.
        sessions: list[tuple[str, str]] = []
        for i in member_idx:
            entity = members[int(i)]
            sessions.append((queries[0], entity))
        return records, sessions

    # ------------------------------------------------------------------
    def _event_day_records(self, event: EventSpec, day: int) -> list[ClickRecord]:
        rng = self._rng
        leaf_category = event.category[2]
        records: list[ClickRecord] = []
        phrase = event.phrase
        if event.location and rng.random() < 0.7:
            phrase = f"{phrase} in {event.location}"

        num_queries = int(rng.integers(1, len(EVENT_QUERY_TEMPLATES) + 1))
        query_idx = rng.choice(len(EVENT_QUERY_TEMPLATES), size=num_queries, replace=False)
        queries = [EVENT_QUERY_TEMPLATES[i].format(event.phrase) for i in query_idx]
        # An entity+trigger shorthand query, like real user behaviour.
        queries.append(f"{event.entity} {event.trigger}")

        num_titles = int(rng.integers(2, 4))
        title_idx = rng.choice(len(EVENT_TITLE_TEMPLATES), size=num_titles, replace=False)
        titles = [EVENT_TITLE_TEMPLATES[i].format(phrase) for i in title_idx]
        counts = self._zipf_counts(len(titles))
        doc_ids = [self._new_doc_id(day) for _ in titles]
        for query in queries:
            for title, doc_id, count in zip(titles, doc_ids, counts):
                jitter = int(rng.integers(0, 3))
                records.append(
                    ClickRecord(query, doc_id, title, leaf_category, max(1, count - jitter))
                )
        return records

    # ------------------------------------------------------------------
    def _entity_co_queries(self, day: int) -> list[ClickRecord]:
        """Queries mentioning two correlated entities ("x vs y")."""
        rng = self._rng
        records: list[ClickRecord] = []
        concepts = list(self._world.concepts.values())
        num = max(1, len(concepts) // 3)
        chosen = rng.choice(len(concepts), size=min(num, len(concepts)), replace=False)
        for i in chosen:
            concept = concepts[int(i)]
            if len(concept.members) < 2:
                continue
            pair_idx = rng.choice(len(concept.members), size=2, replace=False)
            a, b = (concept.members[int(j)] for j in pair_idx)
            query = f"{a} vs {b}"
            title = f"comparison : {a} vs {b} , which is better"
            records.append(
                ClickRecord(query, self._new_doc_id(day), title,
                            concept.category[2], int(rng.integers(3, 20)))
            )
        return records

    # ------------------------------------------------------------------
    def generate_day(self, day: int) -> LogDay:
        """Generate one day's log."""
        world = self._world
        log = LogDay(day=day)

        concepts = list(world.concepts.values())
        if self._concepts_per_day is not None and self._concepts_per_day < len(concepts):
            idx = self._rng.choice(len(concepts), size=self._concepts_per_day, replace=False)
            concepts = [concepts[int(i)] for i in idx]
        for concept in concepts:
            records, sessions = self._concept_day_records(concept, day)
            log.clicks.extend(records)
            log.sessions.extend(sessions)

        for event in world.events_on_day(day):
            log.clicks.extend(self._event_day_records(event, day))
            log.event_ids.append(event.event_id)

        log.clicks.extend(self._entity_co_queries(day))
        return log

    def generate_days(self, num_days: "int | None" = None) -> list[LogDay]:
        """Generate the full day range of the world config."""
        total = num_days if num_days is not None else self._world.config.num_days
        return [self.generate_day(d) for d in range(total)]


def build_click_graph(days: "list[LogDay]"):
    """Aggregate log days into a single :class:`ClickGraph`."""
    from ..graph.click_graph import ClickGraph

    graph = ClickGraph()
    for day in days:
        for rec in day.clicks:
            graph.add_click(rec.query, rec.doc_id, rec.count,
                            title=rec.title, category=rec.category)
    return graph
