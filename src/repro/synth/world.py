"""Ground-truth world construction.

A :class:`World` is the synthetic substitute for "reality as seen through
Tencent's query logs": a category hierarchy, entity gazetteer, ground-truth
concepts (entity groups with natural-language names), timed events and their
topics.  Generators in :mod:`repro.synth.querylog` emit logs *from* this
world; evaluation measures how much of the world GIANT recovers.

Scale is controlled by :class:`WorldConfig` — seed domains are hand-written
(mirroring the paper's showcase tables) and procedural domains are stamped
out from pronounceable generated vocabulary until the requested size is
reached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import make_rng
from ..text.ner import NerTagger
from ..text.pos import PosTagger
from ..text.tokenizer import tokenize
from .vocab import DOMAINS, LOCATIONS, ConceptSeed, DomainSpec, EventTemplate

_SYLLABLES = (
    "ka", "lor", "vin", "mek", "tra", "zu", "bel", "dor", "fi", "gan",
    "hu", "jin", "kel", "lu", "mor", "nex", "pol", "qui", "rud", "sol",
    "tam", "ul", "vex", "wil", "xan", "yor", "zet", "bri", "cas", "del",
)

_PRODUCT_NOUNS = (
    "routers", "drones", "laptops", "cameras", "speakers", "tablets",
    "monitors", "keyboards", "headsets", "printers", "scooters", "watches",
    "consoles", "projectors", "chargers",
)

_MODIFIERS = (
    "premium", "compact", "wireless", "vintage", "portable", "rugged",
    "budget", "flagship", "smart", "foldable",
)

_EXTRA_TRIGGERS = (
    ("launches", "launch events"),
    ("recalls", "recall events"),
    ("discontinues", "discontinuation events"),
    ("upgrades", "upgrade events"),
)


@dataclass(frozen=True)
class EntitySpec:
    """A ground-truth entity."""

    name: str
    entity_type: str
    domain: str
    category: tuple[str, str, str]

    @property
    def tokens(self) -> list[str]:
        return tokenize(self.name)


@dataclass(frozen=True)
class ConceptSpec:
    """A ground-truth concept: named group of entities."""

    phrase: str
    members: tuple[str, ...]
    domain: str
    category: tuple[str, str, str]

    @property
    def tokens(self) -> list[str]:
        return tokenize(self.phrase)


@dataclass(frozen=True)
class EventSpec:
    """A ground-truth event instance."""

    event_id: str
    phrase: str
    entity: str
    trigger: str
    location: "str | None"
    day: int
    topic: str
    domain: str
    category: tuple[str, str, str]

    @property
    def tokens(self) -> list[str]:
        return tokenize(self.phrase)


@dataclass(frozen=True)
class TopicSpec:
    """A ground-truth topic: events sharing a pattern."""

    phrase: str
    pattern: str
    concept: str  # the concept generalising the entity slot
    event_ids: tuple[str, ...]
    domain: str

    @property
    def tokens(self) -> list[str]:
        return tokenize(self.phrase)


@dataclass
class WorldConfig:
    """Scale knobs for world construction.

    Attributes:
        num_extra_domains: procedural domains beyond the hand-written seeds.
        entities_per_extra_domain: entity count per procedural domain.
        concepts_per_extra_domain: concept count per procedural domain.
        num_days: length of the simulated log window (events are placed on
            days in [0, num_days)).
        events_per_template: event instances stamped per event template.
        seed: RNG seed.
    """

    num_extra_domains: int = 0
    entities_per_extra_domain: int = 8
    concepts_per_extra_domain: int = 3
    num_days: int = 7
    events_per_template: int = 3
    seed: int = 0


@dataclass
class World:
    """The assembled ground truth."""

    config: WorldConfig
    categories: list[tuple[str, str, str]] = field(default_factory=list)
    entities: dict[str, EntitySpec] = field(default_factory=dict)
    concepts: dict[str, ConceptSpec] = field(default_factory=dict)
    events: dict[str, EventSpec] = field(default_factory=dict)
    topics: dict[str, TopicSpec] = field(default_factory=dict)
    domains: list[DomainSpec] = field(default_factory=list)

    # ------------------------------------------------------------------
    # gold relations (used by evaluation)
    # ------------------------------------------------------------------
    def gold_concept_entity_pairs(self) -> set[tuple[str, str]]:
        """All true (concept phrase, entity name) isA pairs."""
        return {
            (concept.phrase, member)
            for concept in self.concepts.values()
            for member in concept.members
        }

    def gold_event_involvements(self) -> set[tuple[str, str, str]]:
        """(event phrase, element, role) involve triples."""
        out: set[tuple[str, str, str]] = set()
        for event in self.events.values():
            out.add((event.phrase, event.entity, "entity"))
            out.add((event.phrase, event.trigger, "trigger"))
            if event.location:
                out.add((event.phrase, event.location, "location"))
        return out

    def gold_correlated_entities(self) -> set[frozenset[str]]:
        """Unordered entity pairs sharing at least one concept."""
        out: set[frozenset[str]] = set()
        for concept in self.concepts.values():
            members = list(concept.members)
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    out.add(frozenset((a, b)))
        return out

    def gold_concept_category(self) -> dict[str, tuple[str, str, str]]:
        return {c.phrase: c.category for c in self.concepts.values()}

    def events_on_day(self, day: int) -> list[EventSpec]:
        return [e for e in self.events.values() if e.day == day]

    # ------------------------------------------------------------------
    # text-model registration
    # ------------------------------------------------------------------
    def register_text_models(self, pos_tagger: "PosTagger | None" = None,
                             ner_tagger: "NerTagger | None" = None
                             ) -> tuple[PosTagger, NerTagger]:
        """Register world entities in POS/NER taggers; returns the taggers."""
        pos_tagger = pos_tagger or PosTagger()
        ner_tagger = ner_tagger or NerTagger()
        for entity in self.entities.values():
            pos_tagger.register_proper_nouns([entity.name])
            ner_tagger.register(entity.name, entity.entity_type)
        for location in LOCATIONS:
            pos_tagger.register_proper_nouns([location])
            ner_tagger.register(location, "LOC")
        return pos_tagger, ner_tagger


def _generate_word(rng: np.random.Generator, num_syllables: int = 2) -> str:
    return "".join(rng.choice(_SYLLABLES) for _ in range(num_syllables))


def _make_procedural_domain(index: int, rng: np.random.Generator,
                            config: WorldConfig) -> DomainSpec:
    """Stamp out one procedural domain with unique generated names."""
    noun = _PRODUCT_NOUNS[index % len(_PRODUCT_NOUNS)]
    brand_count = max(2, config.entities_per_extra_domain // 4)
    brands = [f"{_generate_word(rng)}{index}" for _ in range(brand_count)]
    entities = tuple(
        f"{rng.choice(brands)} {_generate_word(rng)}"
        for _ in range(config.entities_per_extra_domain)
    )
    # Concepts: "<modifier> <noun>" with random member subsets.
    concepts = []
    used_modifiers = rng.choice(
        len(_MODIFIERS), size=min(config.concepts_per_extra_domain, len(_MODIFIERS)),
        replace=False,
    )
    for mod_idx in used_modifiers:
        size = int(rng.integers(2, max(3, len(entities) // 2) + 1))
        member_idx = rng.choice(len(entities), size=min(size, len(entities)), replace=False)
        concepts.append(
            ConceptSeed(
                f"{_MODIFIERS[mod_idx]} {noun}",
                tuple(sorted(entities[i] for i in member_idx)),
            )
        )
    trigger, topic_suffix = _EXTRA_TRIGGERS[index % len(_EXTRA_TRIGGERS)]
    events = (
        EventTemplate(
            f"X {trigger} new {noun[:-1]} model",
            trigger,
            f"{noun[:-1]} {topic_suffix}",
            concepts[0].phrase,
            tuple(LOCATIONS[:4]),
        ),
    )
    return DomainSpec(
        name=f"domain{index}_{noun}",
        category_path=("technology", "consumer products", noun),
        entity_type="PROD",
        entities=entities,
        concepts=tuple(concepts),
        events=events,
        context_words=("specs", "price", "model", "release", noun[:-1]),
    )


def build_world(config: "WorldConfig | None" = None) -> World:
    """Build the ground-truth world from seeds + procedural expansion."""
    config = config or WorldConfig()
    rng = make_rng(config.seed)
    domains: list[DomainSpec] = list(DOMAINS)
    for i in range(config.num_extra_domains):
        domains.append(_make_procedural_domain(i, rng, config))

    world = World(config=config, domains=domains)

    for domain in domains:
        if domain.category_path not in world.categories:
            world.categories.append(domain.category_path)
        for name in domain.entities:
            world.entities[name] = EntitySpec(
                name=name,
                entity_type=domain.entity_type,
                domain=domain.name,
                category=domain.category_path,
            )
        for seed in domain.concepts:
            world.concepts[seed.phrase] = ConceptSpec(
                phrase=seed.phrase,
                members=seed.members,
                domain=domain.name,
                category=domain.category_path,
            )
        for template in domain.events:
            _stamp_events(world, domain, template, rng, config)

    return world


def _stamp_events(world: World, domain: DomainSpec, template: EventTemplate,
                  rng: np.random.Generator, config: WorldConfig) -> None:
    pool_concept = world.concepts.get(template.entity_pool)
    if pool_concept is None:
        return
    members = list(pool_concept.members)
    count = min(config.events_per_template, len(members))
    chosen_idx = rng.choice(len(members), size=count, replace=False)
    event_ids: list[str] = []
    for idx in chosen_idx:
        entity = members[int(idx)]
        day = int(rng.integers(0, max(1, config.num_days)))
        location = (
            str(rng.choice(list(template.location_pool)))
            if template.location_pool
            else None
        )
        phrase = template.pattern.replace("X", entity)
        event_id = f"ev_{len(world.events):05d}"
        world.events[event_id] = EventSpec(
            event_id=event_id,
            phrase=phrase,
            entity=entity,
            trigger=template.trigger,
            location=location,
            day=day,
            topic=template.topic,
            domain=domain.name,
            category=domain.category_path,
        )
        event_ids.append(event_id)
    topic = world.topics.get(template.topic)
    if topic is None:
        world.topics[template.topic] = TopicSpec(
            phrase=template.topic,
            pattern=template.pattern,
            concept=template.entity_pool,
            event_ids=tuple(event_ids),
            domain=domain.name,
        )
    else:
        world.topics[template.topic] = TopicSpec(
            phrase=topic.phrase,
            pattern=topic.pattern,
            concept=topic.concept,
            event_ids=tuple(list(topic.event_ids) + event_ids),
            domain=topic.domain,
        )
