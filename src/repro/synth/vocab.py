"""Seed vocabularies for the synthetic world.

Each :class:`DomainSpec` describes one content domain: its category path,
entity gazetteer, the attribute groups that define ground-truth concepts,
event templates with triggers/locations, and topic patterns.  The hand-
written seeds mirror the paper's showcase examples (Tables 3-4: famous
long-distance runners, american crime drama series, cellphone launch events,
LoL season finals, ...); :func:`repro.synth.world.build_world` expands them
procedurally to reach configurable scale.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ConceptSeed:
    """A ground-truth concept: a noun phrase naming a group of entities."""

    phrase: str  # e.g. "fuel efficient cars"
    members: tuple[str, ...]  # entity names belonging to the concept


@dataclass(frozen=True)
class EventTemplate:
    """A template stamping out events: ``{entity} <trigger clause>``.

    ``pattern`` tokens use the placeholder ``X`` for the entity slot; the
    topic phrase generalises the slot to the concept name (paper CPD).
    """

    pattern: str  # e.g. "X launches new flagship phone"
    trigger: str  # the trigger word, e.g. "launches"
    topic: str  # e.g. "cellphone launch events"
    entity_pool: str  # name of the concept whose members fill X
    location_pool: tuple[str, ...] = ()


@dataclass(frozen=True)
class DomainSpec:
    """One content domain of the synthetic world."""

    name: str
    category_path: tuple[str, str, str]  # 3-level hierarchy, root -> leaf
    entity_type: str  # NER type of this domain's entities
    entities: tuple[str, ...]
    concepts: tuple[ConceptSeed, ...]
    events: tuple[EventTemplate, ...]
    # Generic per-domain context words used in titles and documents.
    context_words: tuple[str, ...] = ()


LOCATIONS: tuple[str, ...] = (
    "california", "beijing", "london", "tokyo", "berlin", "seoul",
    "shanghai", "paris", "austin", "vancouver",
)

# ---------------------------------------------------------------------------
# hand-written seed domains (mirroring the paper's showcases)
# ---------------------------------------------------------------------------

CARS = DomainSpec(
    name="cars",
    category_path=("auto", "cars", "sedans"),
    entity_type="PROD",
    entities=(
        "honda civic", "toyota corolla", "toyota prius", "ford focus",
        "honda odyssey", "ford edge", "tesla model3", "nissan leaf",
        "mazda cx5", "subaru outback", "honda accord", "hyundai elantra",
    ),
    concepts=(
        ConceptSeed("fuel efficient cars",
                    ("honda civic", "toyota corolla", "toyota prius", "hyundai elantra")),
        ConceptSeed("economy cars",
                    ("honda civic", "toyota corolla", "ford focus", "hyundai elantra")),
        ConceptSeed("family road trip vehicles",
                    ("honda odyssey", "ford edge", "subaru outback")),
        ConceptSeed("electric cars",
                    ("tesla model3", "nissan leaf")),
    ),
    events=(
        EventTemplate("X recalls thousands of vehicles", "recalls",
                      "car recall events", "economy cars", LOCATIONS[:4]),
        EventTemplate("X unveils new electric suv", "unveils",
                      "new car launch events", "electric cars", LOCATIONS[:4]),
    ),
    context_words=("mpg", "sedan", "engine", "mileage", "dealer", "hybrid"),
)

MOVIES = DomainSpec(
    name="movies",
    category_path=("entertainment", "film", "animation"),
    entity_type="WORK",
    entities=(
        "spirited away", "my neighbor totoro", "princess mononoke",
        "howls moving castle", "iron man", "captain america",
        "avengers endgame", "black panther", "toy story", "frozen",
        "the lion king", "coco",
    ),
    concepts=(
        ConceptSeed("hayao miyazaki animated films",
                    ("spirited away", "my neighbor totoro", "princess mononoke",
                     "howls moving castle")),
        ConceptSeed("marvel superhero movies",
                    ("iron man", "captain america", "avengers endgame", "black panther")),
        ConceptSeed("classic animated films",
                    ("toy story", "the lion king", "spirited away", "frozen")),
    ),
    events=(
        EventTemplate("X premiere breaks box office record", "breaks",
                      "box office record events", "marvel superhero movies", LOCATIONS[:3]),
        EventTemplate("X sequel officially announced", "announced",
                      "movie sequel announcement events", "classic animated films"),
    ),
    context_words=("film", "review", "director", "box", "office", "animated", "studio"),
)

PHONES = DomainSpec(
    name="phones",
    category_path=("technology", "gadgets", "cellphones"),
    entity_type="PROD",
    entities=(
        "iphone xs", "iphone 6", "huawei mate20 pro", "samsung galaxy s9",
        "samsung galaxy note7", "xiaomi mi8", "pixel 3", "oneplus 6t",
        "huawei p30", "iphone 12",
    ),
    concepts=(
        ConceptSeed("huawei cellphones", ("huawei mate20 pro", "huawei p30")),
        ConceptSeed("flagship smartphones",
                    ("iphone xs", "huawei mate20 pro", "samsung galaxy s9", "pixel 3")),
        ConceptSeed("budget smartphones", ("xiaomi mi8", "oneplus 6t")),
        ConceptSeed("apple cellphones", ("iphone xs", "iphone 6", "iphone 12")),
    ),
    events=(
        EventTemplate("X officially released", "released",
                      "cellphone launch events", "flagship smartphones", LOCATIONS[:5]),
        EventTemplate("X explosion reported", "explosion",
                      "cellphone explosion events", "apple cellphones", LOCATIONS[:5]),
        EventTemplate("X battery recall announced", "recall",
                      "cellphone recall events", "flagship smartphones"),
    ),
    context_words=("battery", "camera", "screen", "specs", "price", "android", "chip"),
)

GAMES = DomainSpec(
    name="games",
    category_path=("entertainment", "esports", "moba games"),
    entity_type="PROD",
    entities=(
        "league of legends", "dota 2", "honor of kings", "overwatch",
        "ig team", "fnatic team", "skt team", "g2 team",
    ),
    concepts=(
        ConceptSeed("moba games", ("league of legends", "dota 2", "honor of kings")),
        ConceptSeed("esports teams", ("ig team", "fnatic team", "skt team", "g2 team")),
    ),
    events=(
        EventTemplate("X wins the s8 final", "wins",
                      "league of legends season finals", "esports teams", LOCATIONS[:3]),
        EventTemplate("X announces championship roster", "announces",
                      "esports roster events", "esports teams"),
    ),
    context_words=("finals", "season", "tournament", "match", "player", "champion"),
)

SPORTS = DomainSpec(
    name="sports",
    category_path=("sports", "athletics", "marathon"),
    entity_type="PER",
    entities=(
        "dennis kimetto", "kenenisa bekele", "eliud kipchoge",
        "mo farah", "usain bolt", "allyson felix",
    ),
    concepts=(
        ConceptSeed("famous long distance runners",
                    ("dennis kimetto", "kenenisa bekele", "eliud kipchoge", "mo farah")),
        ConceptSeed("olympic sprinters", ("usain bolt", "allyson felix")),
    ),
    events=(
        EventTemplate("X breaks marathon world record", "breaks",
                      "marathon record events", "famous long distance runners",
                      LOCATIONS[2:6]),
        EventTemplate("X retires from competition", "retires",
                      "athlete retirement events", "olympic sprinters"),
    ),
    context_words=("marathon", "record", "race", "olympics", "finish", "coach"),
)

MUSIC = DomainSpec(
    name="music",
    category_path=("entertainment", "music", "pop singers"),
    entity_type="PER",
    entities=(
        "jay chou", "taylor swift", "katy perry", "adele",
        "ed sheeran", "beyonce", "eason chan",
    ),
    concepts=(
        ConceptSeed("pop singers",
                    ("jay chou", "taylor swift", "katy perry", "adele", "ed sheeran")),
        ConceptSeed("grammy winners", ("taylor swift", "adele", "beyonce")),
    ),
    events=(
        EventTemplate("X will have a concert", "concert",
                      "singer concert events", "pop singers", LOCATIONS[:6]),
        EventTemplate("X won the golden melody awards", "won",
                      "singers win music awards", "pop singers"),
        EventTemplate("X won the grammy awards", "won",
                      "singers win music awards", "grammy winners"),
    ),
    context_words=("album", "concert", "award", "stage", "tour", "single"),
)

DRAMA = DomainSpec(
    name="drama",
    category_path=("entertainment", "tv", "drama series"),
    entity_type="WORK",
    entities=(
        "american crime story", "breaking bad", "criminal minds",
        "true detective", "sherlock", "the wire", "narcos",
    ),
    concepts=(
        ConceptSeed("american crime drama series",
                    ("american crime story", "breaking bad", "criminal minds", "the wire")),
        ConceptSeed("detective drama series",
                    ("true detective", "sherlock", "criminal minds")),
    ),
    events=(
        EventTemplate("X season finale airs tonight", "airs",
                      "season finale events", "american crime drama series"),
        EventTemplate("X renewed for another season", "renewed",
                      "series renewal events", "detective drama series"),
    ),
    context_words=("season", "episode", "series", "finale", "cast", "plot"),
)

POLITICS = DomainSpec(
    name="politics",
    category_path=("current events", "world politics", "trade policy"),
    entity_type="PER",
    entities=(
        "theresa may", "donald trump", "angela merkel", "boris johnson",
        "emmanuel macron", "shinzo abe",
    ),
    concepts=(
        ConceptSeed("european leaders",
                    ("theresa may", "angela merkel", "boris johnson", "emmanuel macron")),
        ConceptSeed("world leaders",
                    ("donald trump", "angela merkel", "emmanuel macron", "shinzo abe")),
    ),
    events=(
        EventTemplate("X resignation speech", "resignation",
                      "brexit negotiation", "european leaders", ("london",)),
        EventTemplate("X imposes new tariffs", "imposes",
                      "trade war events", "world leaders", ("beijing", "london")),
        EventTemplate("X signs trade agreement", "signs",
                      "trade war events", "world leaders"),
    ),
    context_words=("government", "policy", "minister", "tariffs", "summit", "vote"),
)

FICTION = DomainSpec(
    name="fiction",
    category_path=("culture", "books", "fiction"),
    entity_type="WORK",
    entities=(
        "adventure of sherlock holmes", "the maltese falcon",
        "murder on the orient express", "gone girl", "the big sleep",
    ),
    concepts=(
        ConceptSeed("detective fiction",
                    ("adventure of sherlock holmes", "the maltese falcon",
                     "murder on the orient express", "the big sleep")),
    ),
    events=(
        EventTemplate("X adaptation announced by studio", "announced",
                      "book adaptation events", "detective fiction"),
    ),
    context_words=("novel", "author", "mystery", "chapter", "plot"),
)

FOOD = DomainSpec(
    name="food",
    category_path=("lifestyle", "dining", "restaurants"),
    entity_type="ORG",
    entities=(
        "maple leaf bistro", "golden dragon palace", "casa verde",
        "the salty anchor", "bluebird diner", "sakura garden",
        "little havana grill",
    ),
    concepts=(
        ConceptSeed("family friendly restaurants",
                    ("maple leaf bistro", "bluebird diner", "casa verde")),
        ConceptSeed("top rated seafood restaurants",
                    ("the salty anchor", "sakura garden")),
    ),
    events=(
        EventTemplate("X opens second location", "opens",
                      "restaurant expansion events", "family friendly restaurants",
                      LOCATIONS[6:]),
        EventTemplate("X wins michelin star", "wins",
                      "michelin award events", "top rated seafood restaurants"),
    ),
    context_words=("menu", "chef", "reservation", "dish", "brunch", "patio"),
)

TRAVEL = DomainSpec(
    name="travel",
    category_path=("lifestyle", "travel", "destinations"),
    entity_type="LOC",
    entities=(
        "banff national park", "santorini island", "kyoto old town",
        "patagonia trail", "amalfi coast", "zion canyon",
    ),
    concepts=(
        ConceptSeed("best hiking destinations",
                    ("banff national park", "patagonia trail", "zion canyon")),
        ConceptSeed("romantic island getaways",
                    ("santorini island", "amalfi coast")),
    ),
    events=(
        EventTemplate("X reopens after restoration", "reopens",
                      "destination reopening events", "best hiking destinations"),
    ),
    context_words=("itinerary", "trail", "booking", "season", "flights", "views"),
)

FINANCE = DomainSpec(
    name="finance",
    category_path=("finance", "markets", "tech stocks"),
    entity_type="ORG",
    entities=(
        "vertex dynamics", "nimbus cloudworks", "atlas semiconductors",
        "brightpath capital", "orchid biotech", "quantum forge labs",
    ),
    concepts=(
        ConceptSeed("fast growing tech stocks",
                    ("vertex dynamics", "nimbus cloudworks", "atlas semiconductors")),
        ConceptSeed("dividend paying stocks",
                    ("brightpath capital", "orchid biotech")),
    ),
    events=(
        EventTemplate("X reports record quarterly earnings", "reports",
                      "earnings report events", "fast growing tech stocks"),
        EventTemplate("X announces stock buyback", "announces",
                      "stock buyback events", "dividend paying stocks"),
    ),
    context_words=("earnings", "shares", "dividend", "quarter", "revenue", "ipo"),
)

ANIME = DomainSpec(
    name="anime",
    category_path=("entertainment", "anime", "shonen series"),
    entity_type="WORK",
    entities=(
        "attack on titan", "fullmetal alchemist", "demon slayer",
        "one piece", "death note", "cowboy bebop",
    ),
    concepts=(
        ConceptSeed("classic shonen anime",
                    ("attack on titan", "fullmetal alchemist", "one piece",
                     "demon slayer")),
        ConceptSeed("psychological thriller anime",
                    ("death note", "cowboy bebop")),
    ),
    events=(
        EventTemplate("X final season trailer released", "released",
                      "anime season trailer events", "classic shonen anime"),
    ),
    context_words=("episode", "manga", "season", "studio", "arc", "dub"),
)

DOMAINS: tuple[DomainSpec, ...] = (
    CARS, MOVIES, PHONES, GAMES, SPORTS, MUSIC, DRAMA, POLITICS, FICTION,
    FOOD, TRAVEL, FINANCE, ANIME,
)

# Query scaffolds for concepts: `{}` is replaced by the concept phrase.
CONCEPT_QUERY_TEMPLATES: tuple[str, ...] = (
    "{}",
    "best {}",
    "top 5 {}",
    "what are the {}",
    "list of {}",
    "most popular {}",
)

# Noisy query scaffolds: free-form phrasings that match no Hearst-style
# pattern (the reason pattern matching alone has low coverage on real logs).
CONCEPT_QUERY_TEMPLATES_NOISY: tuple[str, ...] = (
    "recommend some {} please",
    "looking for {} this year",
    "{} 2018 picks",
    "which {} should i buy",
    "any good {} out there",
)

# Title scaffolds for concept docs: first `{}` concept, second `{}` entity.
CONCEPT_TITLE_TEMPLATES: tuple[str, ...] = (
    "the famous {} you should know",
    "review of the best {} this year",
    "{} ranked : our picks",
    "why {} are worth your attention",
    "10 {} that critics love",
)

ENTITY_TITLE_TEMPLATES: tuple[str, ...] = (
    "{entity} review : a solid pick among {concept}",
    "{entity} vs rivals : the {concept} showdown",
    "everything about {entity} , one of the famous {concept}",
)

# Modifier words inserted inside concept mentions (the paper's Figure 3
# "famous" insertion), exercising non-contiguous phrase extraction.
CONCEPT_MODIFIERS: tuple[str, ...] = (
    "famous", "classic", "popular", "new", "great", "top", "best",
)

# Event headline scaffolds: `{}` is the event phrase; commas create the
# subtitle structure CoverRank depends on.
EVENT_TITLE_TEMPLATES: tuple[str, ...] = (
    "breaking : {} , full coverage here",
    "{} , what we know so far",
    "just in : {} , live updates",
    "{} , analysis and reactions",
)

# Split-headline scaffolds: the event phrase is broken across two subtitles
# ("{head}" / "{tail}") — single-span taggers and subtitle ranking cannot
# recover the full phrase from these, graph aggregation can.
EVENT_TITLE_SPLIT_TEMPLATES: tuple[str, ...] = (
    "{head} update : {tail} , analysis here",
    "{head} story : {tail} , reactions pour in",
)

EVENT_QUERY_TEMPLATES: tuple[str, ...] = (
    "{}",
    "{} news",
    "{} latest",
)
