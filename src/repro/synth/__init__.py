"""Synthetic search-click-log world.

The paper builds the Attention Ontology from Tencent QQ-Browser query logs,
which are proprietary.  This package provides the substitution documented in
DESIGN.md: a deterministic *ground-truth world* (categories, entities,
concepts, events, topics across several content domains) and generators that
emit the artifacts GIANT consumes — queries, clicked document titles, click
counts, user sessions, document bodies, and day-by-day log streams — with
gold labels attached for evaluation.

The generators exercise the same statistical structure the real logs have:
Zipf-distributed clicks, paraphrased queries, titles that contain the concept
tokens in order but with extra tokens interleaved (the paper's query-title
alignment signal), subtitle-structured event headlines, and consecutive
concept->entity query sessions (the paper's Figure 4 signal).
"""

from .vocab import DOMAINS, DomainSpec
from .world import (
    World,
    WorldConfig,
    EntitySpec,
    ConceptSpec,
    EventSpec,
    TopicSpec,
    build_world,
)
from .querylog import QueryLogGenerator, LogDay
from .documents import DocumentGenerator, SyntheticDocument

__all__ = [
    "DOMAINS",
    "DomainSpec",
    "World",
    "WorldConfig",
    "EntitySpec",
    "ConceptSpec",
    "EventSpec",
    "TopicSpec",
    "build_world",
    "QueryLogGenerator",
    "LogDay",
    "DocumentGenerator",
    "SyntheticDocument",
]
