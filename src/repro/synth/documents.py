"""Full synthetic documents for the tagging application.

Document tagging (paper Section 4) needs documents with *bodies*, not just
titles: concept tagging works from the key entities a document mentions even
when the concept phrase itself never appears.  The generator therefore emits
two kinds of documents:

* **concept documents** — mention 2-3 member entities of a gold concept plus
  domain context words, *without* the concept phrase (tests abstractive
  tagging, e.g. the paper's "Marvel Super Hero Movies" example);
* **event documents** — lead with the event headline and mention the
  involved entity/location (tests LCS + Duet event tagging).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import make_rng
from ..text.tokenizer import tokenize
from .world import World


@dataclass
class SyntheticDocument:
    """A generated document with gold tags."""

    doc_id: str
    title: str
    sentences: list[list[str]] = field(default_factory=list)
    category: str = ""
    day: int = 0
    gold_concepts: set[str] = field(default_factory=set)
    gold_events: set[str] = field(default_factory=set)
    key_entities: list[str] = field(default_factory=list)

    @property
    def title_tokens(self) -> list[str]:
        return tokenize(self.title)

    @property
    def all_tokens(self) -> list[str]:
        out = self.title_tokens
        for sent in self.sentences:
            out = out + sent
        return out


_CONCEPT_SENTENCES = (
    "many readers ask about {entity} and how it compares",
    "the {entity} stands out in recent coverage",
    "{entity} has received strong reviews this season",
    "experts often recommend {entity} to newcomers",
)

_EVENT_SENTENCES = (
    "the story about {entity} is developing quickly",
    "reactions to the news about {entity} keep coming in",
    "observers say {entity} will dominate headlines this week",
)


class DocumentGenerator:
    """Generates tagged evaluation documents from a world."""

    def __init__(self, world: World, seed: "int | None" = None) -> None:
        self._world = world
        self._rng = make_rng(world.config.seed + 101 if seed is None else seed)
        self._counter = 0

    def _next_id(self) -> str:
        self._counter += 1
        return f"doc_{self._counter:06d}"

    def concept_document(self, concept_phrase: str) -> SyntheticDocument:
        """A document about a concept that never states the concept phrase."""
        concept = self._world.concepts[concept_phrase]
        rng = self._rng
        members = list(concept.members)
        k = min(len(members), int(rng.integers(2, 4)))
        idx = rng.choice(len(members), size=k, replace=False)
        chosen = [members[int(i)] for i in idx]
        domain = next(d for d in self._world.domains if d.name == concept.domain)

        title = f"{chosen[0]} and {chosen[-1]} : what buyers should know"
        sentences = []
        for entity in chosen:
            template = str(rng.choice(list(_CONCEPT_SENTENCES)))
            sentences.append(tokenize(template.format(entity=entity)))
        if domain.context_words:
            ctx = rng.choice(list(domain.context_words),
                             size=min(3, len(domain.context_words)), replace=False)
            sentences.append(tokenize("coverage focuses on " + " and ".join(ctx)))

        return SyntheticDocument(
            doc_id=self._next_id(),
            title=title,
            sentences=sentences,
            category=concept.category[2],
            gold_concepts={concept.phrase},
            key_entities=chosen,
        )

    def event_document(self, event_id: str) -> SyntheticDocument:
        """A news document about an event, headline first."""
        event = self._world.events[event_id]
        rng = self._rng
        title = f"{event.phrase} , report"
        first = tokenize(f"{event.phrase} according to sources")
        sentences = [first]
        template = str(rng.choice(list(_EVENT_SENTENCES)))
        sentences.append(tokenize(template.format(entity=event.entity)))
        if event.location:
            sentences.append(tokenize(f"the report came from {event.location}"))

        return SyntheticDocument(
            doc_id=self._next_id(),
            title=title,
            sentences=sentences,
            category=event.category[2],
            day=event.day,
            gold_events={event.phrase},
            gold_concepts=set(),
            key_entities=[event.entity],
        )

    def corpus(self, num_concept_docs: int = 20, num_event_docs: int = 10
               ) -> list[SyntheticDocument]:
        """A mixed evaluation corpus."""
        rng = self._rng
        docs: list[SyntheticDocument] = []
        concepts = list(self._world.concepts)
        for _i in range(num_concept_docs):
            phrase = concepts[int(rng.integers(0, len(concepts)))]
            docs.append(self.concept_document(phrase))
        events = list(self._world.events)
        if events:
            for _i in range(num_event_docs):
                event_id = events[int(rng.integers(0, len(events)))]
                docs.append(self.event_document(event_id))
        return docs
