"""Micro-batching request queue for the async serving tier.

The production GIANT services sit behind RPC under heavy concurrent
traffic; per-request execution would serialize N client streams while
the batched APIs (:meth:`OntologyService.tag_documents`,
:meth:`~OntologyService.interpret_queries`) amortise candidate
generation best over *merged* batches.  The :class:`MicroBatcher` is the
funnel between the two worlds:

* callers ``await submit(kind, items)`` — requests enter a **bounded**
  :class:`asyncio.Queue` (backpressure instead of unbounded growth);
* a dispatcher coroutine drains the queue, **merging** consecutive
  requests of the same mergeable ``kind`` until the batch reaches
  ``max_batch_size`` items or ``max_delay`` seconds have passed since
  the first request — whichever comes first (the classic
  size-or-deadline flush);
* each merged batch executes via ``execute(kind, items)`` on a single
  worker thread, and the aligned result list is scattered back to every
  caller's future by its slice.

Non-mergeable kinds (point lookups, profile updates, ``refresh``) flow
through the *same* queue as singleton batches, so every backend call is
serialized on one worker thread: a delta refresh runs **between**
merged batches, never mid-batch, and the sync backend needs no locking.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..errors import ReproError
from ..obs.metrics import Scope, get_registry
from ..obs.recorder import get_recorder
from ..obs.tracing import (
    TraceContext,
    current_context,
    get_tracer,
    pop_context,
    push_context,
)


@dataclass
class _Request:
    """One queued request: ``items`` to execute and the caller's future.

    ``ctx`` is the submitter's trace context, captured at submit time —
    the dispatcher task and the executor thread have their own context
    vars, so the link across the queue must travel with the request.
    ``enqueued`` stamps the registry clock for the queue-wait histogram.
    """

    kind: str
    items: "list[Any]"
    mergeable: bool
    future: "asyncio.Future"
    ctx: "TraceContext | None" = None
    enqueued: float = 0.0


_SHUTDOWN = object()


class MicroBatcher:
    """Bounded request queue with size-or-deadline batch flushing.

    Args:
        execute: ``execute(kind, items) -> Sequence`` run on the worker
            thread; must return one result per item, in order.
        max_batch_size: flush a merged batch once it holds this many
            items (documents/queries), even if the deadline is not up.
        max_delay: seconds to wait for more mergeable requests after the
            first item of a batch arrives before flushing anyway.
        max_queue: request-queue bound; ``submit`` applies backpressure
            (awaits) when the queue is full.
        metrics: registry :class:`~repro.obs.metrics.Scope` for the
            batcher's counters/histograms (queue depth, queue wait,
            batch size, flush reason); defaults to a fresh ``batcher``
            scope on the process registry.
    """

    def __init__(self, execute: "Callable[[str, list], Sequence]", *,
                 max_batch_size: int = 32, max_delay: float = 0.005,
                 max_queue: int = 1024,
                 metrics: "Scope | None" = None) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        self._execute = execute
        self._max_batch_size = max_batch_size
        self._max_delay = max_delay
        self._max_queue = max_queue
        self._queue: "asyncio.Queue | None" = None
        self._task: "asyncio.Task | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._executor: "ThreadPoolExecutor | None" = None
        self._carry: "Any | None" = None
        self._closed = False
        self._metrics = metrics if metrics is not None \
            else get_registry().scope("batcher")
        self._requests = self._metrics.counter("requests")
        self._batches = self._metrics.counter("batches")
        self._items = self._metrics.counter("items")
        self._size_flushes = self._metrics.counter("size_flushes")
        self._deadline_flushes = self._metrics.counter("deadline_flushes")
        # Flushes forced by a kind change / non-mergeable request (the
        # carry path) or by shutdown — previously uncounted.
        self._barrier_flushes = self._metrics.counter("barrier_flushes")
        self._queue_depth = self._metrics.gauge("queue_depth")
        self._queue_wait = self._metrics.histogram("queue_wait_seconds")
        self._execute_seconds = self._metrics.histogram("execute_seconds")
        self._batch_items = self._metrics.histogram("batch_items", base=1.0)

    # ------------------------------------------------------------------
    def _ensure_running(self) -> None:
        loop = asyncio.get_running_loop()
        if self._closed:
            raise ReproError("MicroBatcher is closed")
        if self._task is None:
            self._loop = loop
            self._queue = asyncio.Queue(maxsize=self._max_queue)
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-aio")
            self._task = loop.create_task(self._run())
        elif self._loop is not loop:
            raise ReproError(
                "MicroBatcher is bound to a different event loop; create "
                "one batcher per asyncio.run()"
            )

    async def submit(self, kind: str, items: "Sequence[Any]",
                     mergeable: bool = True) -> list:
        """Enqueue ``items`` under ``kind``; returns their results once
        the batch holding them has executed."""
        self._ensure_running()
        future = self._loop.create_future()
        request = _Request(kind, list(items), mergeable, future,
                           ctx=current_context(),
                           enqueued=self._metrics.registry.clock())
        await self._queue.put(request)
        self._requests.inc()
        self._queue_depth.set(self._queue.qsize())
        return await future

    async def close(self) -> None:
        """Drain already-queued requests, then stop the dispatcher."""
        if self._closed:
            return
        self._closed = True
        if self._task is None:
            return
        await self._queue.put(_SHUTDOWN)
        await self._task
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    async def _next_request(self) -> Any:
        if self._carry is not None:
            request, self._carry = self._carry, None
            return request
        request = await self._queue.get()
        self._queue_depth.set(self._queue.qsize())
        return request

    async def _run(self) -> None:
        loop = self._loop
        while True:
            request = await self._next_request()
            if request is _SHUTDOWN:
                return
            batch = [request]
            size = len(request.items)
            if request.mergeable:
                deadline = loop.time() + self._max_delay
                while size < self._max_batch_size:
                    timeout = deadline - loop.time()
                    if timeout <= 0:
                        self._deadline_flush(request.kind, size)
                        break
                    try:
                        nxt = await asyncio.wait_for(self._queue.get(),
                                                     timeout)
                    except asyncio.TimeoutError:
                        self._deadline_flush(request.kind, size)
                        break
                    self._queue_depth.set(self._queue.qsize())
                    if (nxt is _SHUTDOWN or nxt.kind != request.kind
                            or not nxt.mergeable):
                        self._carry = nxt
                        self._barrier_flushes.inc()
                        break
                    batch.append(nxt)
                    size += len(nxt.items)
                else:
                    self._size_flushes.inc()
            else:
                self._barrier_flushes.inc()
            await self._flush(batch, size)

    def _deadline_flush(self, kind: str, size: int) -> None:
        """A batch flushed because its latency deadline expired, not
        because it filled — normal under light load, but a *pattern* of
        small deadline flushes under heavy load means the flush delay is
        mistuned, so each one also lands in the flight recorder."""
        self._deadline_flushes.inc()
        get_recorder().record("batcher.deadline_flush",
                              self._metrics.prefix, batch_kind=kind,
                              items=size)

    def _run_batch(self, kind: str, merged: list,
                   ctx: "TraceContext | None") -> Sequence:
        """Executor-thread entry: install the batch span's context on
        the worker thread (``run_in_executor`` does not carry context
        vars), so downstream spans — e.g. the scatter paths — connect
        to this batch."""
        if ctx is None:
            return self._execute(kind, merged)
        token = push_context(ctx)
        try:
            return self._execute(kind, merged)
        finally:
            pop_context(token)

    async def _flush(self, batch: "list[_Request]", size: int) -> None:
        merged = [item for request in batch for item in request.items]
        now = self._metrics.registry.clock()
        for request in batch:
            self._queue_wait.observe(now - request.enqueued)
        self._batch_items.observe(size)
        tracer = get_tracer()
        try:
            # The batch span's parent is the first merged request's
            # context (later requests in a merged batch share the
            # execution; only the first keeps the cross-request link).
            with tracer.span(f"batch.{batch[0].kind}", parent=batch[0].ctx,
                             items=size, requests=len(batch)) as span:
                with self._metrics.time("execute_seconds"):
                    results = await self._loop.run_in_executor(
                        self._executor, self._run_batch, batch[0].kind,
                        merged, span.ctx if span is not None else None)
        except Exception as exc:  # scatter the failure to every caller
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(exc)
            return
        finally:
            self._batches.inc()
            self._items.inc(size)
        if len(results) != len(merged):
            exc = ReproError(
                f"batch executor returned {len(results)} results for "
                f"{len(merged)} items (kind {batch[0].kind!r})"
            )
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(exc)
            return
        offset = 0
        for request in batch:
            chunk = list(results[offset:offset + len(request.items)])
            offset += len(request.items)
            if not request.future.done():
                request.future.set_result(chunk)

    # ------------------------------------------------------------------
    @property
    def metrics(self) -> Scope:
        return self._metrics

    @property
    def stats(self) -> "dict[str, int]":
        """Merge/flush counters for introspection and benchmarks — a
        thin view over one scope snapshot (single registry-lock
        acquisition, so the fields are a consistent cut)."""
        snap = self._metrics.snapshot()
        batch_items = snap.get("batch_items") or {}
        return {
            "requests": snap.get("requests", 0),
            "batches": snap.get("batches", 0),
            "items": snap.get("items", 0),
            "max_batch_items": int(batch_items.get("max", 0)),
            "size_flushes": snap.get("size_flushes", 0),
            "deadline_flushes": snap.get("deadline_flushes", 0),
        }
