"""Micro-batching request queue for the async serving tier.

The production GIANT services sit behind RPC under heavy concurrent
traffic; per-request execution would serialize N client streams while
the batched APIs (:meth:`OntologyService.tag_documents`,
:meth:`~OntologyService.interpret_queries`) amortise candidate
generation best over *merged* batches.  The :class:`MicroBatcher` is the
funnel between the two worlds:

* callers ``await submit(kind, items)`` — requests enter a **bounded**
  :class:`asyncio.Queue` (backpressure instead of unbounded growth);
* a dispatcher coroutine drains the queue, **merging** consecutive
  requests of the same mergeable ``kind`` until the batch reaches
  ``max_batch_size`` items or ``max_delay`` seconds have passed since
  the first request — whichever comes first (the classic
  size-or-deadline flush);
* each merged batch executes via ``execute(kind, items)`` on a single
  worker thread, and the aligned result list is scattered back to every
  caller's future by its slice.

Non-mergeable kinds (point lookups, profile updates, ``refresh``) flow
through the *same* queue as singleton batches, so every backend call is
serialized on one worker thread: a delta refresh runs **between**
merged batches, never mid-batch, and the sync backend needs no locking.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..errors import ReproError


@dataclass
class _Request:
    """One queued request: ``items`` to execute and the caller's future."""

    kind: str
    items: "list[Any]"
    mergeable: bool
    future: "asyncio.Future"


_SHUTDOWN = object()


class MicroBatcher:
    """Bounded request queue with size-or-deadline batch flushing.

    Args:
        execute: ``execute(kind, items) -> Sequence`` run on the worker
            thread; must return one result per item, in order.
        max_batch_size: flush a merged batch once it holds this many
            items (documents/queries), even if the deadline is not up.
        max_delay: seconds to wait for more mergeable requests after the
            first item of a batch arrives before flushing anyway.
        max_queue: request-queue bound; ``submit`` applies backpressure
            (awaits) when the queue is full.
    """

    def __init__(self, execute: "Callable[[str, list], Sequence]", *,
                 max_batch_size: int = 32, max_delay: float = 0.005,
                 max_queue: int = 1024) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        self._execute = execute
        self._max_batch_size = max_batch_size
        self._max_delay = max_delay
        self._max_queue = max_queue
        self._queue: "asyncio.Queue | None" = None
        self._task: "asyncio.Task | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._executor: "ThreadPoolExecutor | None" = None
        self._carry: "Any | None" = None
        self._closed = False
        self._requests = 0
        self._batches = 0
        self._items = 0
        self._max_batch_items = 0
        self._size_flushes = 0
        self._deadline_flushes = 0

    # ------------------------------------------------------------------
    def _ensure_running(self) -> None:
        loop = asyncio.get_running_loop()
        if self._closed:
            raise ReproError("MicroBatcher is closed")
        if self._task is None:
            self._loop = loop
            self._queue = asyncio.Queue(maxsize=self._max_queue)
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-aio")
            self._task = loop.create_task(self._run())
        elif self._loop is not loop:
            raise ReproError(
                "MicroBatcher is bound to a different event loop; create "
                "one batcher per asyncio.run()"
            )

    async def submit(self, kind: str, items: "Sequence[Any]",
                     mergeable: bool = True) -> list:
        """Enqueue ``items`` under ``kind``; returns their results once
        the batch holding them has executed."""
        self._ensure_running()
        future = self._loop.create_future()
        request = _Request(kind, list(items), mergeable, future)
        await self._queue.put(request)
        self._requests += 1
        return await future

    async def close(self) -> None:
        """Drain already-queued requests, then stop the dispatcher."""
        if self._closed:
            return
        self._closed = True
        if self._task is None:
            return
        await self._queue.put(_SHUTDOWN)
        await self._task
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    async def _next_request(self) -> Any:
        if self._carry is not None:
            request, self._carry = self._carry, None
            return request
        return await self._queue.get()

    async def _run(self) -> None:
        loop = self._loop
        while True:
            request = await self._next_request()
            if request is _SHUTDOWN:
                return
            batch = [request]
            size = len(request.items)
            if request.mergeable:
                deadline = loop.time() + self._max_delay
                while size < self._max_batch_size:
                    timeout = deadline - loop.time()
                    if timeout <= 0:
                        self._deadline_flushes += 1
                        break
                    try:
                        nxt = await asyncio.wait_for(self._queue.get(),
                                                     timeout)
                    except asyncio.TimeoutError:
                        self._deadline_flushes += 1
                        break
                    if (nxt is _SHUTDOWN or nxt.kind != request.kind
                            or not nxt.mergeable):
                        self._carry = nxt
                        break
                    batch.append(nxt)
                    size += len(nxt.items)
                else:
                    self._size_flushes += 1
            await self._flush(batch, size)

    async def _flush(self, batch: "list[_Request]", size: int) -> None:
        merged = [item for request in batch for item in request.items]
        try:
            results = await self._loop.run_in_executor(
                self._executor, self._execute, batch[0].kind, merged)
        except Exception as exc:  # scatter the failure to every caller
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(exc)
            return
        finally:
            self._batches += 1
            self._items += size
            self._max_batch_items = max(self._max_batch_items, size)
        if len(results) != len(merged):
            exc = ReproError(
                f"batch executor returned {len(results)} results for "
                f"{len(merged)} items (kind {batch[0].kind!r})"
            )
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(exc)
            return
        offset = 0
        for request in batch:
            chunk = list(results[offset:offset + len(request.items)])
            offset += len(request.items)
            if not request.future.done():
                request.future.set_result(chunk)

    # ------------------------------------------------------------------
    @property
    def stats(self) -> "dict[str, int]":
        """Merge/flush counters for introspection and benchmarks."""
        return {
            "requests": self._requests,
            "batches": self._batches,
            "items": self._items,
            "max_batch_items": self._max_batch_items,
            "size_flushes": self._size_flushes,
            "deadline_flushes": self._deadline_flushes,
        }
