"""Length-prefixed JSON RPC for the async serving tier.

A thin wire protocol so serving replicas can sit behind a real socket —
the reproduction's stand-in for the production deployment's Tars RPC:

* **Framing** — each message is a 4-byte big-endian length followed by
  a UTF-8 JSON body (canonical form: sorted keys, compact separators),
  so both sides parse without delimiters or chunking heuristics.
* **Codec** — serving results are dataclasses (``TaggedDocument``,
  ``QueryAnalysis``, ``EventRecord``, ``InterestProfile``,
  ``OntologyDelta``) holding tuples/sets JSON cannot express; the codec
  type-tags them (``{"__dc__": ...}``, ``{"__tuple__": ...}``,
  ``{"__set__": ...}``, ``{"__enum__": ...}``) and reconstructs the
  exact objects on decode.  ``dumps(sync_result) == dumps(rpc_result)``
  is the tests' byte-identity oracle between the sync service and the
  wire (black-box consistency checking).
* **Server** — :class:`RpcServer` wraps an
  :class:`~repro.serving.aio.AsyncOntologyService`; each request on a
  connection is handled in its own task, so many requests from many
  connections overlap and the micro-batcher merges them.
* **Client** — :class:`RpcClient` pipelines requests by id over one
  connection; server-side exceptions come back as :class:`RpcError`
  with the original exception type name.

Requests are ``{"id", "method", "args", "kwargs"}``; responses carry
either ``"result"`` or ``"error": {"type", "message"}``.  Only the
methods in :data:`~repro.serving.aio.SERVING_METHODS` are dispatchable.

**Binary frames** (DESIGN.md §10) — the outer 4-byte length framing is
shared by a second body encoding: ``magic (2) + codec version (1) +``
a :mod:`repro.core.columnar` packed message (string pool + tagged
value).  A JSON body always starts with ``{`` (0x7b), the binary magic
is invalid JSON/UTF-8, so every reader sniffs the first bytes
(:func:`is_binary_frame`) and the two body types coexist on one
connection.  The binary wire is *negotiated*: a client that wants it
calls the ``negotiate`` method (a plain JSON request) and the server
switches that connection's responses to :func:`dumps_binary`; an old
server answers "unknown RPC method" and the client silently stays on
JSON — version skew degrades, never hangs.  Requests stay JSON (they
are small); responses carry the bulk.  ``dumps`` (canonical JSON)
remains the byte-identity oracle: tests assert the binary path decodes
to objects whose ``dumps`` equals the JSON path's bytes.
"""

from __future__ import annotations

import asyncio
import dataclasses
import enum
import json
from typing import Any

from ..apps.profiles import InterestProfile
from ..apps.query import QueryAnalysis
from ..apps.story_tree import EventRecord
from ..apps.tagging import TaggedDocument
from ..core.store import (
    AttentionNode,
    Edge,
    EdgeType,
    NodeType,
    OntologyDelta,
)
from ..errors import ReproError
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.recorder import get_recorder
from ..obs.tracing import TraceContext, current_context, get_tracer
from .aio import SERVING_METHODS, AsyncOntologyService

_MAX_FRAME = 64 * 1024 * 1024  # sanity bound on one message
_ESCAPE = "__esc__"  # prefix shielding user dict keys from codec markers

#: First bytes of a binary frame body.  0xB1 cannot start UTF-8 JSON
#: (it is a continuation byte), so sniffing is unambiguous.
BINARY_MAGIC = b"\xb1\xc5"
BINARY_CODEC_VERSION = 1

_DATACLASSES = {cls.__name__: cls for cls in (
    TaggedDocument, QueryAnalysis, EventRecord, InterestProfile,
    OntologyDelta, AttentionNode, Edge,
)}
_ENUMS = {cls.__name__: cls for cls in (EdgeType, NodeType)}


def register_dataclass(cls: type) -> type:
    """Register an extra dataclass with the wire codec.

    The codec only round-trips the dataclasses it knows by name; layers
    above the serving tier (e.g. the cluster's rebalance
    ``TransferSlice`` frames, cluster/ring.py) register theirs at import
    time instead of this module importing them — which would invert the
    dependency.  Re-registering the same class is a no-op; a *different*
    class under an already-taken name is rejected, since decode
    dispatches on the name alone.
    """
    existing = _DATACLASSES.get(cls.__name__)
    if existing is not None and existing is not cls:
        raise ReproError(
            f"codec name {cls.__name__!r} is already registered to a "
            f"different dataclass")
    _DATACLASSES[cls.__name__] = cls
    return cls


class RpcError(ReproError):
    """A server-side failure reported back over the wire."""

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.message = message


# ----------------------------------------------------------------------
# codec
# ----------------------------------------------------------------------
def encode(obj: Any) -> Any:
    """Lower ``obj`` to JSON-representable form, type-tagging what JSON
    cannot express (tuples, sets, enums, known dataclasses)."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        if type(obj).__name__ not in _ENUMS:
            raise ReproError(f"cannot encode enum {type(obj).__name__}")
        return {"__enum__": type(obj).__name__, "v": obj.value}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        name = type(obj).__name__
        if name not in _DATACLASSES:
            raise ReproError(f"cannot encode dataclass {name}")
        fields = {f.name: encode(getattr(obj, f.name))
                  for f in dataclasses.fields(obj)}
        return {"__dc__": name, "f": fields}
    if isinstance(obj, tuple):
        return {"__tuple__": [encode(item) for item in obj]}
    if isinstance(obj, set):
        # Sort by canonical JSON text: element order is deterministic
        # even when encoded elements are dicts or of mixed types.
        return {"__set__": sorted(
            (encode(item) for item in obj),
            key=lambda value: json.dumps(value, sort_keys=True))}
    if isinstance(obj, list):
        return [encode(item) for item in obj]
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise ReproError(f"cannot encode dict key {key!r}")
            if key.startswith("__"):
                # Payload dicts are arbitrary: escape dunder keys so
                # they can't collide with the codec's type markers.
                key = _ESCAPE + key
            out[key] = encode(value)
        return out
    raise ReproError(f"cannot encode {type(obj).__name__} for RPC")


def decode(obj: Any) -> Any:
    """Inverse of :func:`encode`: rebuild the exact Python objects."""
    if isinstance(obj, list):
        return [decode(item) for item in obj]
    if isinstance(obj, dict):
        if "__tuple__" in obj:
            return tuple(decode(item) for item in obj["__tuple__"])
        if "__set__" in obj:
            return {decode(item) for item in obj["__set__"]}
        if "__enum__" in obj:
            return _ENUMS[obj["__enum__"]](obj["v"])
        if "__dc__" in obj:
            cls = _DATACLASSES[obj["__dc__"]]
            return cls(**{key: decode(value)
                          for key, value in obj["f"].items()})
        return {(key[len(_ESCAPE):] if key.startswith(_ESCAPE) else key):
                decode(value)
                for key, value in obj.items()}
    return obj


def _canonical_bytes(obj: Any) -> bytes:
    """The wire's canonical JSON form of an already-encoded value."""
    return json.dumps(obj, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def dumps(obj: Any) -> bytes:
    """Canonical wire bytes for ``obj`` (the byte-identity oracle)."""
    return _canonical_bytes(encode(obj))


def loads(data: bytes) -> Any:
    return decode(json.loads(data.decode("utf-8")))


def is_binary_frame(data: bytes) -> bool:
    """True when a frame body is the packed binary encoding (vs JSON)."""
    return data[:len(BINARY_MAGIC)] == BINARY_MAGIC


def dumps_binary(obj: Any) -> bytes:
    """Packed binary wire bytes for ``obj`` — magic, codec version, then
    a :mod:`repro.core.columnar` message (string pool + tagged value)
    over the same registered dataclass/enum tables as the JSON codec.
    Unlike :func:`dumps` the value goes in *raw* (no :func:`encode`
    lowering): the columnar codec carries tuples/sets/dataclasses
    natively, so :func:`loads_binary` returns the final objects."""
    from ..core.columnar import encode_message

    return (BINARY_MAGIC + bytes([BINARY_CODEC_VERSION])
            + encode_message(obj, _DATACLASSES, _ENUMS))


def loads_binary(data: bytes) -> Any:
    """Inverse of :func:`dumps_binary`; rejects version skew loudly."""
    from ..core.columnar import decode_message

    if not is_binary_frame(data):
        raise ReproError("not a binary RPC frame")
    version = data[len(BINARY_MAGIC)]
    if version != BINARY_CODEC_VERSION:
        raise ReproError(
            f"unsupported binary codec version {version} "
            f"(this side speaks {BINARY_CODEC_VERSION})")
    return decode_message(data[len(BINARY_MAGIC) + 1:],
                          _DATACLASSES, _ENUMS)


def loads_envelope(frame: bytes) -> dict:
    """Decode one response envelope of either body type into a dict
    whose ``result`` (when present) is fully decoded Python objects."""
    if is_binary_frame(frame):
        return loads_binary(frame)
    body = json.loads(frame.decode("utf-8"))
    if "result" in body:
        body["result"] = decode(body["result"])
    return body


def encode_envelope(request_id, result: Any, error: "dict | None",
                    binary: bool, stamp: "dict | None" = None) -> bytes:
    """One response envelope in the connection's negotiated body
    encoding.  A result the binary codec cannot pack (or, on the JSON
    side, :func:`encode` cannot lower) degrades to an error envelope
    rather than killing the connection.  ``stamp`` (the consistency
    auditor's read stamp: the backend version the call was answered at,
    plus the caller's session id) rides as an extra plain-dict key in
    either body encoding, mirroring how ``"trace"`` rides requests."""
    if error is not None:
        body = {"id": request_id, "error": error}
        return dumps_binary(body) if binary else _canonical_bytes(body)
    try:
        if binary:
            body = {"id": request_id, "result": result}
            if stamp is not None:
                body["stamp"] = stamp
            return dumps_binary(body)
        body = {"id": request_id, "result": encode(result)}
        if stamp is not None:
            body["stamp"] = stamp
        return _canonical_bytes(body)
    except Exception as exc:
        body = {"id": request_id,
                "error": {"type": type(exc).__name__,
                          "message": str(exc)}}
        return dumps_binary(body) if binary else _canonical_bytes(body)


def negotiate_result(wire_state: "dict[str, bool]",
                     codec) -> dict:
    """Shared ``negotiate`` handler: flip the connection to binary
    responses when the client's codec version matches, else stay JSON
    and report the version this side speaks (the client falls back)."""
    if codec == BINARY_CODEC_VERSION:
        wire_state["binary"] = True
        return {"wire": "binary", "codec": BINARY_CODEC_VERSION}
    return {"wire": "json", "codec": BINARY_CODEC_VERSION}


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
async def read_frame(reader: asyncio.StreamReader) -> "bytes | None":
    """Read one length-prefixed frame; ``None`` on clean EOF."""
    try:
        header = await reader.readexactly(4)
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise ReproError("truncated RPC frame header") from exc
        return None
    length = int.from_bytes(header, "big")
    if length > _MAX_FRAME:
        raise ReproError(f"RPC frame of {length} bytes exceeds limit")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ReproError("truncated RPC frame body") from exc


def write_frame(writer: asyncio.StreamWriter, payload: bytes) -> None:
    writer.write(len(payload).to_bytes(4, "big") + payload)


def read_frame_sync(sock) -> "bytes | None":
    """Blocking-socket twin of :func:`read_frame` (same wire layout);
    used by the replication followers and remote shard clients, which
    are synchronous processes."""
    header = _recv_exactly(sock, 4)
    if header is None:
        return None
    length = int.from_bytes(header, "big")
    if length > _MAX_FRAME:
        raise ReproError(f"RPC frame of {length} bytes exceeds limit")
    body = _recv_exactly(sock, length)
    if body is None:
        raise ReproError("truncated RPC frame body")
    return body


def _recv_exactly(sock, count: int) -> "bytes | None":
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            if chunks:
                raise ReproError("truncated RPC frame")
            return None
        chunks.extend(chunk)
    return bytes(chunks)


def write_frame_sync(sock, payload: bytes) -> None:
    """Blocking-socket twin of :func:`write_frame`."""
    sock.sendall(len(payload).to_bytes(4, "big") + payload)


# ----------------------------------------------------------------------
# server
# ----------------------------------------------------------------------
class RpcServer:
    """Serves an :class:`AsyncOntologyService` over a TCP socket.

    Each incoming frame spawns a handler task, so requests from all
    connections run concurrently and mergeable calls micro-batch.
    """

    def __init__(self, service: AsyncOntologyService,
                 host: str = "127.0.0.1", port: int = 0,
                 max_inflight: int = 64,
                 registry: "MetricsRegistry | None" = None) -> None:
        if max_inflight <= 0:
            raise ReproError("max_inflight must be positive")
        self._service = service
        self._host = host
        self._port = port
        self._max_inflight = max_inflight
        self._server: "asyncio.AbstractServer | None" = None
        registry = registry if registry is not None else get_registry()
        self._metrics = registry.scope("rpc.server")
        self._connections = self._metrics.counter("connections")
        self._frames_in = self._metrics.counter("frames_in")
        self._frames_out = self._metrics.counter("frames_out")
        self._bytes_in = self._metrics.counter("bytes_in")
        self._bytes_out = self._metrics.counter("bytes_out")
        self._errors = self._metrics.counter("errors")
        self._negotiated_binary = self._metrics.counter("negotiated_binary")
        self._inflight = self._metrics.gauge("inflight")

    async def start(self) -> "tuple[str, int]":
        """Bind and listen; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port)
        sockname = self._server.sockets[0].getsockname()
        self._host, self._port = sockname[0], sockname[1]
        return self._host, self._port

    @property
    def address(self) -> "tuple[str, int]":
        return self._host, self._port

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()
        # Per-connection wire state: flipped by a ``negotiate`` request.
        # In-flight responses racing the flip are harmless — the client
        # sniffs every frame's magic instead of trusting the mode.
        wire_state = {"binary": False}
        # Cap in-flight requests per connection: once full, we stop
        # reading frames, the kernel buffers fill, and a pipelining
        # client blocks on the socket — the batcher's bounded-queue
        # backpressure actually reaches the wire instead of piling up
        # as unbounded tasks here.
        inflight = asyncio.Semaphore(self._max_inflight)
        pending: "set[asyncio.Task]" = set()
        self._connections.inc()

        async def handle_and_release(frame: bytes) -> None:
            self._inflight.add(1)
            try:
                await self._handle_request(frame, writer, write_lock,
                                           wire_state)
            finally:
                self._inflight.add(-1)
                inflight.release()

        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except (ConnectionError, OSError, ReproError):
                    break  # client vanished mid-frame or sent garbage
                if frame is None:
                    break
                self._frames_in.inc()
                self._bytes_in.inc(len(frame))
                await inflight.acquire()
                task = asyncio.ensure_future(handle_and_release(frame))
                pending.add(task)
                task.add_done_callback(pending.discard)
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        finally:
            for task in pending:
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(self, frame: bytes,
                              writer: asyncio.StreamWriter,
                              write_lock: asyncio.Lock,
                              wire_state: "dict[str, bool]") -> None:
        request_id = None
        error = None
        result: Any = None
        stamp: "dict | None" = None
        label = "unknown"
        recorder = get_recorder()
        start = self._metrics.registry.clock()
        try:
            request = json.loads(frame.decode("utf-8"))
            request_id = request.get("id")
            method = request.get("method")
            args = decode(request.get("args", []))
            kwargs = decode(request.get("kwargs", {}))
            # Caller's trace context, an optional request-envelope key —
            # absent/malformed (old or untraced peer) means "untraced".
            ctx = TraceContext.from_wire(request.get("trace"))
            # The auditor's session id and stamp request ride the same
            # optional-key pattern: an old client sends neither, an old
            # server ignores both.
            session = request.get("session")
            want_stamp = bool(request.get("stamp"))
            # Unknown method names come off the wire: fold them into one
            # bucket so a misbehaving peer can't mint unbounded metrics.
            known = method == "negotiate" or method in SERVING_METHODS
            label = method if known else "unknown"
            with get_tracer().span(f"rpc.server.{label}", parent=ctx):
                with self._metrics.time(f"method.{label}.seconds"):
                    if method == "negotiate":
                        result = negotiate_result(wire_state,
                                                  kwargs.get("codec"))
                        if wire_state["binary"]:
                            self._negotiated_binary.inc()
                    elif method not in SERVING_METHODS:
                        raise ReproError(f"unknown RPC method {method!r}")
                    elif want_stamp:
                        result, version = await self._service.stamped(
                            method, *args, **kwargs)
                        stamp = {"version": version}
                        if session is not None:
                            stamp["session"] = str(session)
                    else:
                        result = await getattr(self._service, method)(
                            *args, **kwargs)
        except Exception as exc:
            error = {"type": type(exc).__name__, "message": str(exc)}
            self._errors.inc()
            recorder.record("rpc.error", f"rpc.server.{label}",
                            method=label, error_type=type(exc).__name__,
                            message=str(exc))
        else:
            elapsed = self._metrics.registry.clock() - start
            if elapsed >= recorder.slow_call_seconds:
                recorder.record("rpc.slow_call", f"rpc.server.{label}",
                                method=label, seconds=elapsed)
        payload = encode_envelope(request_id, result, error,
                                  binary=wire_state["binary"], stamp=stamp)
        self._frames_out.inc()
        self._bytes_out.inc(len(payload))
        async with write_lock:
            try:
                write_frame(writer, payload)
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # client went away; nothing to deliver the reply to


# ----------------------------------------------------------------------
# client
# ----------------------------------------------------------------------
class RpcClient:
    """Pipelined client for :class:`RpcServer` (one connection, many
    in-flight requests matched by id)."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 registry: "MetricsRegistry | None" = None) -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self._pending: "dict[int, asyncio.Future]" = {}
        # Request ids issued via call_stamped: their futures resolve to
        # (result, stamp) pairs instead of the bare result.
        self._stamped: "set[int]" = set()
        self._receiver = asyncio.ensure_future(self._receive_loop())
        self._write_lock = asyncio.Lock()
        registry = registry if registry is not None else get_registry()
        self._metrics = registry.scope("rpc.client")
        self._frames_in = self._metrics.counter("frames_in")
        self._frames_out = self._metrics.counter("frames_out")
        self._bytes_in = self._metrics.counter("bytes_in")
        self._bytes_out = self._metrics.counter("bytes_out")
        self._errors = self._metrics.counter("errors")
        self._inflight = self._metrics.gauge("inflight")
        #: The negotiated response encoding ("json" until a successful
        #: ``negotiate`` round trip flips it).
        self.wire = "json"

    @classmethod
    async def connect(cls, host: str, port: int,
                      wire: str = "json",
                      registry: "MetricsRegistry | None" = None
                      ) -> "RpcClient":
        if wire not in ("json", "binary"):
            raise ReproError(f"unknown wire encoding {wire!r}")
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer, registry=registry)
        if wire == "binary":
            await client.negotiate()
        return client

    async def negotiate(self) -> str:
        """Ask the server for binary responses; returns the settled wire
        ("binary", or "json" when the server is older/mismatched — an
        old server reports an unknown method *error*, so a binary-hoping
        client degrades instead of hanging)."""
        try:
            reply = await self.call("negotiate",
                                    codec=BINARY_CODEC_VERSION)
        except RpcError:
            self.wire = "json"
            return self.wire
        self.wire = "binary" if isinstance(reply, dict) \
            and reply.get("wire") == "binary" else "json"
        return self.wire

    async def call(self, method: str, *args, **kwargs) -> Any:
        """Invoke a serving method remotely; raises :class:`RpcError`
        on a server-reported failure."""
        return await self._invoke(method, args, kwargs)

    async def call_stamped(self, method: str, *args,
                           session: "str | None" = None,
                           **kwargs) -> "tuple[Any, dict | None]":
        """Invoke a serving method and ask the server to *stamp* the
        reply with the backend version it was answered at — the
        observable read of the consistency auditor (DESIGN.md §15).
        Returns ``(result, stamp)``; ``session`` tags the stamp with
        this client stream's session id.  ``stamp`` is ``None`` when the
        server predates stamping (the extra request keys are ignored)."""
        return await self._invoke(method, args, kwargs, session=session,
                                  stamped=True)

    async def _invoke(self, method: str, args: tuple, kwargs: dict,
                      session: "str | None" = None,
                      stamped: bool = False) -> Any:
        if self._receiver.done():
            # The receive loop already died (close(), server EOF or a
            # garbled frame) and failed every pending future; a future
            # registered now would never resolve — fail fast instead.
            raise ReproError("RPC client connection is closed")
        loop = asyncio.get_running_loop()
        request_id = self._next_id
        self._next_id += 1
        future = loop.create_future()
        self._pending[request_id] = future
        if stamped:
            self._stamped.add(request_id)
        with get_tracer().span(f"rpc.client.{method}") as span:
            envelope = {"id": request_id, "method": method,
                        "args": encode(list(args)),
                        "kwargs": encode(kwargs)}
            if stamped:
                envelope["stamp"] = True
            if session is not None:
                envelope["session"] = str(session)
            if span is not None:
                # The client span is the server span's parent: its ids
                # ride the request envelope (requests are always JSON,
                # so one field layout covers both wire formats; an
                # untraced request carries no key at all and an old
                # server ignores the extra one).
                envelope["trace"] = span.ctx.to_wire()
            payload = _canonical_bytes(envelope)
            self._inflight.add(1)
            try:
                with self._metrics.time(f"method.{method}.seconds"):
                    async with self._write_lock:
                        write_frame(self._writer, payload)
                        await self._writer.drain()
                    self._frames_out.inc()
                    self._bytes_out.inc(len(payload))
                    return await future
            except RpcError:
                self._errors.inc()
                raise
            finally:
                self._inflight.add(-1)

    async def _receive_loop(self) -> None:
        error: "BaseException | None" = None
        try:
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    raise ReproError("RPC connection closed by server")
                self._frames_in.inc()
                self._bytes_in.inc(len(frame))
                body = loads_envelope(frame)
                request_id = body.get("id")
                future = self._pending.pop(request_id, None)
                wants_stamp = request_id in self._stamped
                self._stamped.discard(request_id)
                if future is None or future.done():
                    continue
                if "error" in body:
                    future.set_exception(RpcError(
                        body["error"]["type"], body["error"]["message"]))
                elif wants_stamp:
                    future.set_result((body["result"], body.get("stamp")))
                else:
                    future.set_result(body["result"])
        except asyncio.CancelledError:
            # close() cancelled us; fail the in-flight calls (finally)
            # rather than leaving their awaiters hanging forever.
            error = ReproError("RPC client closed")
            raise
        except Exception as exc:
            error = exc
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        error or ReproError("RPC client closed"))
            self._pending.clear()
            self._stamped.clear()

    async def close(self) -> None:
        self._receiver.cancel()
        try:
            await self._receiver
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "RpcClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()
