"""A small LRU cache for the serving layer.

``functools.lru_cache`` memoizes per-function and cannot be invalidated
when the backing ontology changes; this cache is an explicit object whose
keys embed the store version, so a refresh naturally misses and stale
entries age out of the LRU order instead of being served.

Hit/miss accounting lives on the :mod:`repro.obs` metrics registry
(counters under this cache's scope, plus per-endpoint counters and a
miss-compute latency histogram), so one process-wide snapshot covers
every cache; the legacy :attr:`stats` dict remains as a thin view.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable

from ..obs.metrics import Scope, get_registry

_MISSING = object()


class LruCache:
    """Bounded mapping with least-recently-used eviction.

    Args:
        maxsize: entry capacity (strictly positive).
        metrics: a registry :class:`~repro.obs.metrics.Scope` for this
            cache's counters; defaults to a fresh ``cache`` scope on the
            process registry.  The owning service passes a child of its
            own scope so the whole service reads as one subtree.
    """

    def __init__(self, maxsize: int = 4096,
                 metrics: "Scope | None" = None) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self._maxsize = maxsize
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._metrics = metrics if metrics is not None \
            else get_registry().scope("cache")
        self._hits = self._metrics.counter("hits")
        self._misses = self._metrics.counter("misses")
        self._size = self._metrics.gauge("size")

    # Legacy attribute views (``cache.hits`` predates the registry).
    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def metrics(self) -> Scope:
        return self._metrics

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def _record(self, hit: bool, endpoint: "str | None") -> None:
        (self._hits if hit else self._misses).inc()
        if endpoint is not None:
            self._metrics.counter(
                f"endpoint.{endpoint}.{'hits' if hit else 'misses'}").inc()

    def get(self, key: Hashable, default: Any = None,
            endpoint: "str | None" = None) -> Any:
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self._record(False, endpoint)
            return default
        self._record(True, endpoint)
        self._data.move_to_end(key)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self._maxsize:
            self._data.popitem(last=False)
        self._size.set(len(self._data))

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any],
                       endpoint: "str | None" = None) -> Any:
        """Return the cached value, computing and storing it on a miss.

        ``endpoint`` additionally buckets the hit/miss under
        ``endpoint.<name>.*`` counters, and the miss's compute time is
        observed into the ``miss_compute_seconds`` histogram.
        """
        value = self._data.get(key, _MISSING)
        if value is not _MISSING:
            self._record(True, endpoint)
            self._data.move_to_end(key)
            return value
        self._record(False, endpoint)
        with self._metrics.time("miss_compute_seconds"):
            value = compute()
        self.put(key, value)
        return value

    def purge(self, keep: "Callable[[Hashable], bool]") -> int:
        """Eagerly drop every entry whose key fails ``keep``.

        Version-keyed entries used to linger after a refresh until
        capacity pressure evicted them — a cache sized for one version's
        working set silently held N versions' garbage after a refresh
        burst.  The owning service now purges superseded versions on
        every applied delta; returns the number of entries dropped
        (also counted on the ``purged`` counter).
        """
        stale = [key for key in self._data if not keep(key)]
        for key in stale:
            del self._data[key]
        if stale:
            self._metrics.counter("purged").inc(len(stale))
            self._size.set(len(self._data))
        return len(stale)

    def clear(self) -> None:
        self._data.clear()
        self._size.set(0)

    @property
    def stats(self) -> dict[str, int]:
        # One scope snapshot (one registry-lock acquisition), so hits
        # and misses are a consistent cut — not two racing reads.
        snap = self._metrics.snapshot()
        return {"size": len(self._data), "hits": snap.get("hits", 0),
                "misses": snap.get("misses", 0)}
