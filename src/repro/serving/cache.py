"""A small LRU cache for the serving layer.

``functools.lru_cache`` memoizes per-function and cannot be invalidated
when the backing ontology changes; this cache is an explicit object whose
keys embed the store version, so a refresh naturally misses and stale
entries age out of the LRU order instead of being served.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable

_MISSING = object()


class LruCache:
    """Bounded mapping with least-recently-used eviction."""

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self._maxsize = maxsize
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self._maxsize:
            self._data.popitem(last=False)

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value, computing and storing it on a miss."""
        value = self._data.get(key, _MISSING)
        if value is not _MISSING:
            self.hits += 1
            self._data.move_to_end(key)
            return value
        self.misses += 1
        value = compute()
        self.put(key, value)
        return value

    def clear(self) -> None:
        self._data.clear()

    @property
    def stats(self) -> dict[str, int]:
        return {"size": len(self._data), "hits": self.hits,
                "misses": self.misses}
