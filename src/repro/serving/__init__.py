"""Online serving layer for the Attention Ontology (DESIGN.md).

The paper's deployment serves the ontology to heavy-traffic consumers —
document tagging at ~350 docs/second and query understanding in the search
stack — through RPC services over the MySQL store.  This package is the
reproduction's serving tier:

* :mod:`repro.serving.service` — :class:`OntologyService`: batched
  ``tag_documents()`` / ``interpret_queries()`` APIs, LRU-cached
  neighborhood expansion, user-profile and story-follow-up endpoints,
  and incremental ``refresh()`` from
  :class:`~repro.core.store.OntologyDelta` batches;
* :mod:`repro.serving.cache` — the version-aware :class:`LruCache` behind
  the service's caches.

Candidate generation inside the service runs off the
:class:`~repro.core.store.OntologyStore` inverted token index, replacing
the seed reproduction's O(all-nodes) scans per request.
"""

from .cache import LruCache
from .service import OntologyService

__all__ = [
    "LruCache",
    "OntologyService",
]
