"""Online serving layer for the Attention Ontology (DESIGN.md).

The paper's deployment serves the ontology to heavy-traffic consumers —
document tagging at ~350 docs/second and query understanding in the search
stack — through RPC services over the MySQL store.  This package is the
reproduction's serving tier:

* :mod:`repro.serving.service` — :class:`OntologyService`: batched
  ``tag_documents()`` / ``interpret_queries()`` APIs, LRU-cached
  neighborhood expansion, user-profile and story-follow-up endpoints,
  and incremental ``refresh()`` from
  :class:`~repro.core.store.OntologyDelta` batches;
* :mod:`repro.serving.cache` — the version-aware :class:`LruCache` behind
  the service's caches;
* :mod:`repro.serving.aio` — :class:`AsyncOntologyService`: the asyncio
  front that overlaps many concurrent client streams over one sync
  backend, funnelled through the bounded micro-batching queue in
  :mod:`repro.serving.batcher` (:class:`MicroBatcher`);
* :mod:`repro.serving.rpc` — the length-prefixed JSON RPC wrapper
  (:class:`RpcServer` / :class:`RpcClient`) that puts an async replica
  behind a TCP socket.

Candidate generation inside the service runs off the
:class:`~repro.core.store.OntologyStore` inverted token index, replacing
the seed reproduction's O(all-nodes) scans per request.
"""

from .aio import AsyncOntologyService
from .batcher import MicroBatcher
from .cache import LruCache
from .rpc import RpcClient, RpcError, RpcServer
from .service import OntologyService

__all__ = [
    "AsyncOntologyService",
    "LruCache",
    "MicroBatcher",
    "OntologyService",
    "RpcClient",
    "RpcError",
    "RpcServer",
]
