"""OntologyService: the online serving facade over an OntologyStore.

The production GIANT system serves two heavy-traffic workloads against the
ontology — tagging ~1.5M documents/day and interpreting user queries — via
RPC services backed by the MySQL store.  This module is the reproduction's
equivalent: a process-local service that

* answers **batched** ``tag_documents()`` / ``interpret_queries()``
  requests with taggers whose candidate generation reads a **maintained
  posting view** (no full node scans, no per-version cache misses);
* serves its four hot read paths — tag postings, ``user_interests``,
  ``recommend_for_user``, story ``follow_ups`` — from **incrementally
  maintained views** (DESIGN.md §13): a :class:`~repro.views.ViewCatalog`
  folds every applied :class:`~repro.core.store.OntologyDelta` (lowered
  to per-relation Z-sets) into the registered views, so ``refresh()``
  cost is proportional to the delta, not to cache churn;
* keeps the version-keyed LRU only for truly **ad-hoc** graph queries
  (neighborhood expansion, concept-of-entity lookups), and purges
  superseded-version entries eagerly on every applied delta;
* **refreshes incrementally** from pipeline-emitted delta batches — a
  serving replica replays the day's deltas instead of rebuilding or
  reloading a full snapshot.  The view catalog keeps its *own* version
  line: a delta that skips the store (already applied there) still
  folds into the views, a gap marks the catalog stale, and a stale or
  out-of-sync catalog rehydrates from the store at the next view-backed
  read — so out-of-band store mutations degrade to a rebuild, never to
  wrong answers.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..apps.profiles import InterestProfile, UserProfiler
from ..apps.query import QueryAnalysis, QueryUnderstander
from ..apps.story_tracker import StoryTracker
from ..apps.tagging import DocumentTagger, TaggedDocument
from ..core.ontology import AttentionOntology, NodeType
from ..core.store import EdgeType, OntologyDelta, OntologyStore
from ..core.zsets import delta_to_zsets
from ..errors import DeltaGapError, ReproError
from ..obs.metrics import MetricsRegistry, get_registry
from ..views import (
    PostingsStoreAdapter,
    StoryFollowUpsView,
    TokenPostingsView,
    UserInterestsView,
    ViewCatalog,
)
from .cache import LruCache

#: LRU key tags that remain version-keyed (the ad-hoc query cache);
#: entries from superseded versions are purged eagerly on refresh.
_VERSIONED_CACHE_TAGS = ("nbhd", "coe")


class OntologyService:
    """Batched online access to one ontology replica.

    Args:
        ontology: the :class:`AttentionOntology` façade (or a bare
            :class:`OntologyStore`) this replica serves.
        ner: gazetteer NER used by document tagging; ``tag_documents``
            raises without it, query interpretation works regardless.
        duet: optional Duet semantic matcher forwarded to the tagger.
        tagger_options: extra :class:`DocumentTagger` keyword arguments
            (thresholds).
        max_rewrites / max_recommendations: query-understanding caps.
        cache_size: LRU capacity for neighborhood/concept caches.
        profiler_options: :class:`UserProfiler` keyword arguments
            (decay/discounts).
        tracker_options: :class:`StoryTracker` keyword arguments.
        registry: metrics registry holding this replica's ``serving``
            scope (counters, latency histograms, and the cache's child
            scope); defaults to the process registry.
    """

    def __init__(self, ontology: "AttentionOntology | OntologyStore",
                 ner=None, duet=None,
                 tagger_options: "dict[str, Any] | None" = None,
                 max_rewrites: int = 5, max_recommendations: int = 5,
                 cache_size: int = 4096,
                 profiler_options: "dict[str, Any] | None" = None,
                 tracker_options: "dict[str, Any] | None" = None,
                 registry: "MetricsRegistry | None" = None) -> None:
        if isinstance(ontology, OntologyStore):
            ontology = AttentionOntology(store=ontology)
        self._ontology = ontology
        self._store = ontology.store
        self._ner = ner
        self._duet = duet
        self._tagger_options = dict(tagger_options or {})
        self._max_rewrites = max_rewrites
        self._max_recommendations = max_recommendations
        registry = registry if registry is not None else get_registry()
        self._metrics = registry.scope("serving")
        self._cache = LruCache(cache_size,
                               metrics=self._metrics.scope("cache"))
        self._tagger: "DocumentTagger | None" = None
        self._understander: "QueryUnderstander | None" = None
        self._built_version = -1
        self._documents_tagged = self._metrics.counter("documents_tagged")
        self._queries_interpreted = \
            self._metrics.counter("queries_interpreted")
        self._deltas_applied = self._metrics.counter("deltas_applied")
        self._profiler_options = dict(profiler_options or {})
        self._tracker_options = dict(tracker_options or {})
        self._profiler: "UserProfiler | None" = None
        self._tracker: "StoryTracker | None" = None
        self._profile_revisions: dict[str, int] = {}
        self._events_tracked = self._metrics.counter("events_tracked")

        # Maintained views (DESIGN.md §13).  The catalog is fed by
        # fold_views() on every refresh; reads go through _sync_views()
        # so a stale catalog (gap, or out-of-band store mutation)
        # rehydrates before serving.
        self._views = ViewCatalog(metrics=self._metrics.scope("views"))
        self._interests = self._views.register(
            "interests", UserInterestsView(self._get_profiler,
                                           self._ontology))
        self._followups = self._views.register(
            "story_follow_ups", StoryFollowUpsView(lambda: self._tracker))
        if isinstance(self._store, OntologyStore):
            # Single-replica serving: posting lookups come from a local
            # maintained view spliced under the tagger via an adapter.
            self._postings = self._views.register(
                "tag_postings", TokenPostingsView(self._store))
            self._tagger_ontology = AttentionOntology(
                store=PostingsStoreAdapter(self._store, self._postings))
        else:
            # Cluster serving: the store is a scatter-gather view whose
            # shards each maintain their own posting fragment
            # (ShardReplica.views); nothing to materialize here.
            self._postings = None
            self._tagger_ontology = self._ontology
        self._views.rehydrate(self._store.version, count=False)

    # ------------------------------------------------------------------
    # replica state
    # ------------------------------------------------------------------
    @property
    def ontology(self) -> AttentionOntology:
        return self._ontology

    @property
    def version(self) -> int:
        """Store version this replica currently serves."""
        return self._store.version

    def refresh(self, deltas: "Iterable[OntologyDelta]") -> int:
        """Apply pipeline update batches; returns how many were applied.

        Deltas already behind the replica's version are skipped (an
        at-least-once delivery of the same day's batches is harmless);
        a delta from the future raises :class:`DeltaGapError` *before*
        any of its ops touch the store, signalling a gap in the stream,
        and so does a batch *straddling* the replica's version (base
        behind, end ahead — e.g. a tail whose base predates the snapshot
        the replica bootstrapped from), naming the already-applied
        overlap.  Each delta is therefore either fully applied or
        cleanly rejected — contiguous prefixes applied earlier in the
        same call remain valid and the missing range can be
        re-delivered.
        """
        applied = 0
        for delta in deltas:
            if DeltaGapError.check("replica", self._store.version, delta):
                self._store.apply_delta(delta)
                applied += 1
                self._deltas_applied.inc()
            # Fold even store-skipped deltas: the catalog keeps its own
            # version line (a shared-store deployment may have applied
            # the delta to the store out-of-band already).
            self.fold_views(delta)
        return applied

    # ------------------------------------------------------------------
    # maintained views
    # ------------------------------------------------------------------
    @property
    def views(self) -> ViewCatalog:
        """This replica's maintained-view catalog."""
        return self._views

    def fold_views(self, delta: OntologyDelta) -> str:
        """Advance the view catalog by one delta (refresh = "apply the
        delta to the catalog", not "bump the version and let caches
        miss").

        Gated on the *catalog's* version line: a delta at or behind it
        is skipped, a contiguous one is lowered to per-relation Z-sets
        and folded into every view in one pass, and a gap marks the
        catalog stale (repaired by rehydration at the next view read).
        Returns ``"applied"`` / ``"skipped"`` / ``"stale"``.
        """
        if delta.version <= self._views.version:
            return "skipped"
        if delta.base_version != self._views.version:
            self._views.mark_stale()
            return "stale"
        self._views.advance(delta_to_zsets(delta), version=delta.version)
        self._purge_superseded()
        return "applied"

    def fast_forward_views(self, version: int) -> None:
        """Adopt ``version`` on the catalog without folding — for owners
        that hydrate the store out-of-band (cluster bootstrap) while the
        views were rebuilt from the hydrated store."""
        self._views.rehydrate(version, count=False)

    def _sync_views(self) -> None:
        """Repair the catalog before a view-backed read if it missed
        anything: a marked gap, or a store version the fold stream never
        delivered (out-of-band mutation)."""
        if self._views.stale or self._views.version != self._store.version:
            self._views.rehydrate(self._store.version)

    def _purge_superseded(self) -> None:
        """Eagerly drop ad-hoc cache entries keyed to older versions."""
        version = self._store.version
        self._cache.purge(
            lambda key: key[1] == version
            if isinstance(key, tuple) and len(key) > 1
            and key[0] in _VERSIONED_CACHE_TAGS else True)

    def _ensure_current(self) -> None:
        """(Re)build version-bound helpers after any store change."""
        if self._built_version == self._store.version:
            return
        self._understander = QueryUnderstander(
            self._ontology, max_rewrites=self._max_rewrites,
            max_recommendations=self._max_recommendations,
        )
        self._tagger = None  # rebuilt lazily; needs the NER gazetteer
        self._built_version = self._store.version

    def _get_tagger(self) -> DocumentTagger:
        self._sync_views()
        self._ensure_current()
        if self._tagger is None:
            if self._ner is None:
                raise ReproError(
                    "OntologyService needs a NER tagger to tag documents"
                )
            # The tagger's candidate generation reads posting lists off
            # the maintained view (via the adapter ontology) instead of
            # re-filtering the store per version.
            self._tagger = DocumentTagger(self._tagger_ontology, self._ner,
                                          duet=self._duet,
                                          **self._tagger_options)
        return self._tagger

    # ------------------------------------------------------------------
    # batched serving APIs
    # ------------------------------------------------------------------
    def tag_documents(self, documents: Sequence) -> list[TaggedDocument]:
        """Tag a batch of documents.

        Each item is either an object with ``doc_id`` / ``title_tokens`` /
        ``sentences`` attributes (e.g. the synth corpus documents) or a
        ``(doc_id, title_tokens, sentences)`` tuple.
        """
        tagger = self._get_tagger()
        out: list[TaggedDocument] = []
        with self._metrics.time("tag_seconds"):
            for doc in documents:
                if isinstance(doc, tuple):
                    doc_id, title_tokens, sentences = doc
                else:
                    doc_id, title_tokens, sentences = (
                        doc.doc_id, doc.title_tokens, doc.sentences
                    )
                out.append(tagger.tag(doc_id, title_tokens, sentences))
        self._documents_tagged.inc(len(out))
        return out

    def interpret_queries(self, queries: Sequence[str]) -> list[QueryAnalysis]:
        """Analyze a batch of raw query strings."""
        self._ensure_current()
        with self._metrics.time("query_seconds"):
            out = [self._understander.analyze(query) for query in queries]
        self._queries_interpreted.inc(len(out))
        return out

    # ------------------------------------------------------------------
    # cached graph expansion
    # ------------------------------------------------------------------
    def neighborhood(self, node_id: str, depth: int = 1,
                     edge_type: "EdgeType | None" = None) -> tuple[str, ...]:
        """Node ids reachable from ``node_id`` within ``depth`` hops
        (undirected over ``edge_type``, or all edge types when ``None``);
        LRU-cached per store version."""
        key = ("nbhd", self._store.version, node_id, depth,
               edge_type.value if edge_type is not None else None)
        return self._cache.get_or_compute(
            key, lambda: self._expand(node_id, depth, edge_type),
            endpoint="neighborhood",
        )

    def _expand(self, node_id: str, depth: int,
                edge_type: "EdgeType | None") -> tuple[str, ...]:
        store = self._store
        frontier = {node_id}
        visited = {node_id}
        for _hop in range(depth):
            nxt: set[str] = set()
            for current in frontier:
                for node in store.successors(current, edge_type):
                    if node.node_id not in visited:
                        nxt.add(node.node_id)
                for node in store.predecessors(current, edge_type):
                    if node.node_id not in visited:
                        nxt.add(node.node_id)
            visited.update(nxt)
            frontier = nxt
            if not frontier:
                break
        visited.discard(node_id)
        return tuple(sorted(visited))

    def concepts_of_entity(self, entity_phrase: str) -> tuple[str, ...]:
        """Concept phrases whose isA instances include the entity; cached."""
        key = ("coe", self._store.version, entity_phrase)
        return self._cache.get_or_compute(
            key,
            lambda: tuple(sorted(
                c.phrase
                for c in self._ontology.concepts_of_entity(entity_phrase)
            )),
            endpoint="concepts_of_entity",
        )

    # ------------------------------------------------------------------
    # user-profile endpoints (paper Figure 2 application component)
    # ------------------------------------------------------------------
    def _get_profiler(self) -> UserProfiler:
        if self._profiler is None:
            self._profiler = UserProfiler(self._ontology,
                                          **self._profiler_options)
        return self._profiler

    def record_read(self, user_id: str, tags: "list[str]",
                    weight: float = 1.0) -> InterestProfile:
        """Fold one read document's tags into a user's interest profile.

        Bumps the user's profile revision, so cached recommendation /
        interest entries for that user invalidate themselves.
        """
        self._sync_views()
        profile = self._get_profiler().record_read(user_id, tags,
                                                   weight=weight)
        self._profile_revisions[user_id] = (
            self._profile_revisions.get(user_id, 0) + 1)
        # The profile stream does not travel in the ontology delta log,
        # so it feeds the interests view out-of-band (timed like a fold).
        self._views.feed(
            "interests", lambda: self._interests.user_touched(user_id))
        return profile

    def user_interests(self, user_id: str, k: int = 10,
                       node_type: "NodeType | None" = None
                       ) -> tuple[tuple[str, float], ...]:
        """Top-k (phrase, weight) interests after edge expansion, read
        straight off the maintained interests view (a filtered prefix of
        the user's ranked list — no cache, no recompute)."""
        self._sync_views()
        return tuple(self._interests.interests(user_id, k=k,
                                               node_type=node_type))

    def recommend_for_user(self, user_id: str, k: int = 5
                           ) -> tuple[tuple[str, float], ...]:
        """Ranked *inferred* tags (hidden interests) for a user — the
        non-observed prefix of the same maintained ranked list that
        serves :meth:`user_interests`."""
        self._sync_views()
        return tuple(self._interests.recommendations(user_id, k=k))

    # ------------------------------------------------------------------
    # story-tracking endpoints (developing stories, paper Section 2/4)
    # ------------------------------------------------------------------
    def _get_tracker(self) -> StoryTracker:
        if self._tracker is None:
            self._tracker = StoryTracker(**self._tracker_options)
        return self._tracker

    def track_events(self, events) -> int:
        """Route a batch of event records into tracked stories; returns
        the number of stories currently tracked.  The tracker's routing
        decisions feed the follow-ups view, so follow-up reads stay a
        lookup instead of a per-revision recompute."""
        events = list(events)
        self._sync_views()
        tracker = self._get_tracker()
        assignments = tracker.add_events(events)
        self._views.feed(
            "story_follow_ups", lambda: self._followups.feed(assignments))
        self._events_tracked.inc(len(events))
        return len(tracker)

    def follow_ups(self, read_phrase: str, limit: int = 3) -> tuple:
        """Fresh unseen events in the story of a just-read event, read
        off the maintained (story, phrase) follow-up sequences."""
        self._sync_views()
        return tuple(self._followups.follow_ups(read_phrase, limit=limit))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Serving counters plus the replica's ontology stats.

        ``stories_tracked`` is ``None`` until story tracking is first
        used and a count (possibly 0) afterwards — ``is not None``
        rather than truthiness, so an instantiated-but-empty tracker is
        distinguishable from no tracker at all.

        The counters are one scope snapshot (a single registry-lock
        acquisition), so the dict is a consistent cut — this method is
        the legacy view over the :mod:`repro.obs` registry.
        """
        snap = self._metrics.snapshot()
        return {
            "version": self._store.version,
            "documents_tagged": snap.get("documents_tagged", 0),
            "queries_interpreted": snap.get("queries_interpreted", 0),
            "deltas_applied": snap.get("deltas_applied", 0),
            "profiles": len(self._profile_revisions),
            "events_tracked": snap.get("events_tracked", 0),
            "stories_tracked": (len(self._tracker)
                                if self._tracker is not None else None),
            "cache": self._cache.stats,
            "views": self._views.stats(),
            "ontology": self._store.stats(),
        }

    @property
    def metrics(self):
        """This replica's ``serving`` registry scope."""
        return self._metrics
