"""OntologyService: the online serving facade over an OntologyStore.

The production GIANT system serves two heavy-traffic workloads against the
ontology — tagging ~1.5M documents/day and interpreting user queries — via
RPC services backed by the MySQL store.  This module is the reproduction's
equivalent: a process-local service that

* answers **batched** ``tag_documents()`` / ``interpret_queries()``
  requests with taggers whose candidate generation runs off the store's
  inverted token index (no full node scans);
* **caches** neighborhood expansions and concept lookups in an LRU keyed
  by the store version, so entries invalidate themselves when the
  ontology changes;
* **refreshes incrementally** from pipeline-emitted
  :class:`~repro.core.store.OntologyDelta` batches — a serving replica
  replays the day's deltas instead of rebuilding or reloading a full
  snapshot;
* serves **user profiles** (interest accumulation + edge expansion) and
  **story follow-ups** as endpoints with the same version/revision-keyed
  caching, closing the serving-coverage gap for the paper's
  recommendation applications.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..apps.profiles import InterestProfile, UserProfiler
from ..apps.query import QueryAnalysis, QueryUnderstander
from ..apps.story_tracker import StoryTracker
from ..apps.tagging import DocumentTagger, TaggedDocument
from ..core.ontology import AttentionOntology, NodeType
from ..core.store import EdgeType, OntologyDelta, OntologyStore
from ..errors import DeltaGapError, ReproError
from ..obs.metrics import MetricsRegistry, get_registry
from .cache import LruCache


class OntologyService:
    """Batched online access to one ontology replica.

    Args:
        ontology: the :class:`AttentionOntology` façade (or a bare
            :class:`OntologyStore`) this replica serves.
        ner: gazetteer NER used by document tagging; ``tag_documents``
            raises without it, query interpretation works regardless.
        duet: optional Duet semantic matcher forwarded to the tagger.
        tagger_options: extra :class:`DocumentTagger` keyword arguments
            (thresholds).
        max_rewrites / max_recommendations: query-understanding caps.
        cache_size: LRU capacity for neighborhood/concept caches.
        profiler_options: :class:`UserProfiler` keyword arguments
            (decay/discounts).
        tracker_options: :class:`StoryTracker` keyword arguments.
        registry: metrics registry holding this replica's ``serving``
            scope (counters, latency histograms, and the cache's child
            scope); defaults to the process registry.
    """

    def __init__(self, ontology: "AttentionOntology | OntologyStore",
                 ner=None, duet=None,
                 tagger_options: "dict[str, Any] | None" = None,
                 max_rewrites: int = 5, max_recommendations: int = 5,
                 cache_size: int = 4096,
                 profiler_options: "dict[str, Any] | None" = None,
                 tracker_options: "dict[str, Any] | None" = None,
                 registry: "MetricsRegistry | None" = None) -> None:
        if isinstance(ontology, OntologyStore):
            ontology = AttentionOntology(store=ontology)
        self._ontology = ontology
        self._store = ontology.store
        self._ner = ner
        self._duet = duet
        self._tagger_options = dict(tagger_options or {})
        self._max_rewrites = max_rewrites
        self._max_recommendations = max_recommendations
        registry = registry if registry is not None else get_registry()
        self._metrics = registry.scope("serving")
        self._cache = LruCache(cache_size,
                               metrics=self._metrics.scope("cache"))
        self._tagger: "DocumentTagger | None" = None
        self._understander: "QueryUnderstander | None" = None
        self._built_version = -1
        self._documents_tagged = self._metrics.counter("documents_tagged")
        self._queries_interpreted = \
            self._metrics.counter("queries_interpreted")
        self._deltas_applied = self._metrics.counter("deltas_applied")
        self._profiler_options = dict(profiler_options or {})
        self._tracker_options = dict(tracker_options or {})
        self._profiler: "UserProfiler | None" = None
        self._tracker: "StoryTracker | None" = None
        self._profile_revisions: dict[str, int] = {}
        self._events_tracked = self._metrics.counter("events_tracked")

    # ------------------------------------------------------------------
    # replica state
    # ------------------------------------------------------------------
    @property
    def ontology(self) -> AttentionOntology:
        return self._ontology

    @property
    def version(self) -> int:
        """Store version this replica currently serves."""
        return self._store.version

    def refresh(self, deltas: "Iterable[OntologyDelta]") -> int:
        """Apply pipeline update batches; returns how many were applied.

        Deltas already behind the replica's version are skipped (an
        at-least-once delivery of the same day's batches is harmless);
        a delta from the future raises :class:`DeltaGapError` *before*
        any of its ops touch the store, signalling a gap in the stream,
        and so does a batch *straddling* the replica's version (base
        behind, end ahead — e.g. a tail whose base predates the snapshot
        the replica bootstrapped from), naming the already-applied
        overlap.  Each delta is therefore either fully applied or
        cleanly rejected — contiguous prefixes applied earlier in the
        same call remain valid and the missing range can be
        re-delivered.
        """
        applied = 0
        for delta in deltas:
            if not DeltaGapError.check("replica", self._store.version,
                                       delta):
                continue
            self._store.apply_delta(delta)
            applied += 1
            self._deltas_applied.inc()
        return applied

    def _ensure_current(self) -> None:
        """(Re)build version-bound helpers after any store change."""
        if self._built_version == self._store.version:
            return
        self._understander = QueryUnderstander(
            self._ontology, max_rewrites=self._max_rewrites,
            max_recommendations=self._max_recommendations,
        )
        self._tagger = None  # rebuilt lazily; needs the NER gazetteer
        self._built_version = self._store.version

    def _get_tagger(self) -> DocumentTagger:
        self._ensure_current()
        if self._tagger is None:
            if self._ner is None:
                raise ReproError(
                    "OntologyService needs a NER tagger to tag documents"
                )
            self._tagger = DocumentTagger(self._ontology, self._ner,
                                          duet=self._duet,
                                          **self._tagger_options)
        return self._tagger

    # ------------------------------------------------------------------
    # batched serving APIs
    # ------------------------------------------------------------------
    def tag_documents(self, documents: Sequence) -> list[TaggedDocument]:
        """Tag a batch of documents.

        Each item is either an object with ``doc_id`` / ``title_tokens`` /
        ``sentences`` attributes (e.g. the synth corpus documents) or a
        ``(doc_id, title_tokens, sentences)`` tuple.
        """
        tagger = self._get_tagger()
        out: list[TaggedDocument] = []
        with self._metrics.time("tag_seconds"):
            for doc in documents:
                if isinstance(doc, tuple):
                    doc_id, title_tokens, sentences = doc
                else:
                    doc_id, title_tokens, sentences = (
                        doc.doc_id, doc.title_tokens, doc.sentences
                    )
                out.append(tagger.tag(doc_id, title_tokens, sentences))
        self._documents_tagged.inc(len(out))
        return out

    def interpret_queries(self, queries: Sequence[str]) -> list[QueryAnalysis]:
        """Analyze a batch of raw query strings."""
        self._ensure_current()
        with self._metrics.time("query_seconds"):
            out = [self._understander.analyze(query) for query in queries]
        self._queries_interpreted.inc(len(out))
        return out

    # ------------------------------------------------------------------
    # cached graph expansion
    # ------------------------------------------------------------------
    def neighborhood(self, node_id: str, depth: int = 1,
                     edge_type: "EdgeType | None" = None) -> tuple[str, ...]:
        """Node ids reachable from ``node_id`` within ``depth`` hops
        (undirected over ``edge_type``, or all edge types when ``None``);
        LRU-cached per store version."""
        key = ("nbhd", self._store.version, node_id, depth,
               edge_type.value if edge_type is not None else None)
        return self._cache.get_or_compute(
            key, lambda: self._expand(node_id, depth, edge_type),
            endpoint="neighborhood",
        )

    def _expand(self, node_id: str, depth: int,
                edge_type: "EdgeType | None") -> tuple[str, ...]:
        store = self._store
        frontier = {node_id}
        visited = {node_id}
        for _hop in range(depth):
            nxt: set[str] = set()
            for current in frontier:
                for node in store.successors(current, edge_type):
                    if node.node_id not in visited:
                        nxt.add(node.node_id)
                for node in store.predecessors(current, edge_type):
                    if node.node_id not in visited:
                        nxt.add(node.node_id)
            visited.update(nxt)
            frontier = nxt
            if not frontier:
                break
        visited.discard(node_id)
        return tuple(sorted(visited))

    def concepts_of_entity(self, entity_phrase: str) -> tuple[str, ...]:
        """Concept phrases whose isA instances include the entity; cached."""
        key = ("coe", self._store.version, entity_phrase)
        return self._cache.get_or_compute(
            key,
            lambda: tuple(sorted(
                c.phrase
                for c in self._ontology.concepts_of_entity(entity_phrase)
            )),
            endpoint="concepts_of_entity",
        )

    # ------------------------------------------------------------------
    # user-profile endpoints (paper Figure 2 application component)
    # ------------------------------------------------------------------
    def _get_profiler(self) -> UserProfiler:
        if self._profiler is None:
            self._profiler = UserProfiler(self._ontology,
                                          **self._profiler_options)
        return self._profiler

    def record_read(self, user_id: str, tags: "list[str]",
                    weight: float = 1.0) -> InterestProfile:
        """Fold one read document's tags into a user's interest profile.

        Bumps the user's profile revision, so cached recommendation /
        interest entries for that user invalidate themselves.
        """
        profile = self._get_profiler().record_read(user_id, tags,
                                                   weight=weight)
        self._profile_revisions[user_id] = (
            self._profile_revisions.get(user_id, 0) + 1)
        return profile

    def user_interests(self, user_id: str, k: int = 10,
                       node_type: "NodeType | None" = None
                       ) -> tuple[tuple[str, float], ...]:
        """Top-k (phrase, weight) interests after edge expansion; cached
        per (store version, profile revision)."""
        key = ("interests", self._store.version,
               self._profile_revisions.get(user_id, 0), user_id, k,
               node_type.value if node_type is not None else None)
        return self._cache.get_or_compute(
            key,
            lambda: tuple(self._get_profiler().infer(user_id)
                          .top(self._ontology, k=k, node_type=node_type)),
            endpoint="user_interests",
        )

    def recommend_for_user(self, user_id: str, k: int = 5
                           ) -> tuple[tuple[str, float], ...]:
        """Ranked *inferred* tags (hidden interests) for a user; cached
        per (store version, profile revision)."""
        key = ("urec", self._store.version,
               self._profile_revisions.get(user_id, 0), user_id, k)
        return self._cache.get_or_compute(
            key,
            lambda: tuple(self._get_profiler().recommend_tags(user_id, k=k)),
            endpoint="recommend_for_user",
        )

    # ------------------------------------------------------------------
    # story-tracking endpoints (developing stories, paper Section 2/4)
    # ------------------------------------------------------------------
    def _get_tracker(self) -> StoryTracker:
        if self._tracker is None:
            self._tracker = StoryTracker(**self._tracker_options)
        return self._tracker

    def track_events(self, events) -> int:
        """Route a batch of event records into tracked stories; returns
        the number of stories currently tracked."""
        events = list(events)
        tracker = self._get_tracker()
        tracker.add_events(events)
        self._events_tracked.inc(len(events))
        return len(tracker)

    def follow_ups(self, read_phrase: str, limit: int = 3) -> tuple:
        """Fresh unseen events in the story of a just-read event; cached
        per tracker revision (the number of events routed so far)."""
        key = ("fup", self._events_tracked.value, read_phrase, limit)
        return self._cache.get_or_compute(
            key,
            lambda: tuple(self._get_tracker().follow_ups(read_phrase,
                                                         limit=limit)),
            endpoint="follow_ups",
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Serving counters plus the replica's ontology stats.

        ``stories_tracked`` is ``None`` until story tracking is first
        used and a count (possibly 0) afterwards — ``is not None``
        rather than truthiness, so an instantiated-but-empty tracker is
        distinguishable from no tracker at all.

        The counters are one scope snapshot (a single registry-lock
        acquisition), so the dict is a consistent cut — this method is
        the legacy view over the :mod:`repro.obs` registry.
        """
        snap = self._metrics.snapshot()
        return {
            "version": self._store.version,
            "documents_tagged": snap.get("documents_tagged", 0),
            "queries_interpreted": snap.get("queries_interpreted", 0),
            "deltas_applied": snap.get("deltas_applied", 0),
            "profiles": len(self._profile_revisions),
            "events_tracked": snap.get("events_tracked", 0),
            "stories_tracked": (len(self._tracker)
                                if self._tracker is not None else None),
            "cache": self._cache.stats,
            "ontology": self._store.stats(),
        }

    @property
    def metrics(self):
        """This replica's ``serving`` registry scope."""
        return self._metrics
