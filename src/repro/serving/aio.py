"""AsyncOntologyService: the asyncio front of the serving tier.

GIANT's deployment serves tagging and query interpretation as RPC
services under heavy concurrent traffic.  The sync
:class:`~repro.serving.service.OntologyService` (and its sharded drop-in
:class:`~repro.cluster.service.ClusterService`) execute one call at a
time in the caller's thread, so one slow caller stalls every stream.
This module puts an asyncio façade in front of *any* backend exposing
the ``OntologyService`` API:

* every endpoint is awaitable — N client streams interleave on the
  event loop instead of serializing behind a blocking call;
* batchable endpoints (``tag_documents`` / ``interpret_queries``) funnel
  through a bounded :class:`~repro.serving.batcher.MicroBatcher` that
  merges concurrent requests into larger backend batches (flush on
  max-batch-size or max-latency deadline) executed on a worker thread;
* point endpoints (neighborhood, profiles, stories) ride the same
  serialized queue, so the single-threaded sync backend never sees
  concurrent access;
* :meth:`refresh` applies delta batches **between** merged batches,
  never mid-batch — every response is computed against exactly one
  store version, and the backend's version-keyed caches stay correct.

Results are the same objects the sync backend returns, so sync and
async answers to identical requests are byte-identical (the aio tests
assert this, black-box consistency-checker style).
"""

from __future__ import annotations

import asyncio
from typing import Any, Iterable, Sequence

from ..core.store import EdgeType, OntologyDelta
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.recorder import get_recorder
from ..obs.slo import get_slo_engine
from ..obs.timeseries import get_collector
from ..obs.tracing import get_tracer
from .batcher import MicroBatcher

#: Endpoints the async façade (and the RPC wrapper) expose.
SERVING_METHODS = (
    "tag_documents",
    "interpret_queries",
    "neighborhood",
    "concepts_of_entity",
    "record_read",
    "user_interests",
    "recommend_for_user",
    "track_events",
    "follow_ups",
    "refresh",
    "stats",
    "obs_status",
    "obs_watch",
    "obs_dump",
)


class AsyncOntologyService:
    """Awaitable micro-batched access to a sync serving backend.

    Args:
        backend: any object with the :class:`OntologyService` API —
            a single-store service or a :class:`ClusterService`.
        max_batch_size / max_delay / max_queue: forwarded to the
            :class:`MicroBatcher` (items per merged batch, flush
            deadline in seconds, request-queue bound).
        registry: metrics registry for this façade's ``aio`` scope and
            its batcher's child scope; defaults to the process registry.

    Use as an async context manager (or call :meth:`close`) so the
    dispatcher task and worker thread shut down cleanly.
    """

    def __init__(self, backend, *, max_batch_size: int = 32,
                 max_delay: float = 0.005, max_queue: int = 1024,
                 registry: "MetricsRegistry | None" = None) -> None:
        self._backend = backend
        self._registry = registry if registry is not None else get_registry()
        self._metrics = self._registry.scope("aio")
        self._batcher = MicroBatcher(
            self._execute, max_batch_size=max_batch_size,
            max_delay=max_delay, max_queue=max_queue,
            metrics=self._metrics.scope("batcher"),
        )

    # ------------------------------------------------------------------
    # worker-thread execution (single-threaded; called by the batcher)
    # ------------------------------------------------------------------
    def _execute(self, kind: str, items: list) -> Sequence:
        if kind == "tag":
            return self._backend.tag_documents(items)
        if kind == "query":
            return self._backend.interpret_queries(items)
        if kind.startswith("stamped:"):
            # Stamped execution (the consistency auditor's observable
            # read): pair each result with the backend version it was
            # answered at.  Every backend mutation — refresh, sync,
            # rebalance steps — rides this same serialized queue, so the
            # version read *after* the call is exactly the version the
            # call executed against; the stamp cannot tear.
            return [(self._dispatch(method, args, kwargs),
                     self._backend.version)
                    for method, args, kwargs in items]
        # Generic endpoint calls: items are (method, args, kwargs)
        # singletons, executed one by one on the same worker thread.
        return [self._dispatch(method, args, kwargs)
                for method, args, kwargs in items]

    def _dispatch(self, method: str, args: tuple, kwargs: dict) -> Any:
        if method == "stats":
            # Gather backend and batcher stats together on the
            # serialized worker thread, so concurrent streams never
            # observe a torn pair (e.g. batcher counters from after
            # a flush glued to backend counters from before it).
            stats = self._backend.stats()
            stats["async"] = self._batcher.stats
            return stats
        if method == "obs_status":
            return self._obs_status()
        if method == "obs_watch":
            return self._obs_watch(*args, **kwargs)
        if method == "obs_dump":
            return self._obs_dump()
        return getattr(self._backend, method)(*args, **kwargs)

    def _obs_status(self) -> dict:
        status = {"metrics": self._registry.snapshot(),
                  "tracer": get_tracer().describe()}
        catalog = getattr(self._backend, "views", None)
        if catalog is not None:
            # Headline view-maintenance counters (views maintained,
            # deltas folded, maintenance p95) alongside the raw
            # serving.views.* instruments in the metrics snapshot.
            status["views"] = catalog.stats()
        backend_obs = getattr(self._backend, "obs_status", None)
        if callable(backend_obs):
            status["backend"] = backend_obs()
        return status

    def _obs_watch(self, points: int = 30,
                   prefix: "str | None" = None) -> dict:
        """The continuous-telemetry payload (DESIGN.md §14): collector
        series tails, SLO verdicts, and the flight-recorder summary.
        Runs on the serialized worker thread like ``obs_status``, so the
        series/verdict pair is a consistent cut.  With no background
        collector thread the call samples on demand — each ``watch``
        poll advances the series (pull-based collection)."""
        watch: dict = {"recorder": get_recorder().describe()}
        collector = get_collector()
        if collector is None:
            watch["collector"] = None
            watch["series"] = {}
            watch["slo"] = []
            return watch
        if not collector.running:
            collector.sample()
        watch["collector"] = collector.describe()
        watch["series"] = collector.tail(points, prefix=prefix)
        engine = get_slo_engine()
        watch["slo"] = engine.evaluate_all() if engine is not None else []
        return watch

    def _obs_dump(self) -> dict:
        """Dump the flight-recorder ring on demand; returns the events
        themselves too, so a remote operator gets them even when the
        serving process has no recorder directory configured."""
        recorder = get_recorder()
        path = recorder.dump(reason="on-demand")
        return {"path": path, "events": recorder.events(),
                "recorder": recorder.describe()}

    async def _call(self, method: str, *args, **kwargs) -> Any:
        [result] = await self._batcher.submit(
            f"call:{method}", [(method, args, kwargs)], mergeable=False)
        return result

    async def stamped(self, method: str, *args,
                      **kwargs) -> "tuple[Any, int]":
        """Execute one serving call and return ``(result, version)``
        where ``version`` is the backend version the call was answered
        at — captured atomically on the serialized worker thread (see
        :meth:`_execute`).  This is the server half of the auditor's
        stamped-read protocol; stamped ``tag_documents`` /
        ``interpret_queries`` calls trade batch merging for the exact
        stamp (they flush as singleton barrier batches)."""
        [pair] = await self._batcher.submit(
            f"stamped:{method}", [(method, args, kwargs)], mergeable=False)
        return pair

    # ------------------------------------------------------------------
    # batchable serving APIs (merged across concurrent callers)
    # ------------------------------------------------------------------
    async def tag_documents(self, documents: Sequence) -> list:
        """Tag a batch of documents; concurrent calls may be merged into
        one backend batch, each caller still gets exactly its slice."""
        return await self._batcher.submit("tag", list(documents))

    async def interpret_queries(self, queries: "Sequence[str]") -> list:
        """Analyze a batch of raw query strings (merged like tagging)."""
        return await self._batcher.submit("query", list(queries))

    # ------------------------------------------------------------------
    # point endpoints (serialized, singleton batches)
    # ------------------------------------------------------------------
    async def neighborhood(self, node_id: str, depth: int = 1,
                           edge_type: "EdgeType | None" = None
                           ) -> "tuple[str, ...]":
        return await self._call("neighborhood", node_id, depth=depth,
                                edge_type=edge_type)

    async def concepts_of_entity(self, entity_phrase: str
                                 ) -> "tuple[str, ...]":
        return await self._call("concepts_of_entity", entity_phrase)

    async def record_read(self, user_id: str, tags: "list[str]",
                          weight: float = 1.0):
        return await self._call("record_read", user_id, tags, weight=weight)

    async def user_interests(self, user_id: str, k: int = 10,
                             node_type=None):
        return await self._call("user_interests", user_id, k=k,
                                node_type=node_type)

    async def recommend_for_user(self, user_id: str, k: int = 5):
        return await self._call("recommend_for_user", user_id, k=k)

    async def track_events(self, events) -> int:
        return await self._call("track_events", list(events))

    async def follow_ups(self, read_phrase: str, limit: int = 3) -> tuple:
        return await self._call("follow_ups", read_phrase, limit=limit)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    async def refresh(self, deltas: "Iterable[OntologyDelta]") -> int:
        """Apply pipeline delta batches on the backend.

        The refresh rides the serialized request queue, so it executes
        *between* merged batches — in-flight batches finish against the
        old version, later ones see the new one; no response mixes two
        store versions.
        """
        return await self._call("refresh", list(deltas))

    async def stats(self) -> dict:
        """Backend counters plus the async tier's batching stats.

        Both halves are collected inside one serialized worker-thread
        call (see :meth:`_execute`), so the combined dict is a
        consistent snapshot even under concurrent request streams.
        """
        return await self._call("stats")

    async def obs_status(self) -> dict:
        """Registry snapshot + tracer state (the ``obs_status`` RPC
        payload), taken on the serialized worker thread."""
        return await self._call("obs_status")

    async def obs_watch(self, points: int = 30,
                        prefix: "str | None" = None) -> dict:
        """Collector series tails + SLO verdicts + recorder summary
        (the ``obs_watch`` RPC payload / ``cli watch`` view)."""
        return await self._call("obs_watch", points=points, prefix=prefix)

    async def obs_dump(self) -> dict:
        """Dump the flight-recorder ring (the ``obs_dump`` RPC
        payload); returns the dump path and the events."""
        return await self._call("obs_dump")

    @property
    def backend(self):
        return self._backend

    @property
    def version(self) -> int:
        """Store version the backend currently serves (snapshot read)."""
        return self._backend.version

    async def close(self) -> None:
        """Drain queued requests and stop the dispatcher/worker."""
        await self._batcher.close()

    async def __aenter__(self) -> "AsyncOntologyService":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()
