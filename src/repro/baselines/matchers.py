"""Pattern-match and alignment concept-mining baselines (Table 5).

* **Match** — extract concepts from queries with bootstrapped patterns.
* **Align** — extract via query-title alignment.
* **MatchAlign** — both, selecting the most frequent result when multiple
  phrases are extracted (the paper's protocol).
"""

from __future__ import annotations

from collections import Counter

from ..core.align import extract_aligned_candidates
from ..core.bootstrap import DEFAULT_SEED_PATTERNS, Pattern, PatternBootstrapper


class MatchExtractor:
    """Bootstrapped pattern matching on queries."""

    def __init__(self, patterns: "set[Pattern] | None" = None) -> None:
        self.patterns: set[Pattern] = set(patterns or DEFAULT_SEED_PATTERNS)

    def bootstrap(self, query_corpus: "list[list[str]]") -> None:
        """Grow the pattern set on a query corpus."""
        bootstrapper = PatternBootstrapper(tuple(self.patterns))
        _concepts, patterns = bootstrapper.run(query_corpus)
        self.patterns = patterns

    def extract_all(self, queries: "list[list[str]]") -> list[list[str]]:
        out: list[list[str]] = []
        for tokens in queries:
            for pattern in self.patterns:
                slot = pattern.match(tokens)
                if slot:
                    out.append(list(slot))
        return out

    def extract(self, queries: "list[list[str]]", titles: "list[list[str]]"
                ) -> list[str]:
        candidates = self.extract_all(queries)
        if not candidates:
            return []
        counts = Counter(tuple(c) for c in candidates)
        best, _count = max(counts.items(), key=lambda kv: (kv[1], -len(kv[0]), kv[0]))
        return list(best)


class AlignExtractor:
    """Query-title alignment extraction."""

    def __init__(self, max_gap: int = 2) -> None:
        self.max_gap = max_gap

    def extract_all(self, queries: "list[list[str]]", titles: "list[list[str]]"
                    ) -> list[list[str]]:
        out: list[list[str]] = []
        for query in queries:
            out.extend(extract_aligned_candidates(query, titles, max_gap=self.max_gap))
        return out

    def extract(self, queries: "list[list[str]]", titles: "list[list[str]]"
                ) -> list[str]:
        candidates = self.extract_all(queries, titles)
        if not candidates:
            return []
        counts = Counter(tuple(c) for c in candidates)
        best, _count = max(counts.items(), key=lambda kv: (kv[1], len(kv[0]), kv[0]))
        return list(best)


class MatchAlignExtractor:
    """Match + Align, most frequent result wins."""

    def __init__(self, patterns: "set[Pattern] | None" = None, max_gap: int = 2) -> None:
        self._match = MatchExtractor(patterns)
        self._align = AlignExtractor(max_gap)

    def bootstrap(self, query_corpus: "list[list[str]]") -> None:
        self._match.bootstrap(query_corpus)

    def extract(self, queries: "list[list[str]]", titles: "list[list[str]]"
                ) -> list[str]:
        candidates = self._match.extract_all(queries)
        candidates.extend(self._align.extract_all(queries, titles))
        if not candidates:
            return []
        counts = Counter(tuple(c) for c in candidates)
        best, _count = max(counts.items(), key=lambda kv: (kv[1], len(kv[0]), kv[0]))
        return list(best)
