"""LSTM-CRF sequence-tagging baselines (Huang, Xu & Yu 2015).

Paper configuration: word embeddings (200-d in the paper; width is a knob
here), a BiLSTM with hidden size 25 per direction, and a CRF output layer
predicting BIO tags for the phrase span.  Two variants for Table 5:

* Q-LSTM-CRF — applied to the (first) query;
* T-LSTM-CRF — applied to titles (prediction from the top-clicked title).

For Table 6 (event mining) the tagger runs per title; outputs are filtered
by length and the phrase belonging to the top-clicked title is selected —
the paper's protocol.
"""

from __future__ import annotations

import numpy as np

from ..config import make_rng
from ..errors import TrainingError
from ..nn.crf import LinearChainCRF
from ..nn.layers import Embedding, Linear, Module
from ..nn.lstm import BiLSTM
from ..nn.optim import Adam

# BIO tags.
O_TAG, B_TAG, I_TAG = 0, 1, 2
NUM_TAGS = 3


def bio_encode(tokens: list[str], phrase_tokens: list[str]) -> list[int]:
    """BIO labels marking occurrences of phrase tokens in ``tokens``.

    The full phrase is matched as a subsequence window when possible,
    falling back to per-token membership tagging.
    """
    n, k = len(tokens), len(phrase_tokens)
    labels = [O_TAG] * n
    if k == 0 or n == 0:
        return labels
    for start in range(n - k + 1):
        if tokens[start : start + k] == phrase_tokens:
            labels[start] = B_TAG
            for j in range(start + 1, start + k):
                labels[j] = I_TAG
            return labels
    phrase_set = set(phrase_tokens)
    previous_in = False
    for i, token in enumerate(tokens):
        if token in phrase_set:
            labels[i] = I_TAG if previous_in else B_TAG
            previous_in = True
        else:
            previous_in = False
    return labels


def bio_decode(tokens: list[str], labels: list[int]) -> list[str]:
    """Tokens of the longest predicted B/I span (paper outputs one phrase)."""
    spans: list[list[str]] = []
    current: list[str] = []
    for token, label in zip(tokens, labels):
        if label == B_TAG:
            if current:
                spans.append(current)
            current = [token]
        elif label == I_TAG and current:
            current.append(token)
        else:
            if current:
                spans.append(current)
                current = []
    if current:
        spans.append(current)
    if not spans:
        return []
    return max(spans, key=len)


class LstmCrfTagger(Module):
    """Word embedding + BiLSTM + CRF tagger over token sequences."""

    def __init__(self, embed_dim: int = 32, hidden: int = 25,
                 num_tags: int = NUM_TAGS, seed: int = 0) -> None:
        rng = make_rng(seed)
        self._vocab: dict[str, int] = {"<unk>": 0}
        self._rng = rng
        self.embed_dim = embed_dim
        self.num_tags = num_tags
        self.embedding = Embedding(1, embed_dim, rng=rng)  # grows with vocab
        self.encoder = BiLSTM(embed_dim, hidden, rng=rng)
        self.projection = Linear(2 * hidden, num_tags, rng=rng)
        self.crf = LinearChainCRF(num_tags, rng=rng)

    # ------------------------------------------------------------------
    def _grow_vocab(self, corpus: "list[list[str]]") -> None:
        for text in corpus:
            for token in text:
                if token not in self._vocab:
                    self._vocab[token] = len(self._vocab)
        needed = len(self._vocab)
        current = self.embedding.weight.data.shape[0]
        if needed > current:
            extra = self._rng.standard_normal((needed - current, self.embed_dim)) * 0.1
            self.embedding.weight.data = np.vstack([self.embedding.weight.data, extra])

    def _ids(self, tokens: list[str]) -> list[int]:
        return [self._vocab.get(t, 0) for t in tokens]

    def _emissions(self, tokens: list[str]):
        return self.projection(self.encoder(self.embedding(self._ids(tokens))))

    # ------------------------------------------------------------------
    def fit(self, sequences: "list[list[str]]", labels: "list[list[int]]",
            epochs: int = 10, lr: float = 0.02) -> list[float]:
        """Train on (token sequence, integer label sequence) pairs."""
        pairs = [(s, l) for s, l in zip(sequences, labels) if s]
        if not pairs:
            raise TrainingError("no non-empty training sequences")
        self._grow_vocab([s for s, _l in pairs])
        optimizer = Adam(self.parameters(), lr=lr)
        losses: list[float] = []
        order = np.arange(len(pairs))
        for _epoch in range(epochs):
            self._rng.shuffle(order)
            total = 0.0
            for i in order:
                tokens, tags = pairs[i]
                optimizer.zero_grad()
                loss = self.crf.nll(self._emissions(tokens), tags)
                loss.backward()
                optimizer.clip_grad_norm(5.0)
                optimizer.step()
                total += loss.item()
            losses.append(total / len(pairs))
        return losses

    def predict(self, tokens: list[str]) -> list[int]:
        """Viterbi labels for a token sequence."""
        if not tokens:
            return []
        from ..nn.autograd import no_grad

        with no_grad():
            emissions = self._emissions(tokens)
        return self.crf.decode(emissions)

    def extract(self, tokens: list[str]) -> list[str]:
        """Predicted phrase tokens (longest BIO span)."""
        return bio_decode(tokens, self.predict(tokens))


class QueryLstmCrf:
    """Q-LSTM-CRF: tag the first (seed) query of the cluster."""

    def __init__(self, **kwargs) -> None:
        self.tagger = LstmCrfTagger(**kwargs)

    def fit_examples(self, examples, epochs: int = 10, lr: float = 0.02) -> list[float]:
        sequences = [e.queries[0] for e in examples if e.queries]
        labels = [bio_encode(e.queries[0], e.gold_tokens) for e in examples if e.queries]
        return self.tagger.fit(sequences, labels, epochs=epochs, lr=lr)

    def extract(self, queries: "list[list[str]]", titles: "list[list[str]]"
                ) -> list[str]:
        if not queries:
            return []
        return self.tagger.extract(queries[0])


class TitleLstmCrf:
    """T-LSTM-CRF: tag titles; select by length filter + top-clicked title."""

    def __init__(self, min_len: int = 1, max_len: int = 20, **kwargs) -> None:
        self.tagger = LstmCrfTagger(**kwargs)
        self.min_len = min_len
        self.max_len = max_len

    def fit_examples(self, examples, epochs: int = 10, lr: float = 0.02) -> list[float]:
        sequences = []
        labels = []
        for example in examples:
            for title in example.titles:
                sequences.append(title)
                labels.append(bio_encode(title, example.gold_tokens))
        return self.tagger.fit(sequences, labels, epochs=epochs, lr=lr)

    def extract(self, queries: "list[list[str]]", titles: "list[list[str]]"
                ) -> list[str]:
        for title in titles:  # titles ordered by click count
            phrase = self.tagger.extract(title)
            if self.min_len <= len(phrase) <= self.max_len:
                return phrase
        return []
