"""TextSummary baseline (Table 6): seq2seq with attention.

The paper feeds the concatenation of queries and titles to an
encoder-decoder summarizer and treats the generated sequence as the event
phrase.  As in the paper (EM 0.0047, F1 0.1064) this approach is expected
to perform far below extractive methods — the benchmark reproduces that
*shape*, not the exact numbers.
"""

from __future__ import annotations

from ..errors import TrainingError
from ..nn.seq2seq import Seq2SeqSummarizer, Vocabulary


def _flatten(queries: "list[list[str]]", titles: "list[list[str]]",
             max_len: int = 60) -> list[str]:
    out: list[str] = []
    for text in list(queries) + list(titles):
        out.extend(text)
    return out[:max_len]


class TextSummaryBaseline:
    """Wraps the seq2seq model with the paper's evaluation protocol."""

    def __init__(self, embed_dim: int = 24, hidden: int = 24,
                 beam_size: int = 4, seed: int = 0) -> None:
        self.embed_dim = embed_dim
        self.hidden = hidden
        self.beam_size = beam_size
        self.seed = seed
        self._model: "Seq2SeqSummarizer | None" = None

    def fit_examples(self, examples, epochs: int = 3, lr: float = 0.01
                     ) -> list[float]:
        """Teacher-forced training on (cluster -> gold phrase) pairs."""
        if not examples:
            raise TrainingError("no training examples")
        import numpy as np

        from ..nn.optim import Adam

        vocab = Vocabulary()
        inputs: list[list[str]] = []
        targets: list[list[str]] = []
        for example in examples:
            inputs.append(_flatten(example.queries, example.titles))
            targets.append(example.gold_tokens)
        vocab.fit(inputs)
        vocab.fit(targets)
        rng = np.random.default_rng(self.seed)
        self._model = Seq2SeqSummarizer(vocab, embed_dim=self.embed_dim,
                                        hidden=self.hidden, rng=rng)
        optimizer = Adam(self._model.parameters(), lr=lr)
        losses: list[float] = []
        order = np.arange(len(inputs))
        for _epoch in range(epochs):
            rng.shuffle(order)
            total = 0.0
            for i in order:
                optimizer.zero_grad()
                loss = self._model.loss(vocab.encode(inputs[i]), vocab.encode(targets[i]))
                loss.backward()
                optimizer.clip_grad_norm(5.0)
                optimizer.step()
                total += loss.item()
            losses.append(total / len(inputs))
        return losses

    def extract(self, queries: "list[list[str]]", titles: "list[list[str]]"
                ) -> list[str]:
        if self._model is None:
            raise TrainingError("model is not fitted")
        tokens = _flatten(queries, titles)
        ids = self._model.vocab.encode(tokens)
        generated = self._model.generate(ids, max_len=12, beam_size=self.beam_size)
        return self._model.vocab.decode(generated)
