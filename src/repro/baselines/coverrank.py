"""CoverRank event-mining baseline (Table 6) — thin wrapper around the core
candidate generator so the benchmark harness can treat every method
uniformly (fit_examples / extract)."""

from __future__ import annotations

from ..core.coverrank import select_event_candidate


class CoverRankBaseline:
    """Ranks subtitles by covered non-stop query words, tie-break by CTR."""

    def __init__(self, min_len: int = 3, max_len: int = 20) -> None:
        self.min_len = min_len
        self.max_len = max_len

    def fit_examples(self, examples, **_kwargs) -> list[float]:
        """CoverRank is unsupervised; fitting is a no-op."""
        return []

    def extract(self, queries: "list[list[str]]", titles: "list[list[str]]"
                ) -> list[str]:
        candidate = select_event_candidate(
            queries, titles, min_len=self.min_len, max_len=self.max_len
        )
        return candidate or []
