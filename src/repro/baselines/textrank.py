"""TextRank keyword extraction baseline (Mihalcea & Tarau 2004).

Tokens are nodes of a co-occurrence window graph; PageRank scores them; the
top-k keywords are concatenated *in the order they appear in the query/
title* (the paper's protocol: "we extract the top 5 keywords or phrases from
queries and titles, and concatenate them in the same order with the
query/title to get the extracted phrase").
"""

from __future__ import annotations

import numpy as np

from ..text.stopwords import is_stopword


class TextRankExtractor:
    """TextRank over a query-title cluster."""

    def __init__(self, top_k: int = 5, window: int = 3, damping: float = 0.85,
                 iterations: int = 30) -> None:
        self.top_k = top_k
        self.window = window
        self.damping = damping
        self.iterations = iterations

    def _scores(self, texts: "list[list[str]]") -> dict[str, float]:
        vocab: dict[str, int] = {}
        for text in texts:
            for token in text:
                if not is_stopword(token) and token not in vocab:
                    vocab[token] = len(vocab)
        n = len(vocab)
        if n == 0:
            return {}
        weights = np.zeros((n, n))
        for text in texts:
            content = [t for t in text if t in vocab]
            for i, a in enumerate(content):
                for j in range(i + 1, min(len(content), i + self.window + 1)):
                    b = content[j]
                    if a != b:
                        weights[vocab[a], vocab[b]] += 1.0
                        weights[vocab[b], vocab[a]] += 1.0
        degree = weights.sum(axis=1)
        scores = np.ones(n) / n
        for _it in range(self.iterations):
            new_scores = np.full(n, 1.0 - self.damping)
            for j in range(n):
                incoming = np.where(weights[:, j] > 0)[0]
                for i in incoming:
                    if degree[i] > 0:
                        new_scores[j] += self.damping * scores[i] * weights[i, j] / degree[i]
            scores = new_scores
        return {tok: float(scores[idx]) for tok, idx in vocab.items()}

    def extract(self, queries: "list[list[str]]", titles: "list[list[str]]"
                ) -> list[str]:
        """Top-k keywords re-ordered by first appearance."""
        texts = list(queries) + list(titles)
        scores = self._scores(texts)
        if not scores:
            return []
        top = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))[: self.top_k]
        chosen = {tok for tok, _s in top}
        # Order of first appearance across texts (queries first).
        ordered: list[str] = []
        for text in texts:
            for token in text:
                if token in chosen and token not in ordered:
                    ordered.append(token)
        return ordered
