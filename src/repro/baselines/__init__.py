"""Baseline methods compared against GCTSP-Net (paper Tables 5-7).

Concept mining (Table 5): TextRank, AutoPhrase-style quality-phrase mining,
Match (bootstrapped patterns), Align (query-title alignment), MatchAlign,
LSTM-CRF over the query (Q) or titles (T).

Event mining (Table 6): TextRank, CoverRank, TextSummary (seq2seq with
attention), LSTM-CRF.

Key elements (Table 7): LSTM (softmax) and LSTM-CRF 4-class taggers.
"""

from .textrank import TextRankExtractor
from .autophrase import AutoPhraseMiner
from .matchers import MatchExtractor, AlignExtractor, MatchAlignExtractor
from .lstm_crf import LstmCrfTagger, QueryLstmCrf, TitleLstmCrf
from .lstm_tagger import LstmRoleTagger
from .textsummary import TextSummaryBaseline
from .coverrank import CoverRankBaseline

__all__ = [
    "TextRankExtractor",
    "AutoPhraseMiner",
    "MatchExtractor",
    "AlignExtractor",
    "MatchAlignExtractor",
    "LstmCrfTagger",
    "QueryLstmCrf",
    "TitleLstmCrf",
    "LstmRoleTagger",
    "TextSummaryBaseline",
    "CoverRankBaseline",
]
