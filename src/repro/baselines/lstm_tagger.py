"""Plain LSTM (softmax) role tagger — Table 7's "LSTM" baseline.

Identical to LSTM-CRF but with a per-token softmax instead of the CRF layer
(the paper: "LSTM replaces the CRF layer in LSTM-CRF with a softmax layer").
Used for 4-class event key-element recognition.
"""

from __future__ import annotations

import numpy as np

from ..config import make_rng
from ..errors import TrainingError
from ..nn.functional import cross_entropy
from ..nn.layers import Embedding, Linear, Module
from ..nn.lstm import BiLSTM
from ..nn.optim import Adam


class LstmRoleTagger(Module):
    """Embedding + BiLSTM + softmax tagger for integer role labels."""

    def __init__(self, num_classes: int = 4, embed_dim: int = 32,
                 hidden: int = 25, seed: int = 0) -> None:
        rng = make_rng(seed)
        self._vocab: dict[str, int] = {"<unk>": 0}
        self._rng = rng
        self.embed_dim = embed_dim
        self.num_classes = num_classes
        self.embedding = Embedding(1, embed_dim, rng=rng)
        self.encoder = BiLSTM(embed_dim, hidden, rng=rng)
        self.projection = Linear(2 * hidden, num_classes, rng=rng)

    def _grow_vocab(self, corpus: "list[list[str]]") -> None:
        for text in corpus:
            for token in text:
                if token not in self._vocab:
                    self._vocab[token] = len(self._vocab)
        needed = len(self._vocab)
        current = self.embedding.weight.data.shape[0]
        if needed > current:
            extra = self._rng.standard_normal((needed - current, self.embed_dim)) * 0.1
            self.embedding.weight.data = np.vstack([self.embedding.weight.data, extra])

    def _ids(self, tokens: list[str]) -> list[int]:
        return [self._vocab.get(t, 0) for t in tokens]

    def _logits(self, tokens: list[str]):
        return self.projection(self.encoder(self.embedding(self._ids(tokens))))

    def fit(self, sequences: "list[list[str]]", labels: "list[list[int]]",
            epochs: int = 10, lr: float = 0.02) -> list[float]:
        pairs = [(s, l) for s, l in zip(sequences, labels) if s]
        if not pairs:
            raise TrainingError("no non-empty training sequences")
        self._grow_vocab([s for s, _l in pairs])
        optimizer = Adam(self.parameters(), lr=lr)
        losses: list[float] = []
        order = np.arange(len(pairs))
        for _epoch in range(epochs):
            self._rng.shuffle(order)
            total = 0.0
            for i in order:
                tokens, tags = pairs[i]
                optimizer.zero_grad()
                loss = cross_entropy(self._logits(tokens), tags)
                loss.backward()
                optimizer.clip_grad_norm(5.0)
                optimizer.step()
                total += loss.item()
            losses.append(total / len(pairs))
        return losses

    def predict(self, tokens: list[str]) -> list[int]:
        if not tokens:
            return []
        from ..nn.autograd import no_grad

        with no_grad():
            logits = self._logits(tokens)
        return logits.data.argmax(axis=1).tolist()
