"""Asymmetric travelling-salesman solver used by ATSP-decoding.

The paper orders predicted phrase tokens by solving an asymmetric TSP with
the Lin-Kernighan heuristic (Helsgaun 2000).  This package provides an exact
Held-Karp dynamic program for the small instances that dominate GIANT's
workload (phrases rarely exceed a dozen tokens) and a Lin-Kernighan-style
local-search heuristic (greedy construction + Or-opt segment moves + node
swaps, all asymmetric-safe) for larger ones.
"""

from .atsp import solve_path_atsp, held_karp_path, LinKernighanSolver

__all__ = ["solve_path_atsp", "held_karp_path", "LinKernighanSolver"]
