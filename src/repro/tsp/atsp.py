"""Asymmetric TSP path solvers.

The decoding problem (paper Section 3.1, "Node Ordering with ATSP Decoding")
is an open *path* ATSP: start at ``sos``, visit every predicted-positive
node exactly once, end at ``eos``.  We solve it exactly with Held-Karp for
up to ``exact_limit`` interior nodes, and with a Lin-Kernighan-style local
search beyond that.

All distances are a dense matrix ``dist[i, j]`` = cost of travelling i -> j
(asymmetric; produced by BFS on the decoding QTIG variant).
"""

from __future__ import annotations

import numpy as np

from ..errors import DecodingError


def _path_cost(dist: np.ndarray, path: list[int]) -> float:
    return float(sum(dist[a, b] for a, b in zip(path, path[1:])))


def held_karp_path(dist: np.ndarray, start: int, end: int) -> list[int]:
    """Exact open-path ATSP via Held-Karp dynamic programming.

    Args:
        dist: (n, n) asymmetric distance matrix.
        start: index of the fixed first node.
        end: index of the fixed last node.

    Returns:
        The optimal node ordering (a permutation of range(n)) as a list.
    """
    n = dist.shape[0]
    if dist.shape != (n, n):
        raise DecodingError("distance matrix must be square")
    if start == end and n > 1:
        raise DecodingError("start and end must differ")
    interior = [i for i in range(n) if i not in (start, end)]
    k = len(interior)
    if k == 0:
        return [start, end] if start != end else [start]
    pos = {node: i for i, node in enumerate(interior)}

    # dp[mask][i] = min cost path start -> ... -> interior[i] covering mask.
    size = 1 << k
    dp = np.full((size, k), np.inf)
    parent = np.full((size, k), -1, dtype=np.int64)
    for i, node in enumerate(interior):
        dp[1 << i][i] = dist[start, node]
    for mask in range(size):
        row = dp[mask]
        for i in range(k):
            cost = row[i]
            if not np.isfinite(cost) or not (mask >> i) & 1:
                continue
            node_i = interior[i]
            for j in range(k):
                if (mask >> j) & 1:
                    continue
                new_mask = mask | (1 << j)
                new_cost = cost + dist[node_i, interior[j]]
                if new_cost < dp[new_mask][j]:
                    dp[new_mask][j] = new_cost
                    parent[new_mask][j] = i
    full = size - 1
    best_i = int(np.argmin(dp[full] + np.array([dist[node, end] for node in interior])))
    order = [best_i]
    mask = full
    while parent[mask][order[-1]] >= 0:
        prev = int(parent[mask][order[-1]])
        mask ^= 1 << order[-1]
        order.append(prev)
    order.reverse()
    return [start] + [interior[i] for i in order] + [end]


class LinKernighanSolver:
    """Lin-Kernighan-style local search for open-path ATSP.

    Construction: greedy nearest neighbour from ``start``.
    Improvement: repeated rounds of
      * Or-opt — relocate segments of length 1..3 to every other position;
      * pairwise node swaps;
    both moves are valid for asymmetric instances (no segment reversal).
    """

    def __init__(self, max_rounds: int = 20, segment_lengths: tuple[int, ...] = (1, 2, 3)) -> None:
        self.max_rounds = max_rounds
        self.segment_lengths = segment_lengths

    def solve(self, dist: np.ndarray, start: int, end: int) -> list[int]:
        n = dist.shape[0]
        interior = [i for i in range(n) if i not in (start, end)]
        if not interior:
            return [start, end] if start != end else [start]

        # Greedy construction.
        path = [start]
        remaining = set(interior)
        current = start
        while remaining:
            nxt = min(remaining, key=lambda j: (dist[current, j], j))
            path.append(nxt)
            remaining.remove(nxt)
            current = nxt
        path.append(end)

        best_cost = _path_cost(dist, path)
        for _round in range(self.max_rounds):
            improved = False
            path, best_cost, moved = self._or_opt_round(dist, path, best_cost)
            improved |= moved
            path, best_cost, moved = self._swap_round(dist, path, best_cost)
            improved |= moved
            if not improved:
                break
        return path

    def _or_opt_round(self, dist: np.ndarray, path: list[int], cost: float
                      ) -> tuple[list[int], float, bool]:
        improved = False
        for seg_len in self.segment_lengths:
            i = 1
            while i + seg_len <= len(path) - 1:
                segment = path[i : i + seg_len]
                rest = path[:i] + path[i + seg_len :]
                base = _path_cost(dist, rest)
                seg_cost = _path_cost(dist, segment)
                best_insert = None
                best_new = cost
                for j in range(1, len(rest)):
                    new_cost = (
                        base
                        - dist[rest[j - 1], rest[j]]
                        + dist[rest[j - 1], segment[0]]
                        + seg_cost
                        + dist[segment[-1], rest[j]]
                    )
                    if new_cost < best_new - 1e-12:
                        best_new = new_cost
                        best_insert = j
                if best_insert is not None:
                    path = rest[:best_insert] + segment + rest[best_insert:]
                    cost = best_new
                    improved = True
                else:
                    i += 1
        return path, cost, improved

    def _swap_round(self, dist: np.ndarray, path: list[int], cost: float
                    ) -> tuple[list[int], float, bool]:
        improved = False
        n = len(path)
        for i in range(1, n - 1):
            for j in range(i + 1, n - 1):
                candidate = path.copy()
                candidate[i], candidate[j] = candidate[j], candidate[i]
                new_cost = _path_cost(dist, candidate)
                if new_cost < cost - 1e-12:
                    path = candidate
                    cost = new_cost
                    improved = True
        return path, cost, improved


def solve_path_atsp(dist: np.ndarray, start: int, end: int,
                    exact_limit: int = 11) -> list[int]:
    """Solve open-path ATSP, exact for small instances, heuristic otherwise.

    Args:
        dist: (n, n) asymmetric distance matrix.
        start: fixed first node index.
        end: fixed last node index.
        exact_limit: maximum number of *interior* nodes for Held-Karp.

    Returns:
        Ordered node indices from ``start`` to ``end``.
    """
    dist = np.asarray(dist, dtype=np.float64)
    n = dist.shape[0]
    if n == 0:
        return []
    if n == 1:
        return [0]
    interior = n - 2
    if interior <= exact_limit:
        return held_karp_path(dist, start, end)
    return LinKernighanSolver().solve(dist, start, end)
