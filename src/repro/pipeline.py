"""End-to-end GIANT pipeline: click logs in, Attention Ontology out.

Orchestrates the full paper flow (Figure 2): random-walk clustering ->
GCTSP-Net phrase mining -> normalization -> derivation (CSD/CPD) ->
linking (categories, attention isA/involve, concept-entity classifier,
event key elements, entity correlate embeddings).

Entities enter the ontology from the NER gazetteer observed in the logs —
the production system seeds them from an existing knowledge base; DESIGN.md
documents this substitution.

Every mutating stage runs inside an :class:`OntologyDelta` batch: the
ontology is built exclusively through recorded deltas (collected in
:attr:`GiantPipeline.deltas`), so a serving process can replay the same
batches against its own :class:`~repro.core.store.OntologyStore` and
refresh incrementally instead of rebuilding (DESIGN.md).
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field

from .config import GiantConfig
from .core.derivation import common_pattern_discovery, common_suffix_discovery
from .core.features import NodeFeatureExtractor
from .core.gctsp import GCTSPNet, prepare_example
from .core.linking.attentions import link_attention_isa, link_concept_topic_involve
from .core.linking.categories import link_attention_categories
from .core.linking.concept_entity import (
    ConceptEntityClassifier,
    ConceptEntityExample,
    build_concept_entity_dataset,
)
from .core.linking.entity_entity import EntityEmbeddingTrainer, mine_cooccurrence_pairs
from .core.linking.key_elements import recognize_key_elements
from .core.mining import AttentionMiner, MinedAttention
from .core.ontology import AttentionOntology, EdgeType, NodeType, OntologyDelta
from .graph.click_graph import ClickGraph
from .text.dependency import DependencyParser
from .text.ner import NerTagger
from .text.pos import PosTagger
from .text.tokenizer import tokenize


@dataclass
class PipelineReport:
    """Counters from one pipeline run (feeds the Table 1/2 benches)."""

    concepts_mined: int = 0
    events_mined: int = 0
    topics_derived: int = 0
    concepts_derived: int = 0
    entities_registered: int = 0
    edges: dict[str, int] = field(default_factory=dict)


class GiantPipeline:
    """Builds an Attention Ontology from a click graph + session log."""

    def __init__(self, graph: ClickGraph,
                 pos_tagger: PosTagger, ner_tagger: NerTagger,
                 concept_model: "GCTSPNet | None" = None,
                 event_model: "GCTSPNet | None" = None,
                 key_element_model: "GCTSPNet | None" = None,
                 categories: "list[str] | None" = None,
                 config: "GiantConfig | None" = None) -> None:
        self._graph = graph
        self._pos = pos_tagger
        self._ner = ner_tagger
        self._parser = DependencyParser(pos_tagger)
        self._extractor = NodeFeatureExtractor(pos_tagger, ner_tagger)
        self._config = config or GiantConfig()
        self._concept_model = concept_model
        self._event_model = event_model
        self._key_element_model = key_element_model
        self._categories = categories or []
        self._miner = AttentionMiner(
            graph,
            concept_model=concept_model,
            event_model=event_model,
            extractor=self._extractor,
            parser=self._parser,
            config=self._config,
        )
        self.ontology = AttentionOntology()
        self.report = PipelineReport()
        self.deltas: list[OntologyDelta] = []
        self._mined_concepts: list[MinedAttention] = []
        self._mined_events: list[MinedAttention] = []
        self._sessions: list[tuple[str, str]] = []

    @contextmanager
    def _stage(self, name: str):
        """Record one stage's ontology mutations as an OntologyDelta."""
        self.ontology.begin_delta(name)
        try:
            yield
        finally:
            delta = self.ontology.commit_delta()
            if delta:
                self.deltas.append(delta)

    # ------------------------------------------------------------------
    # seed routing
    # ------------------------------------------------------------------
    def _is_event_query(self, query: str) -> bool:
        """Heuristic router: queries with a verb describe events."""
        tokens = tokenize(query)
        tags = self._pos.tag(tokens)
        return "VERB" in tags

    def split_seeds(self, queries: "list[str] | None" = None
                    ) -> tuple[list[str], list[str]]:
        """Split seed queries into (concept seeds, event seeds)."""
        seeds = queries if queries is not None else self._graph.queries()
        concept_seeds, event_seeds = [], []
        for query in seeds:
            (event_seeds if self._is_event_query(query) else concept_seeds).append(query)
        return concept_seeds, event_seeds

    # ------------------------------------------------------------------
    # stage 1: nodes
    # ------------------------------------------------------------------
    def register_entities(self) -> int:
        """Create ENTITY nodes for gazetteer entities observed in the logs."""
        observed: set[str] = set()
        for query in self._graph.queries():
            observed.update(self._ner.entities(tokenize(query)))
        for doc_id in self._graph.doc_ids():
            title = self._graph.title(doc_id)
            if title:
                observed.update(self._ner.entities(tokenize(title)))
        with self._stage("register_entities"):
            for entity in sorted(observed):
                self.ontology.add_node(NodeType.ENTITY, entity)
        self.report.entities_registered = len(observed)
        return len(observed)

    def register_categories(self) -> None:
        with self._stage("register_categories"):
            for category in self._categories:
                self.ontology.add_node(NodeType.CATEGORY, category)

    def mine_attentions(self, queries: "list[str] | None" = None
                        ) -> tuple[list[MinedAttention], list[MinedAttention]]:
        """Mine concept and event attentions; create ontology nodes."""
        concept_seeds, event_seeds = self.split_seeds(queries)
        concepts = self._miner.mine(concept_seeds, kind="concept")
        events = self._miner.mine(event_seeds, kind="event")

        with self._stage("mine_attentions"):
            for mined in concepts:
                node = self.ontology.add_node(
                    NodeType.CONCEPT, mined.text,
                    payload={"context_titles": mined.phrase.context_titles,
                             "support": mined.phrase.support},
                )
                for alias in mined.phrase.aliases:
                    self.ontology.add_alias(node.node_id, alias)
            for mined in events:
                self.ontology.add_node(
                    NodeType.EVENT, mined.text,
                    payload={"context_titles": mined.phrase.context_titles},
                )
        # Accumulate across incremental runs, deduplicating by canonical
        # phrase object (the shared normalizer keeps these stable).
        known = {id(m.phrase) for m in self._mined_concepts}
        self._mined_concepts.extend(
            m for m in concepts if id(m.phrase) not in known
        )
        known = {id(m.phrase) for m in self._mined_events}
        self._mined_events.extend(m for m in events if id(m.phrase) not in known)
        self.report.concepts_mined = len(self._mined_concepts)
        self.report.events_mined = len(self._mined_events)
        return concepts, events

    # ------------------------------------------------------------------
    # stage 2: derivation
    # ------------------------------------------------------------------
    def derive(self) -> None:
        """CSD parent concepts and CPD topics, with isA edges.

        CSD iterates to a fixpoint: derived parents can themselves share
        suffixes, yielding grandparents ("hayao miyazaki animated films" ->
        "animated films" -> "films") — bounded by phrase length.
        """
        with self._stage("derive"):
            self._run_derivation()

    def _run_derivation(self) -> None:
        total_derived = 0
        for _level in range(8):  # longest phrases are < 8 tokens
            concept_nodes = self.ontology.nodes(NodeType.CONCEPT)
            derived = common_suffix_discovery(
                [n.tokens for n in concept_nodes], self._pos, min_count=2
            )
            added = 0
            for suffix, children in derived.items():
                parent = self.ontology.add_node(NodeType.CONCEPT, " ".join(suffix))
                for child_tokens in children:
                    child = self.ontology.find(NodeType.CONCEPT, " ".join(child_tokens))
                    if child is not None and child.node_id != parent.node_id:
                        if not self.ontology.has_edge(parent.node_id, child.node_id,
                                                      EdgeType.ISA):
                            self.ontology.add_edge(parent.node_id, child.node_id,
                                                   EdgeType.ISA)
                            added += 1
            total_derived += len(derived)
            if added == 0:
                break
        self.report.concepts_derived = total_derived

        event_nodes = self.ontology.nodes(NodeType.EVENT)
        entity_concepts: dict[str, list[tuple[str, ...]]] = defaultdict(list)
        for concept in self.ontology.nodes(NodeType.CONCEPT):
            for instance in self.ontology.instances_of(concept.node_id):
                if instance.node_type == NodeType.ENTITY:
                    entity_concepts[instance.phrase].append(tuple(concept.tokens))
        topics = common_pattern_discovery(
            [n.tokens for n in event_nodes], self._ner, entity_concepts,
            min_count=2,
        )
        for topic in topics:
            node = self.ontology.add_node(
                NodeType.TOPIC, " ".join(topic.phrase),
                payload={"pattern": topic.pattern, "concept": topic.concept,
                         "events": topic.events},
            )
            for event_tokens in topic.events:
                event = self.ontology.find(NodeType.EVENT, " ".join(event_tokens))
                if event is not None:
                    if not self.ontology.has_edge(node.node_id, event.node_id,
                                                  EdgeType.ISA):
                        self.ontology.add_edge(node.node_id, event.node_id,
                                               EdgeType.ISA)
        self.report.topics_derived = len(topics)

    # ------------------------------------------------------------------
    # stage 3: linking
    # ------------------------------------------------------------------
    def link_categories(self) -> int:
        distributions = {
            m.text: m.categories for m in self._mined_concepts + self._mined_events
        }
        with self._stage("link_categories"):
            return link_attention_categories(
                self.ontology, distributions,
                threshold=self._config.linking.category_threshold,
            )

    def link_concept_entities(self, sessions: "list[tuple[str, str]]") -> int:
        """Train the Figure-4 classifier and add concept-entity isA edges."""
        concept_nodes = self.ontology.nodes(NodeType.CONCEPT)
        entity_names = {n.phrase for n in self.ontology.nodes(NodeType.ENTITY)}

        # Map queries -> the concept they convey (concept tokens contained),
        # resolved per query through the store's inverted index instead of
        # scanning every (concept, query) pair.
        concept_of_query: dict[str, str] = {}
        docs_of_concept: dict[str, list[list[str]]] = defaultdict(list)
        store = self.ontology.store
        for query in self._graph.queries():
            qtoks = tokenize(query)
            titles = None
            for node in store.contained_phrases(qtoks, NodeType.CONCEPT):
                concept_of_query[query] = node.phrase
                if titles is None:
                    titles = [
                        tokenize(self._graph.title(doc_id))
                        for doc_id in self._graph.docs_for_query(query)
                        if self._graph.title(doc_id)
                    ]
                docs_of_concept[node.phrase].extend(titles)

        entity_category: dict[str, str] = {}
        for doc_id in self._graph.doc_ids():
            title = self._graph.title(doc_id)
            category = self._graph.category(doc_id)
            if not title or not category:
                continue
            for entity in self._ner.entities(tokenize(title)):
                entity_category.setdefault(entity, category)

        dataset = build_concept_entity_dataset(
            sessions, concept_of_query, entity_names, entity_category,
            docs_of_concept, seed=self._config.seed,
        )
        if not dataset or len({e.label for e in dataset}) < 2:
            return 0
        classifier = ConceptEntityClassifier()
        classifier.fit(dataset)

        # Candidate pairs: entities mentioned in a concept's clicked docs.
        created = 0
        with self._stage("link_concept_entities"):
            for node in concept_nodes:
                docs = docs_of_concept.get(node.phrase, [])
                candidates: dict[str, list[list[str]]] = defaultdict(list)
                for doc in docs:
                    for entity in self._ner.entities(doc):
                        candidates[entity].append(doc)
                if not candidates:
                    continue
                examples = []
                session_counts = defaultdict(int)
                for first, follow in sessions:
                    if (concept_of_query.get(first) == node.phrase
                            and follow in entity_names):
                        session_counts[follow] += 1
                for entity, mention_docs in sorted(candidates.items()):
                    examples.append(ConceptEntityExample(
                        node.phrase, entity, mention_docs[0], label=-1,
                        session_count=session_counts.get(entity, 0),
                        click_count=len(mention_docs),
                    ))
                predictions = classifier.predict(examples)
                for example, positive in zip(examples, predictions):
                    if not positive:
                        continue
                    entity_node = self.ontology.find(NodeType.ENTITY, example.entity)
                    if entity_node is None:
                        continue
                    if not self.ontology.has_edge(node.node_id, entity_node.node_id,
                                                  EdgeType.ISA):
                        self.ontology.add_edge(node.node_id, entity_node.node_id,
                                               EdgeType.ISA)
                        created += 1
        return created

    def link_event_elements(self) -> int:
        """Key-element recognition -> involve edges + event payload."""
        created = 0
        with self._stage("link_event_elements"):
            for mined in getattr(self, "_mined_events", []):
                node = self.ontology.find(NodeType.EVENT, mined.text)
                if node is None:
                    continue
                queries, titles, _weights = self._miner.cluster_tokens(mined.cluster)
                if self._key_element_model is not None:
                    example = prepare_example(queries, titles, self._extractor,
                                              self._parser)
                    elements = recognize_key_elements(self._key_element_model,
                                                      example)
                    # Keep only elements supported by the event phrase or its
                    # queries (the paper's manual revision step removes
                    # unimportant elements; this is its automatic analogue).
                    phrase_text = " ".join(node.tokens)
                    query_texts = [" ".join(q) for q in queries]
                    entities = [
                        e for e in elements.entities
                        if e in phrase_text or any(e in q for q in query_texts)
                    ]
                    self.ontology.update_payload(node.node_id, {
                        "triggers": elements.triggers,
                        "locations": elements.locations,
                    })
                else:
                    entities = self._ner.entities(node.tokens)
                for entity in entities:
                    entity_node = self.ontology.find(NodeType.ENTITY, entity)
                    if entity_node is None:
                        continue
                    if not self.ontology.has_edge(node.node_id,
                                                  entity_node.node_id,
                                                  EdgeType.INVOLVE):
                        self.ontology.add_edge(node.node_id,
                                               entity_node.node_id,
                                               EdgeType.INVOLVE)
                        created += 1
        return created

    def link_entity_correlations(self, epochs: int = 25) -> int:
        """Hinge-loss embeddings over query/doc co-occurrence -> correlate."""
        texts: list[str] = list(self._graph.queries())
        texts.extend(self._graph.title(d) for d in self._graph.doc_ids())
        pairs = mine_cooccurrence_pairs(
            texts, self._ner, min_count=self._config.linking.min_cooccurrence
        )
        entities = [n.phrase for n in self.ontology.nodes(NodeType.ENTITY)]
        if not pairs or len(entities) < 3:
            return 0
        trainer = EntityEmbeddingTrainer(entities, self._config.linking,
                                         seed=self._config.seed)
        try:
            trainer.fit(pairs, epochs=epochs)
        except ValueError:
            return 0
        created = 0
        with self._stage("link_entity_correlations"):
            for a, b, distance in trainer.correlated_pairs():
                na = self.ontology.find(NodeType.ENTITY, a)
                nb = self.ontology.find(NodeType.ENTITY, b)
                if na is None or nb is None:
                    continue
                if not self.ontology.has_edge(na.node_id, nb.node_id,
                                              EdgeType.CORRELATE):
                    self.ontology.add_edge(na.node_id, nb.node_id,
                                           EdgeType.CORRELATE,
                                           weight=1.0 / (1.0 + distance))
                    created += 1
        return created

    def link_concept_correlations(self, epochs: int = 40) -> int:
        """Optional extension: correlate edges between concepts (paper
        Section 3.2 closing note)."""
        from .core.linking.concept_concept import link_concept_correlations

        with self._stage("link_concept_correlations"):
            return link_concept_correlations(self.ontology, self._config.linking,
                                             epochs=epochs,
                                             seed=self._config.seed)

    # ------------------------------------------------------------------
    def run(self, sessions: "list[tuple[str, str]] | None" = None,
            queries: "list[str] | None" = None,
            concept_correlations: bool = False) -> AttentionOntology:
        """Execute all stages; returns the ontology.

        Args:
            sessions: consecutive-query session pairs (Figure 4 signal).
            queries: seed queries (defaults to every query in the graph).
            concept_correlations: also run the concept-correlate extension.
        """
        self._sessions = list(sessions or [])
        self.register_categories()
        self.register_entities()
        self.mine_attentions(queries)
        self._link_all(concept_correlations)
        self.ontology.snapshot()
        return self.ontology

    def _link_all(self, concept_correlations: bool = False,
                  max_passes: int = 3) -> None:
        """Derivation + every linking stage, iterated to a fixpoint.

        CSD/CPD can derive new parents from previously derived nodes (e.g.
        a grandparent suffix of a derived suffix), so the stage loop runs
        until the ontology stops changing (bounded by ``max_passes``).
        """
        for _pass in range(max_passes):
            before = self.ontology.stats()
            self.link_concept_entities(self._sessions)
            self.derive()
            with self._stage("link_attention_isa"):
                link_attention_isa(self.ontology)
            with self._stage("link_concept_topic_involve"):
                link_concept_topic_involve(self.ontology)
            self.link_categories()
            self.link_event_elements()
            self.link_entity_correlations()
            if concept_correlations:
                self.link_concept_correlations()
            if self.ontology.stats() == before:
                break
        self.report.edges = {
            etype.value: len(self.ontology.edges(etype)) for etype in EdgeType
        }

    def extend(self, new_graph: ClickGraph,
               sessions: "list[tuple[str, str]] | None" = None,
               concept_correlations: bool = False) -> dict[str, int]:
        """Fold one more day of logs into the ontology (incremental growth).

        The paper's system "keeps growing with newly retrieved nodes and
        identified relationships every day"; this merges the new click
        graph, mines only the newly observed queries (the shared normalizer
        merges re-discoveries into existing nodes), and re-runs the
        idempotent derivation/linking stages.

        Returns:
            Per-stat growth: new ontology stats minus previous stats.
        """
        before = self.ontology.stats()
        existing_queries = set(self._graph.queries())
        self._graph.merge(new_graph)
        new_queries = [q for q in new_graph.queries() if q not in existing_queries]
        if sessions:
            self._sessions.extend(sessions)
        self.register_entities()
        if new_queries:
            self.mine_attentions(new_queries)
        self._link_all(concept_correlations)
        self.ontology.snapshot()
        after = self.ontology.stats()
        return {key: after[key] - before.get(key, 0) for key in after}
