"""Applications of the Attention Ontology (paper Section 4).

* :mod:`repro.apps.story_tree` — story-tree formation: event similarity
  (Eq. 8-11), agglomerative clustering, time-ordered tree (Figure 5);
* :mod:`repro.apps.tagging` — document tagging: key-entity concept
  inference (Eq. 12-14) and LCS + Duet event/topic matching;
* :mod:`repro.apps.query` — query conceptualization, rewriting and
  entity recommendation;
* :mod:`repro.apps.recsys` — the news-feed recommendation simulator used to
  reproduce the CTR comparisons of Figures 6-7.
"""

from .story_tree import EventRecord, StoryTree, StoryTreeBuilder, StoryNode
from .tagging import DocumentTagger, TaggedDocument
from .query import QueryUnderstander, QueryAnalysis
from .recsys import FeedSimulator, ArmConfig, DayResult
from .story_tracker import StoryTracker, Story

__all__ = [
    "EventRecord",
    "StoryTree",
    "StoryTreeBuilder",
    "StoryNode",
    "DocumentTagger",
    "TaggedDocument",
    "QueryUnderstander",
    "QueryAnalysis",
    "FeedSimulator",
    "ArmConfig",
    "DayResult",
    "StoryTracker",
    "Story",
]
