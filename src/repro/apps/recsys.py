"""News-feed recommendation simulator (paper Section 5.4, Figures 6-7).

The paper measures tag-based recommendation CTR in a 110M-user A/B test we
obviously cannot run; DESIGN.md documents the substitution.  The simulator
keeps the *mechanism* identical — users and articles are tagged with
ontology nodes, the content-based recommender matches users with articles
through shared tags — and draws clicks from a ground-truth relevance model:

* a user's latent interest is a ground-truth *topic* (a developing story);
  by the ontology this implies interest in the topic's events, the concept
  generalising its entity slot, that concept's member entities, and the
  domain category;
* an article is about one event (on its day) or one entity;
* the click probability of an impression depends on how precisely the
  article matches the latent interest (exact event > same topic > related
  entity > same category only).

Tag types thus differ in *retrieval precision*: topic tags fetch articles
from the user's story (high CTR), event tags are precise but supply-limited
and bursty (high mean, high variance), entity/concept tags fetch related
but not story-critical articles, category tags fetch mostly-irrelevant
ones.  This reproduces the ordering and rough magnitudes of Figure 7 and
the all-tags vs category+entity uplift of Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import make_rng
from ..synth.world import World

TAG_TYPES: tuple[str, ...] = ("category", "concept", "entity", "event", "topic")

# Click probability by ground-truth relevance of the impression.
DEFAULT_CLICK_PROBS: dict[str, float] = {
    "event_exact": 0.20,  # fresh article about an event the user follows
    "event_seen": 0.155,  # another article on an event already browsed
    "same_topic": 0.15,  # article in the user's story, unseen event
    "related_entity": 0.085,  # about an entity the user's concept contains
    "same_category": 0.05,  # only category-level relevance
    "none": 0.015,  # irrelevant impression
}

# Ranking specificity: the recommender ranks candidates by the most
# specific tag type that produced the match (real feeds rank matches, they
# don't sample them uniformly).
TAG_SPECIFICITY: dict[str, int] = {
    "event": 5, "topic": 4, "entity": 3, "concept": 2, "category": 1,
}


@dataclass(frozen=True)
class ArmConfig:
    """One A/B arm: which tag types the recommender may match on."""

    name: str
    tag_types: tuple[str, ...]

    def __post_init__(self) -> None:
        for t in self.tag_types:
            if t not in TAG_TYPES:
                raise ValueError(f"unknown tag type {t!r}")


@dataclass
class DayResult:
    """CTR measurement for one arm on one day."""

    day: int
    impressions: int
    clicks: int

    @property
    def ctr(self) -> float:
        return self.clicks / self.impressions if self.impressions else 0.0


@dataclass
class _Article:
    article_id: str
    day: int
    tags: dict[str, set[str]]  # tag type -> tag values
    event_id: "str | None"
    entity: "str | None"
    category: str


@dataclass
class _User:
    user_id: int
    topic: str
    concept: "str | None"
    entities: set[str]
    events: set[str]
    category: str
    tags: dict[str, set[str]] = field(default_factory=dict)


class FeedSimulator:
    """Simulates the tag-matching news feed over a day range.

    When a *mined* ontology is supplied, concept tags for articles come from
    its concept-entity isA edges instead of the ground-truth world — so the
    concept arm's CTR reflects the constructed ontology's quality, exactly
    as in the paper's deployment (Section 5.4 notes concept CTR dips below
    entity CTR because of inference noise in the isA edges).  Ontology
    lookups go through an :class:`~repro.serving.service.OntologyService`
    replica, whose LRU cache amortises the per-article concept expansion
    across the day's feed; any object with the serving API — a
    :class:`~repro.cluster.service.ClusterService`, a remote cluster —
    is accepted directly as ``ontology``, so the CTR benchmarks can run
    their lookups through scatter-gather replicas.
    """

    def __init__(self, world: World, num_users: int = 500,
                 impressions_per_user: int = 8,
                 articles_per_event: int = 2,
                 entity_articles_per_day: int = 20,
                 click_probs: "dict[str, float] | None" = None,
                 ontology=None, seed: int = 0) -> None:
        self._world = world
        self._service = None
        if ontology is not None:
            # Imported here: repro.serving builds on repro.apps at import
            # time, so the reverse dependency must bind lazily.
            from ..core.ontology import AttentionOntology
            from ..core.store import OntologyStore
            from ..serving.service import OntologyService

            if isinstance(ontology, (AttentionOntology, OntologyStore)):
                ontology = OntologyService(ontology)
            # Anything else already speaks the serving API (an
            # OntologyService, ClusterService, remote cluster, ...).
            self._service = ontology
        self._num_users = num_users
        self._impressions_per_user = impressions_per_user
        self._articles_per_event = articles_per_event
        self._entity_articles_per_day = entity_articles_per_day
        self._probs = dict(DEFAULT_CLICK_PROBS)
        if click_probs:
            self._probs.update(click_probs)
        self._rng = make_rng(seed)
        self._users = self._make_users()

    def _concepts_of_entity(self, entity: str) -> set[str]:
        """Concept tags of an entity: mined ontology if given, else gold."""
        if self._service is not None:
            return set(self._service.concepts_of_entity(entity))
        return {
            c.phrase for c in self._world.concepts.values()
            if entity in c.members
        }

    # ------------------------------------------------------------------
    def _make_users(self) -> list[_User]:
        world = self._world
        topics = sorted(world.topics)
        users: list[_User] = []
        for uid in range(self._num_users):
            topic_name = topics[int(self._rng.integers(0, len(topics)))]
            topic = world.topics[topic_name]
            concept = world.concepts.get(topic.concept)
            events = {world.events[eid].phrase for eid in topic.event_ids}
            entities = set(concept.members) if concept else set()
            category = (
                concept.category[2] if concept
                else world.events[topic.event_ids[0]].category[2]
            )
            # The user's *profile tags* cover only what they have already
            # browsed: one or two entities and one past event.  Their latent
            # interest (used by the click model) covers the whole story —
            # this gap is exactly what topic/concept tags bridge and the
            # source of the Figure 6 uplift.
            seen_entities = self._sample_subset(sorted(entities), 2)
            seen_events = self._sample_subset(sorted(events), 1)
            tags = {
                "topic": {topic_name},
                "event": seen_events,
                "concept": {concept.phrase} if concept else set(),
                "entity": seen_entities,
                "category": {category},
            }
            users.append(
                _User(uid, topic_name, concept.phrase if concept else None,
                      entities, events, category, tags)
            )
        return users

    def _sample_subset(self, items: list, k: int) -> set:
        if not items:
            return set()
        k = min(k, len(items))
        idx = self._rng.choice(len(items), size=k, replace=False)
        return {items[int(i)] for i in idx}

    def _articles_for_day(self, day: int) -> list[_Article]:
        world = self._world
        articles: list[_Article] = []
        counter = 0
        # Event articles: published on the event's day and the day after.
        for event in world.events.values():
            if event.day not in (day, day - 1):
                continue
            concepts = self._concepts_of_entity(event.entity)
            for _k in range(self._articles_per_event):
                counter += 1
                articles.append(
                    _Article(
                        article_id=f"a{day}_{counter}",
                        day=day,
                        tags={
                            "category": {event.category[2]},
                            "entity": {event.entity},
                            "event": {event.phrase},
                            "topic": {event.topic},
                            "concept": concepts,
                        },
                        event_id=event.event_id,
                        entity=event.entity,
                        category=event.category[2],
                    )
                )
        # Evergreen entity articles.
        entity_names = sorted(world.entities)
        for _k in range(self._entity_articles_per_day):
            counter += 1
            name = entity_names[int(self._rng.integers(0, len(entity_names)))]
            entity = world.entities[name]
            concepts = self._concepts_of_entity(name)
            articles.append(
                _Article(
                    article_id=f"a{day}_{counter}",
                    day=day,
                    tags={
                        "category": {entity.category[2]},
                        "entity": {name},
                        "event": set(),
                        "topic": set(),
                        "concept": concepts,
                    },
                    event_id=None,
                    entity=name,
                    category=entity.category[2],
                )
            )
        return articles

    # ------------------------------------------------------------------
    def _relevance(self, user: _User, article: _Article) -> str:
        world = self._world
        if article.event_id is not None:
            event = world.events[article.event_id]
            if event.phrase in user.tags["event"]:
                return "event_seen"  # monotonous re-recommendation
            if event.phrase in user.events:
                return "event_exact"
            if event.topic == user.topic:
                return "same_topic"
        if article.entity is not None and article.entity in user.entities:
            return "related_entity"
        if article.category == user.category:
            return "same_category"
        return "none"

    @staticmethod
    def _match_score(user: _User, article: _Article,
                     tag_types: tuple[str, ...]) -> int:
        """Specificity of the best shared tag, 0 when nothing matches."""
        best = 0
        for t in tag_types:
            if user.tags[t] & article.tags[t]:
                best = max(best, TAG_SPECIFICITY[t])
        return best

    def simulate_arm(self, arm: ArmConfig, days: "list[int] | None" = None
                     ) -> list[DayResult]:
        """Run one arm over the day range; returns per-day CTR results.

        Candidates are ranked by tag-match specificity (shuffled within a
        tier) and the top slots become impressions — mirroring how the
        production feed ranks tag matches rather than sampling them.
        """
        world = self._world
        day_range = days if days is not None else list(range(world.config.num_days))
        results: list[DayResult] = []
        for day in day_range:
            articles = self._articles_for_day(day)
            impressions = 0
            clicks = 0
            for user in self._users:
                scored = []
                for article in articles:
                    score = self._match_score(user, article, arm.tag_types)
                    if score > 0:
                        scored.append((score, article))
                if not scored:
                    continue
                order = self._rng.permutation(len(scored))
                ranked = sorted((scored[int(i)] for i in order),
                                key=lambda sa: -sa[0])
                shown = [a for _s, a in ranked[: self._impressions_per_user]]
                for article in shown:
                    impressions += 1
                    p = self._probs[self._relevance(user, article)]
                    if self._rng.random() < p:
                        clicks += 1
            results.append(DayResult(day, impressions, clicks))
        return results

    def compare_arms(self, arms: "list[ArmConfig]",
                     days: "list[int] | None" = None
                     ) -> dict[str, list[DayResult]]:
        """Simulate several arms on identical days."""
        return {arm.name: self.simulate_arm(arm, days) for arm in arms}


def default_figure6_arms() -> list[ArmConfig]:
    """The two arms of Figure 6."""
    return [
        ArmConfig("all types of tags", TAG_TYPES),
        ArmConfig("category + entity", ("category", "entity")),
    ]


def default_figure7_arms() -> list[ArmConfig]:
    """The five single-tag-type arms of Figure 7."""
    return [ArmConfig(t, (t,)) for t in TAG_TYPES]
