"""Incremental story tracking.

The paper motivates story trees with *developing* stories — new events keep
arriving and interested users should be "kept updated" (Section 2, 4).  The
batch :class:`~repro.apps.story_tree.StoryTreeBuilder` rebuilds a tree from
scratch; this tracker maintains a set of stories *online*: each incoming
event either joins the best-matching existing story (when its Eq. 8
similarity to that story's events clears a threshold, or it shares a
trigger+entity) or starts a new story.  Follow-up recommendation then reads
the freshest unseen events of a user's stories.

Serving-grade routing (DESIGN.md): the tracker keeps inverted indexes —
phrase -> story, trigger -> stories, entity -> stories — so the structural
fast path and ``story_of`` lookups resolve without scanning every story;
only the Eq. 8 similarity fallback still touches each story.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from .story_tree import EventRecord, StoryTree, StoryTreeBuilder


@dataclass
class Story:
    """One tracked story: a growing collection of correlated events."""

    story_id: int
    events: list[EventRecord] = field(default_factory=list)

    @property
    def latest_day(self) -> int:
        return max(e.day for e in self.events) if self.events else -1

    @property
    def entities(self) -> set[str]:
        return {entity for e in self.events for entity in e.entities}

    @property
    def triggers(self) -> set[str]:
        return {e.trigger for e in self.events}


class StoryTracker:
    """Assigns arriving events to stories and serves follow-ups."""

    def __init__(self, builder: "StoryTreeBuilder | None" = None,
                 attach_threshold: float = 1.2,
                 max_compare_events: int = 8) -> None:
        """
        Args:
            builder: similarity provider (Eq. 8); default kernel when None.
            attach_threshold: minimum mean similarity to the story's recent
                events for attachment.
            max_compare_events: only the most recent events of a story are
                compared (stories can grow unboundedly).
        """
        self._builder = builder or StoryTreeBuilder()
        self._attach_threshold = attach_threshold
        self._max_compare = max_compare_events
        self._stories: list[Story] = []
        self._next_id = 0
        self._by_id: dict[int, Story] = {}
        # Inverted indexes; story ids increase in creation order, so the
        # minimum id in a candidate set is the earliest-created story.
        self._phrase_index: dict[str, set[int]] = defaultdict(set)
        self._trigger_index: dict[str, set[int]] = defaultdict(set)
        self._entity_index: dict[str, set[int]] = defaultdict(set)

    @property
    def stories(self) -> list[Story]:
        return list(self._stories)

    def __len__(self) -> int:
        return len(self._stories)

    # ------------------------------------------------------------------
    def _score_against(self, event: EventRecord, story: Story) -> float:
        recent = sorted(story.events, key=lambda e: -e.day)[: self._max_compare]
        sims = [self._builder.similarity(event, other) for other in recent]
        return float(np.mean(sims)) if sims else -np.inf

    def _fast_match_story(self, event: EventRecord) -> "Story | None":
        """Earliest story sharing the event's trigger and an entity, via
        the trigger/entity inverted indexes (no per-story scan)."""
        trigger_ids = self._trigger_index.get(event.trigger)
        if not trigger_ids:
            return None
        entity_ids: set[int] = set()
        for entity in event.entities:
            hit = self._entity_index.get(entity)
            if hit:
                entity_ids.update(hit)
        matched = trigger_ids & entity_ids
        if not matched:
            return None
        return self._by_id[min(matched)]

    def add_event(self, event: EventRecord) -> Story:
        """Route one event to its story (creating one when nothing fits).

        The structural fast path (shared trigger + shared entity) resolves
        through the indexes and takes precedence; otherwise every story is
        scored with the Eq. 8 similarity kernel as before.
        """
        best_story = self._fast_match_story(event)
        if best_story is None:
            best_score = self._attach_threshold
            for story in self._stories:
                score = self._score_against(event, story)
                if score >= best_score:
                    best_score = score
                    best_story = story
        if best_story is None:
            best_story = Story(self._next_id)
            self._next_id += 1
            self._stories.append(best_story)
            self._by_id[best_story.story_id] = best_story
        best_story.events.append(event)
        story_id = best_story.story_id
        self._phrase_index[event.phrase].add(story_id)
        self._trigger_index[event.trigger].add(story_id)
        for entity in event.entities:
            self._entity_index[entity].add(story_id)
        return best_story

    def add_events(self, events: "list[EventRecord]"
                   ) -> "list[tuple[int, EventRecord]]":
        """Route a batch, in chronological order; returns the routing
        decisions ``(story_id, event)`` in routing order (the maintained
        follow-ups view folds exactly this assignment stream)."""
        assignments: "list[tuple[int, EventRecord]]" = []
        for event in sorted(events, key=lambda e: (e.day, e.phrase)):
            story = self.add_event(event)
            assignments.append((story.story_id, event))
        return assignments

    # ------------------------------------------------------------------
    def story_of(self, phrase: str) -> "Story | None":
        """The earliest-created story containing ``phrase`` (indexed)."""
        story_ids = self._phrase_index.get(phrase)
        if not story_ids:
            return None
        return self._by_id[min(story_ids)]

    def follow_ups(self, read_phrase: str, limit: int = 3) -> list[EventRecord]:
        """Events in the same story published on or after the read day.

        Events carry day granularity only, so "published after" keeps
        *same-day siblings* — an event from the read event's own day is
        as likely to be a fresh development as tomorrow's.  The phrase
        index can point at a story whose matching event has since been
        merged away or evicted from ``story.events``; that is served as
        "no follow-ups" rather than an error.
        """
        story = self.story_of(read_phrase)
        if story is None:
            return []
        read = next((e for e in story.events if e.phrase == read_phrase),
                    None)
        if read is None:
            return []
        later = [e for e in story.events
                 if e.day >= read.day and e.phrase != read_phrase]
        later.sort(key=lambda e: (e.day, e.phrase))
        return later[:limit]

    def tree_of(self, phrase: str) -> "StoryTree | None":
        """Materialise the full story tree containing ``phrase``."""
        story = self.story_of(phrase)
        if story is None or not story.events:
            return None
        seed = min(story.events, key=lambda e: (e.day, e.phrase))
        return self._builder.build(seed, story.events,
                                   require_common_entity=False)
