"""Document tagging with attention phrases (paper Section 4).

Concept tagging combines:

* **matching-based** — for each key entity of the document, candidate
  concepts are its isA parents in the ontology; each candidate is scored by
  the TF-IDF similarity between the document title and the concept's
  context-enriched representation;
* **probabilistic inference** (Eq. 12-14) — when no parent exists, concepts
  are inferred from the context words around entities:
  P(pc|d) = sum_i P(pc|e_i) P(e_i|d), with P(pc|x_j) uniform over concepts
  containing x_j as a substring.

Event/topic tagging gates candidates with LCS-based textual matching over
title + first sentence, optionally combined with the Duet semantic matcher.

Candidate generation is index-driven (DESIGN.md): event/topic candidates
and inference-path concepts come from the
:class:`~repro.core.store.OntologyStore` inverted token index, so tagging
cost scales with the document's vocabulary overlap instead of the total
node count.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..core.ontology import AttentionOntology, NodeType
from ..nn.duet import DuetMatcher
from ..text.ner import NerTagger
from ..text.similarity import longest_common_subsequence
from ..text.tokenizer import tokenize
from ..text.vectorizer import TfidfVectorizer


@dataclass
class TaggedDocument:
    """Tagging output for one document."""

    doc_id: str
    concepts: list[tuple[str, float]] = field(default_factory=list)
    events: list[tuple[str, float]] = field(default_factory=list)
    topics: list[tuple[str, float]] = field(default_factory=list)

    @property
    def concept_tags(self) -> list[str]:
        return [c for c, _s in self.concepts]

    @property
    def event_tags(self) -> list[str]:
        return [e for e, _s in self.events]


class DocumentTagger:
    """Tags documents with ontology concepts, events and topics."""

    def __init__(self, ontology: AttentionOntology, ner: NerTagger,
                 coherence_threshold: float = 0.05,
                 inference_threshold: float = 0.15,
                 lcs_threshold: float = 0.6,
                 duet: "DuetMatcher | None" = None) -> None:
        self._ontology = ontology
        self._store = ontology.store
        self._ner = ner
        self._coherence_threshold = coherence_threshold
        self._inference_threshold = inference_threshold
        self._lcs_threshold = lcs_threshold
        self._duet = duet
        self._vectorizer = TfidfVectorizer()
        # Fit the vectorizer on concept context representations.
        for node in ontology.nodes(NodeType.CONCEPT):
            self._vectorizer.partial_fit(self._concept_context(node))

    # ------------------------------------------------------------------
    def _concept_context(self, node) -> list[str]:
        """Context-enriched representation of a concept.

        The paper uses the phrase + its top clicked titles; those titles
        overwhelmingly mention member entities, so the instance phrases are
        folded in as well (keeps the coherence signal when a document only
        names instances).
        """
        context = list(node.tokens)
        for title in node.payload.get("context_titles", [])[:5]:
            context.extend(title)
        for instance in self._ontology.instances_of(node.node_id):
            if instance.node_type == NodeType.ENTITY:
                context.extend(instance.tokens)
        return context

    def key_entities(self, tokens: list[str]) -> list[str]:
        """Key entities of a document (gazetteer spans, deduplicated)."""
        seen: dict[str, None] = {}
        for entity in self._ner.entities(tokens):
            seen.setdefault(entity, None)
        return list(seen)

    # ------------------------------------------------------------------
    # concept tagging
    # ------------------------------------------------------------------
    def tag_concepts(self, title_tokens: list[str], body_tokens: list[str]
                     ) -> list[tuple[str, float]]:
        """Concept tags with scores, matching-based then inference-based."""
        doc_tokens = title_tokens + body_tokens
        entities = self.key_entities(doc_tokens)

        scored: dict[str, float] = {}
        matched_any = False
        for entity in entities:
            for concept in self._ontology.concepts_of_entity(entity):
                matched_any = True
                coherence = self._vectorizer.similarity(
                    title_tokens, self._concept_context(concept)
                )
                if coherence >= self._coherence_threshold:
                    # Mild specificity bonus: prefer "hayao miyazaki animated
                    # films" over its generic ancestor "animated films" when
                    # both cohere ("suitable semantic granularity", Sec. 2).
                    specificity = 1.0 + 0.1 * len(concept.tokens)
                    score = coherence * specificity
                    scored[concept.phrase] = max(scored.get(concept.phrase, 0.0),
                                                 score)
        if not matched_any:
            scored.update(self._infer_concepts(doc_tokens, entities))
        return sorted(scored.items(), key=lambda kv: (-kv[1], kv[0]))

    def _infer_concepts(self, doc_tokens: list[str], entities: list[str]
                        ) -> dict[str, float]:
        """Probabilistic inference Eq. 12-14 over entity context words."""
        if not entities:
            return {}
        # P(e|d): document frequency of each entity.
        entity_counts = {
            e: max(1, _count_mentions(doc_tokens, tokenize(e))) for e in entities
        }
        total_mentions = sum(entity_counts.values())

        scores: dict[str, float] = defaultdict(float)
        sentences = _split_sentences(doc_tokens)
        # Per-document memo: entities share context words, so each word's
        # index lookup is paid once per document, not once per entity.
        word_candidates: dict[str, list] = {}
        for entity, count in entity_counts.items():
            p_entity = count / total_mentions
            context = _context_words(sentences, tokenize(entity))
            if not context:
                continue
            total_ctx = sum(context.values())
            for word, ctx_count in context.items():
                # Concepts containing the context word, via the store's
                # inverted token index (was an O(all-concepts) scan).
                candidates = word_candidates.get(word)
                if candidates is None:
                    candidates = self._store.nodes_with_token(
                        word, NodeType.CONCEPT)
                    word_candidates[word] = candidates
                if not candidates:
                    continue
                p_word = ctx_count / total_ctx
                p_concept = 1.0 / len(candidates)
                for concept in candidates:
                    scores[concept.phrase] += p_concept * p_word * p_entity
        return {
            phrase: score for phrase, score in scores.items()
            if score >= self._inference_threshold
        }

    # ------------------------------------------------------------------
    # event / topic tagging
    # ------------------------------------------------------------------
    def tag_events(self, title_tokens: list[str], first_sentence: list[str]
                   ) -> list[tuple[str, float]]:
        """Event tags via LCS gate (+ Duet gate when configured)."""
        return self._tag_phrases(NodeType.EVENT, title_tokens, first_sentence)

    def tag_topics(self, title_tokens: list[str], first_sentence: list[str]
                   ) -> list[tuple[str, float]]:
        return self._tag_phrases(NodeType.TOPIC, title_tokens, first_sentence)

    def _tag_phrases(self, node_type: NodeType, title_tokens: list[str],
                     first_sentence: list[str]) -> list[tuple[str, float]]:
        target = title_tokens + first_sentence
        # Any phrase clearing a positive LCS threshold shares at least one
        # token with the target, so the inverted index yields the exact
        # candidate set without scanning the whole partition.
        if self._lcs_threshold > 0:
            candidates = self._store.candidates(target, node_type)
        else:
            candidates = self._store.nodes(node_type)
        out: list[tuple[str, float]] = []
        for node in candidates:
            phrase_tokens = node.tokens
            if not phrase_tokens:
                continue
            lcs = longest_common_subsequence(phrase_tokens, target)
            ratio = lcs / len(phrase_tokens)
            if ratio < self._lcs_threshold:
                continue
            if self._duet is not None and not self._duet.predict(phrase_tokens, target):
                continue
            out.append((node.phrase, ratio))
        out.sort(key=lambda kv: (-kv[1], kv[0]))
        return out

    # ------------------------------------------------------------------
    def tag(self, doc_id: str, title_tokens: list[str],
            sentences: "list[list[str]]") -> TaggedDocument:
        """Tag one document with concepts, events and topics."""
        body = [t for sent in sentences for t in sent]
        first = sentences[0] if sentences else []
        return TaggedDocument(
            doc_id=doc_id,
            concepts=self.tag_concepts(title_tokens, body),
            events=self.tag_events(title_tokens, first),
            topics=self.tag_topics(title_tokens, first),
        )


def _count_mentions(tokens: list[str], needle: list[str]) -> int:
    if not needle:
        return 0
    k = len(needle)
    return sum(1 for i in range(len(tokens) - k + 1) if tokens[i : i + k] == needle)


def _split_sentences(tokens: list[str]) -> list[list[str]]:
    out: list[list[str]] = []
    current: list[str] = []
    for token in tokens:
        if token in {".", "!", "?", ";"}:
            if current:
                out.append(current)
                current = []
        else:
            current.append(token)
    if current:
        out.append(current)
    return out


def _context_words(sentences: "list[list[str]]", entity_tokens: list[str]
                   ) -> dict[str, int]:
    """Co-occurring words: tokens sharing a sentence with the entity."""
    from ..text.stopwords import is_stopword

    out: dict[str, int] = defaultdict(int)
    entity_set = set(entity_tokens)
    k = len(entity_tokens)
    for sent in sentences:
        mentions = any(
            sent[i : i + k] == entity_tokens for i in range(len(sent) - k + 1)
        )
        if not mentions:
            continue
        for token in sent:
            if token not in entity_set and not is_stopword(token):
                out[token] += 1
    return out
