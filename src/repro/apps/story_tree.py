"""Story-tree formation (paper Section 4 + Figure 5).

Given a seed event, retrieve correlated events from the ontology, measure
pairwise similarity

    s(e1, e2) = fm(e1, e2) + fg(e1, e2) + fe(e1, e2)        (Eq. 8)

where fm is the cosine similarity of phrase encodings (Eq. 9 — BERT in the
paper, mean word vectors here), fg the cosine similarity of trigger word
vectors (Eq. 10), and fe the TF-IDF similarity of entity sets (Eq. 11);
group events by agglomerative (average-linkage) hierarchical clustering;
and form the tree by ordering events by time, putting each cluster on one
branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..text.embeddings import WordEmbeddings
from ..text.similarity import tfidf_similarity
from ..text.tokenizer import tokenize


@dataclass
class EventRecord:
    """An event participating in story formation."""

    phrase: str
    trigger: str
    entities: list[str]
    day: int
    location: "str | None" = None
    doc_ids: list[str] = field(default_factory=list)

    @property
    def tokens(self) -> list[str]:
        return tokenize(self.phrase)


@dataclass
class StoryNode:
    """One tree node: an event plus its tagged documents."""

    event: EventRecord
    children: list["StoryNode"] = field(default_factory=list)


@dataclass
class StoryTree:
    """A story: a root node whose branches are coherent event threads."""

    root: StoryNode
    branches: list[list[EventRecord]] = field(default_factory=list)

    def render(self) -> str:
        """Figure-5-style text rendering."""
        lines = [f"story: {self.root.event.phrase} (day {self.root.event.day})"]
        for i, branch in enumerate(self.branches):
            lines.append(f"  branch {i + 1}:")
            for event in branch:
                lines.append(f"    - day {event.day:3d}  {event.phrase}")
        return "\n".join(lines)

    @property
    def num_events(self) -> int:
        return sum(len(b) for b in self.branches)


class StoryTreeBuilder:
    """Builds story trees from event collections."""

    def __init__(self, embeddings: "WordEmbeddings | None" = None,
                 cluster_threshold: float = 1.2) -> None:
        """
        Args:
            embeddings: word embeddings for fm/fg; hash-fallback when None.
            cluster_threshold: minimum average-linkage similarity for two
                clusters to merge (s ranges over [-3, 3]; each term <= 1).
        """
        self._emb = embeddings or WordEmbeddings(dim=32)
        self._threshold = cluster_threshold

    # ------------------------------------------------------------------
    # retrieval + similarity
    # ------------------------------------------------------------------
    @staticmethod
    def retrieve_correlated(seed: EventRecord, pool: "list[EventRecord]",
                            require_common_entity: bool = True,
                            require_same_trigger: bool = False
                            ) -> list[EventRecord]:
        """Correlated-event retrieval with the paper's flexible criteria."""
        seed_entities = set(seed.entities)
        out = []
        for event in pool:
            if event is seed:
                continue
            if require_common_entity and not (seed_entities & set(event.entities)):
                continue
            if require_same_trigger and event.trigger != seed.trigger:
                continue
            out.append(event)
        return out

    def similarity(self, e1: EventRecord, e2: EventRecord) -> float:
        """Eq. 8: fm + fg + fe."""
        fm = float(np.dot(self._emb.encode_phrase(e1.tokens),
                          self._emb.encode_phrase(e2.tokens)))
        fg = self._emb.similarity(e1.trigger, e2.trigger)
        fe = tfidf_similarity(
            [t for e in e1.entities for t in tokenize(e)],
            [t for e in e2.entities for t in tokenize(e)],
        )
        return fm + fg + fe

    def similarity_matrix(self, events: "list[EventRecord]") -> np.ndarray:
        n = len(events)
        sim = np.zeros((n, n))
        for i in range(n):
            sim[i, i] = 3.0
            for j in range(i + 1, n):
                s = self.similarity(events[i], events[j])
                sim[i, j] = sim[j, i] = s
        return sim

    # ------------------------------------------------------------------
    # clustering
    # ------------------------------------------------------------------
    def cluster(self, events: "list[EventRecord]") -> list[list[int]]:
        """Average-linkage agglomerative clustering on Eq. 8 similarity."""
        n = len(events)
        if n == 0:
            return []
        sim = self.similarity_matrix(events)
        clusters: list[list[int]] = [[i] for i in range(n)]
        while len(clusters) > 1:
            best_pair = None
            best_sim = self._threshold
            for a in range(len(clusters)):
                for b in range(a + 1, len(clusters)):
                    pairs = [(i, j) for i in clusters[a] for j in clusters[b]]
                    avg = float(np.mean([sim[i, j] for i, j in pairs]))
                    if avg >= best_sim:
                        best_sim = avg
                        best_pair = (a, b)
            if best_pair is None:
                break
            a, b = best_pair
            clusters[a] = clusters[a] + clusters[b]
            del clusters[b]
        return clusters

    # ------------------------------------------------------------------
    # tree formation
    # ------------------------------------------------------------------
    def build(self, seed: EventRecord, pool: "list[EventRecord]",
              require_common_entity: bool = True,
              require_same_trigger: bool = False) -> StoryTree:
        """Retrieve, cluster, and form the story tree."""
        related = self.retrieve_correlated(
            seed, pool,
            require_common_entity=require_common_entity,
            require_same_trigger=require_same_trigger,
        )
        events = [seed] + related
        events.sort(key=lambda e: (e.day, e.phrase))
        cluster_indices = self.cluster(events)

        branches: list[list[EventRecord]] = []
        for indices in cluster_indices:
            branch = sorted((events[i] for i in indices),
                            key=lambda e: (e.day, e.phrase))
            branches.append(branch)
        branches.sort(key=lambda b: (b[0].day, b[0].phrase))

        root_event = events[0]
        root = StoryNode(root_event)
        for branch in branches:
            node = None
            for event in reversed(branch):
                node = StoryNode(event, children=[node] if node else [])
            if node is not None and node.event is not root_event:
                root.children.append(node)
        return StoryTree(root=root, branches=branches)
