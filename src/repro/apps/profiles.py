"""User interest profiles over the Attention Ontology.

Paper Figure 2 (application component): "we can also integrate different
nodes to user profiles to characterize the interest of different users
based on his/her historical viewing behavior", and Section 2: "a plethora
of edges enables the inference of more hidden interests of a user beyond
the content he/she has browsed by moving along the edges ... and
recommending other related nodes at a coarser or finer granularity".

:class:`UserProfiler` consumes a user's reading history (documents already
tagged with ontology nodes), accumulates decayed tag weights, and *expands*
the profile along ontology edges:

* isA parents (entity -> concept, concept -> category): coarser interests;
* isA children (concept -> entities, topic -> events): finer interests;
* correlate neighbours: lateral interests.

Expansion weights are discounted so observed tags dominate inferred ones.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..core.ontology import AttentionOntology, EdgeType, NodeType


@dataclass
class InterestProfile:
    """A user's ranked interests, observed and inferred."""

    user_id: str
    weights: dict[str, float] = field(default_factory=dict)  # node_id -> weight
    observed: set[str] = field(default_factory=set)

    def top(self, ontology: AttentionOntology, k: int = 10,
            node_type: "NodeType | None" = None) -> list[tuple[str, float]]:
        """Top-k (phrase, weight) interests, optionally filtered by type."""
        items = []
        for node_id, weight in self.weights.items():
            node = ontology.node(node_id)
            if node_type is None or node.node_type == node_type:
                items.append((node.phrase, weight))
        items.sort(key=lambda pw: (-pw[1], pw[0]))
        return items[:k]


class UserProfiler:
    """Builds and updates interest profiles from tagged reading history."""

    def __init__(self, ontology: AttentionOntology,
                 decay: float = 0.9,
                 parent_discount: float = 0.5,
                 child_discount: float = 0.3,
                 correlate_discount: float = 0.4) -> None:
        """
        Args:
            ontology: the attention ontology.
            decay: multiplicative decay applied to existing weights per
                update (older reads matter less).
            parent_discount: weight share propagated to isA parents.
            child_discount: weight share propagated to isA children.
            correlate_discount: weight share propagated along correlate
                edges.
        """
        self._ontology = ontology
        self._decay = decay
        self._parent_discount = parent_discount
        self._child_discount = child_discount
        self._correlate_discount = correlate_discount
        self._profiles: dict[str, InterestProfile] = {}

    def profile(self, user_id: str) -> InterestProfile:
        if user_id not in self._profiles:
            self._profiles[user_id] = InterestProfile(user_id)
        return self._profiles[user_id]

    def users(self) -> list[str]:
        """Ids of every user with a profile, in first-seen order (the
        maintained interests view enumerates these when rehydrating)."""
        return list(self._profiles)

    # ------------------------------------------------------------------
    def _resolve(self, phrase: str) -> "str | None":
        for node_type in (NodeType.CONCEPT, NodeType.EVENT, NodeType.TOPIC,
                          NodeType.ENTITY, NodeType.CATEGORY):
            node = self._ontology.find(node_type, phrase)
            if node is not None:
                return node.node_id
        return None

    def record_read(self, user_id: str, tags: "list[str]",
                    weight: float = 1.0) -> InterestProfile:
        """Update a profile with the tags of one read document."""
        profile = self.profile(user_id)
        for node_id in list(profile.weights):
            profile.weights[node_id] *= self._decay
        for phrase in tags:
            node_id = self._resolve(phrase)
            if node_id is None:
                continue
            profile.weights[node_id] = profile.weights.get(node_id, 0.0) + weight
            profile.observed.add(node_id)
        return profile

    # ------------------------------------------------------------------
    def infer(self, user_id: str, hops: int = 1) -> InterestProfile:
        """Expand a profile along ontology edges (hidden interests).

        Inferred weights never overwrite observed ones; repeated expansion
        is idempotent on structure (weights recomputed from observations).
        """
        profile = self.profile(user_id)
        onto = self._ontology
        inferred: dict[str, float] = defaultdict(float)
        frontier = {nid: profile.weights[nid] for nid in profile.observed
                    if nid in profile.weights}
        for _hop in range(hops):
            next_frontier: dict[str, float] = defaultdict(float)
            for node_id, weight in frontier.items():
                for parent in onto.predecessors(node_id, EdgeType.ISA):
                    next_frontier[parent.node_id] += weight * self._parent_discount
                for child in onto.successors(node_id, EdgeType.ISA):
                    next_frontier[child.node_id] += weight * self._child_discount
                for peer in onto.successors(node_id, EdgeType.CORRELATE):
                    next_frontier[peer.node_id] += weight * self._correlate_discount
            for node_id, weight in next_frontier.items():
                inferred[node_id] += weight
            frontier = dict(next_frontier)

        for node_id, weight in inferred.items():
            if node_id not in profile.observed:
                profile.weights[node_id] = max(
                    profile.weights.get(node_id, 0.0), weight
                )
        return profile

    # ------------------------------------------------------------------
    def recommend_tags(self, user_id: str, k: int = 5,
                       exclude_observed: bool = True) -> list[tuple[str, float]]:
        """Ranked *inferred* tags — the extrapolation the paper motivates
        (read about "honda civic", get "economy cars")."""
        profile = self.infer(user_id)
        items = []
        for node_id, weight in profile.weights.items():
            if exclude_observed and node_id in profile.observed:
                continue
            items.append((self._ontology.node(node_id).phrase, weight))
        items.sort(key=lambda pw: (-pw[1], pw[0]))
        return items[:k]
