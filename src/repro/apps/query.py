"""Query understanding: conceptualization, rewriting, recommendation.

Paper Section 4 ("Query Understanding"): when a query conveys a concept pc,
rewrite it by concatenating the query with each entity that isA pc ("q e_i");
when it conveys an entity e, recommend the entities correlated with e.

Phrase detection runs off the :class:`~repro.core.store.OntologyStore`
inverted token index (``contained_phrases``) rather than scanning every
node of the partition per query (DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.ontology import AttentionOntology, NodeType
from ..text.tokenizer import tokenize


@dataclass
class QueryAnalysis:
    """Analysis of one query against the ontology."""

    query: str
    concepts: list[str] = field(default_factory=list)
    entities: list[str] = field(default_factory=list)
    rewrites: list[str] = field(default_factory=list)
    recommendations: list[str] = field(default_factory=list)

    @property
    def conveys_concept(self) -> bool:
        return bool(self.concepts)

    @property
    def conveys_entity(self) -> bool:
        return bool(self.entities)


class QueryUnderstander:
    """Analyzes queries with the attention ontology."""

    def __init__(self, ontology: AttentionOntology, max_rewrites: int = 5,
                 max_recommendations: int = 5) -> None:
        self._ontology = ontology
        self._store = ontology.store
        self._max_rewrites = max_rewrites
        self._max_recommendations = max_recommendations

    def _contained_phrases(self, query_tokens: list[str], node_type: NodeType
                           ) -> list[str]:
        """Ontology phrases of ``node_type`` contained in the query,
        most specific (longest) first — candidates come from the store's
        inverted token index."""
        nodes = self._store.contained_phrases(query_tokens, node_type)
        out = sorted((-len(node.tokens), node.phrase) for node in nodes)
        return [phrase for _neg_len, phrase in out]

    def analyze(self, query: str) -> QueryAnalysis:
        """Detect concepts/entities in the query; produce rewrites/recs."""
        tokens = tokenize(query)
        concepts = self._contained_phrases(tokens, NodeType.CONCEPT)
        entities = self._contained_phrases(tokens, NodeType.ENTITY)

        analysis = QueryAnalysis(query=query, concepts=concepts, entities=entities)

        if concepts:
            # Rewrite with instances of the most specific matched concept.
            instances = self._ontology.entities_of_concept(concepts[0])
            for entity in instances[: self._max_rewrites]:
                analysis.rewrites.append(f"{query} {entity.phrase}")
        if entities:
            node = self._ontology.find(NodeType.ENTITY, entities[0])
            if node is not None:
                for other in self._ontology.correlated(node.node_id):
                    if other.node_type == NodeType.ENTITY:
                        analysis.recommendations.append(other.phrase)
                analysis.recommendations = (
                    analysis.recommendations[: self._max_recommendations]
                )
        return analysis
