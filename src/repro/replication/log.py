"""DeltaLog: a durable, segmented write-ahead log of ontology deltas.

The builder's :class:`~repro.core.store.OntologyDelta` batches are the
system of record (DESIGN.md §4); this module gives them a crash-safe
on-disk form a serving fleet can be fed from:

* **Segments** — deltas append to ``seg-<n>.jsonl`` files (one canonical
  JSON line per delta, :func:`~repro.core.serialize.delta_to_json_line`);
  when the active segment would exceed ``segment_max_bytes`` the log
  rolls to a new one.  Whole segments are the unit of retention: the
  catalog garbage-collects folded segments, never individual records.
* **Manifest** — ``MANIFEST.json`` records the live segment list and
  each segment's base version, rewritten atomically (temp + rename) on
  roll and GC.  Appends never touch it; the scan on open re-derives the
  active segment's bounds.
* **Contiguity on append** — the log accepts exactly the stream
  discipline :meth:`OntologyStore.apply_delta` enforces: a batch must
  start at the log's last version (duplicates are skipped, gaps and
  straddling batches raise :class:`~repro.errors.DeltaGapError`), so a
  retained log prefix is always replayable.
* **Crash recovery** — a writer killed mid-append leaves a torn last
  line; :meth:`recover` (run automatically on open) truncates the
  segment back to its last intact, contiguous record, so replay after a
  crash reproduces exactly the committed prefix.
* **fsync-on-commit** — with ``fsync=True`` every append flushes and
  fsyncs before returning (and rolls fsync the directory entry), giving
  power-loss durability at the cost of write latency; the default only
  flushes to the OS, which survives process crashes but not power loss.

One process writes; any number of readers consume via :meth:`read`
range reads (the publisher), or out-of-process through
:class:`~repro.replication.publisher.LogPublisher`.
"""

from __future__ import annotations

import bisect
import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Iterable

from ..core.serialize import (
    delta_from_json_line,
    delta_to_dict,
    delta_to_json_line,
)
from ..core.store import OntologyDelta
from ..errors import DeltaGapError, OntologyError

LOG_FORMAT_VERSION = 1
_SEGMENT_GLOB = "seg-*.jsonl"
_MANIFEST = "MANIFEST.json"


@dataclass
class SegmentInfo:
    """Bookkeeping for one segment file."""

    name: str
    base_version: int  # log version before the segment's first delta
    end_version: int  # log version after the segment's last delta
    size_bytes: int
    deltas: int
    # In-memory record index: (record base_version, byte offset) per
    # retained record, in order — lets duplicate verification seek one
    # line instead of re-parsing the segment.
    index: "list[tuple[int, int]]" = field(default_factory=list,
                                           repr=False, compare=False)

    def describe(self) -> dict:
        return {
            "name": self.name,
            "base_version": self.base_version,
            "end_version": self.end_version,
            "size_bytes": self.size_bytes,
            "deltas": self.deltas,
        }


class DeltaLog:
    """Segmented, append-only delta log in a directory.

    Args:
        path: log directory (created if missing, unless read-only).
        segment_max_bytes: roll to a new segment once the active one
            holds at least one record and the next append would push it
            past this size.
        fsync: fsync every committed append (power-loss durability).
        readonly: open without the destructive parts of recovery — no
            tail truncation, no manifest rewrite, no orphan removal —
            and with every mutator disabled.  This is the mode for a
            *reader of someone else's log* (``serve --from-log`` next
            to a live builder): a half-written in-flight record is
            simply ignored instead of being mistaken for a torn write
            and truncated out from under the writer's append handle.
    """

    def __init__(self, path: "str | os.PathLike", *,
                 segment_max_bytes: int = 1 << 20,
                 fsync: bool = False, readonly: bool = False) -> None:
        if segment_max_bytes <= 0:
            raise OntologyError("segment_max_bytes must be positive")
        self.path = pathlib.Path(path)
        self._readonly = readonly
        if readonly:
            if not self.path.is_dir():
                raise OntologyError(
                    f"no delta log directory at {self.path}")
        else:
            self.path.mkdir(parents=True, exist_ok=True)
        self._segment_max_bytes = segment_max_bytes
        self._fsync = fsync
        self._segments: list[SegmentInfo] = []
        self._handle = None  # append handle for the active segment
        self._closed = False
        self.last_recovery: dict = {}
        self.recover()

    # ------------------------------------------------------------------
    # open / recover
    # ------------------------------------------------------------------
    def recover(self) -> dict:
        """Scan the directory, repair a torn tail, rebuild bookkeeping.

        Returns a report ``{"segments", "dropped_lines", "dropped_ops",
        "truncated_bytes", "removed_segments"}``; the same dict is kept
        on :attr:`last_recovery`.  A torn (partially written) last line
        of the final segment — the only damage a killed writer can
        inflict — is truncated away; a segment left from an interrupted
        GC (on disk but dropped from the manifest) is removed.  A
        read-only log performs the same analysis without repairing: the
        torn/in-flight tail is excluded from the readable range and
        orphans are skipped, but no file is written.
        """
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        manifest = self._read_manifest()
        on_disk = sorted(p.name for p in self.path.glob(_SEGMENT_GLOB))
        listed = [entry["name"] for entry in manifest.get("segments", [])]
        removed: list[str] = []
        if listed:
            # Files sorting before the manifest's first segment were
            # GC'd but survived a crash between manifest write + unlink.
            for name in list(on_disk):
                if name < listed[0]:
                    if not self._readonly:
                        (self.path / name).unlink()
                        removed.append(name)
                    on_disk.remove(name)
        # A manifest entry without a file (crash between manifest write
        # and file creation on roll) is an empty active segment.
        names = sorted(set(on_disk) | set(listed))
        base_by_name = {e["name"]: e.get("base_version")
                        for e in manifest.get("segments", [])}

        report = {"segments": 0, "dropped_lines": 0, "dropped_ops": 0,
                  "truncated_bytes": 0, "removed_segments": removed}
        self._segments = []
        version = None
        for index, name in enumerate(names):
            is_last = index == len(names) - 1
            base = base_by_name.get(name)
            if version is None:
                version = base if base is not None else 0
            elif base is not None and base != version:
                raise OntologyError(
                    f"delta log segment {name} starts at version {base}, "
                    f"expected {version} — segments are not contiguous"
                )
            info, version = self._scan_segment(name, version, is_last,
                                               report)
            self._segments.append(info)
        if not self._segments:
            if self._readonly:
                self._segments.append(SegmentInfo("seg-000001.jsonl",
                                                  0, 0, 0, 0))
            else:
                self._segments.append(self._create_segment(0))
        report["segments"] = len(self._segments)
        if not self._readonly:
            self._write_manifest()
        self.last_recovery = report
        return report

    def _scan_segment(self, name: str, base_version: int, is_last: bool,
                      report: dict) -> "tuple[SegmentInfo, int]":
        """Parse one segment; on the last segment, truncate a torn or
        non-contiguous tail back to the last good record."""
        path = self.path / name
        if not path.exists():
            if not self._readonly:
                path.touch()
            return (SegmentInfo(name, base_version, base_version, 0, 0),
                    base_version)
        raw = path.read_bytes()
        version = base_version
        good_bytes = 0
        deltas = 0
        offset = 0
        index: "list[tuple[int, int]]" = []
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                break  # unterminated tail — torn write
            line = raw[offset:newline].decode("utf-8", errors="replace")
            try:
                delta = delta_from_json_line(line)
            except (ValueError, KeyError, OntologyError):
                break  # torn/corrupt record: keep the prefix before it
            if delta.base_version != version or \
                    delta.base_version + len(delta.ops) != delta.version:
                break  # non-contiguous record cannot be part of the log
            index.append((delta.base_version, offset))
            version = delta.version
            deltas += 1
            offset = newline + 1
            good_bytes = offset
        if good_bytes < len(raw):
            if not is_last:
                raise OntologyError(
                    f"delta log segment {name} is corrupt mid-log (only "
                    f"the newest segment can hold a torn tail); restore "
                    f"it or drop the log directory"
                )
            dropped = raw[good_bytes:]
            report["dropped_lines"] += dropped.count(b"\n") + (
                0 if dropped.endswith(b"\n") else 1)
            report["truncated_bytes"] += len(dropped)
            for line in dropped.split(b"\n"):
                try:
                    torn = delta_from_json_line(line.decode("utf-8"))
                except Exception:
                    continue
                report["dropped_ops"] += len(torn.ops)
            if not self._readonly:
                # A read-only opener leaves the tail alone — it may be
                # the writer's in-flight append, not a torn write.
                with open(path, "r+b") as handle:
                    handle.truncate(good_bytes)
                    if self._fsync:
                        os.fsync(handle.fileno())
        return SegmentInfo(name, base_version, version, good_bytes,
                           deltas, index), version

    # ------------------------------------------------------------------
    # bounds / introspection
    # ------------------------------------------------------------------
    @property
    def first_version(self) -> int:
        """Version before the earliest retained delta (0 until GC)."""
        return self._segments[0].base_version

    @property
    def last_version(self) -> int:
        """Version after replaying every retained delta."""
        return self._segments[-1].end_version

    def segments(self) -> "list[SegmentInfo]":
        return list(self._segments)

    def size_bytes(self) -> int:
        return sum(seg.size_bytes for seg in self._segments)

    def __len__(self) -> int:
        """Number of retained deltas."""
        return sum(seg.deltas for seg in self._segments)

    def describe(self) -> dict:
        return {
            "path": str(self.path),
            "first_version": self.first_version,
            "last_version": self.last_version,
            "segments": [seg.describe() for seg in self._segments],
            "size_bytes": self.size_bytes(),
        }

    # ------------------------------------------------------------------
    # append
    # ------------------------------------------------------------------
    def append(self, delta: OntologyDelta) -> bool:
        """Commit one delta; returns ``False`` for an already-retained
        duplicate (at-least-once producers are safe).

        Raises :class:`DeltaGapError` when the batch does not continue
        the log's stream (a gap or a straddling batch), and
        :class:`OntologyError` for an internally inconsistent batch or
        a *divergent* one — a batch claiming an already-retained version
        range with different content, e.g. a fresh build appending into
        an old log directory — both *before* any byte is written.
        """
        self._ensure_open()
        if delta.base_version + len(delta.ops) != delta.version:
            raise OntologyError(
                f"delta is internally inconsistent: {len(delta.ops)} ops "
                f"cannot advance version {delta.base_version} to "
                f"{delta.version}"
            )
        if not DeltaGapError.check("log", self.last_version, delta):
            self._verify_duplicate(delta)
            return False
        line = delta_to_json_line(delta) + "\n"
        data = line.encode("utf-8")
        active = self._segments[-1]
        if active.size_bytes and active.size_bytes + len(data) > \
                self._segment_max_bytes:
            self._roll()
            active = self._segments[-1]
        handle = self._active_handle()
        handle.write(data)
        handle.flush()
        if self._fsync:
            os.fsync(handle.fileno())
        active.index.append((delta.base_version, active.size_bytes))
        active.size_bytes += len(data)
        active.end_version = delta.version
        active.deltas += 1
        return True

    def extend(self, deltas: "Iterable[OntologyDelta]") -> int:
        """Append a batch sequence; returns how many were new."""
        return sum(1 for delta in deltas if self.append(delta))

    def _verify_duplicate(self, delta: OntologyDelta) -> None:
        """A skipped "duplicate" must MATCH the retained record at its
        range.  A producer whose stream diverged — rebuilding into an
        existing log directory is the classic case — would otherwise
        silently lose its batches while the log pretends to hold them
        (and a later snapshot would poison the directory for good).

        The per-segment record index makes this one seek + line read
        per duplicate, so at-least-once full-stream re-delivery stays
        linear; the format is canonical JSON, so byte comparison is an
        exact content comparison.
        """
        segment = None
        for seg in self._segments:
            if seg.base_version <= delta.base_version < seg.end_version:
                segment = seg
                break
        if segment is None:
            return  # range already folded into a snapshot and GC'd
        at = bisect.bisect_right(segment.index,
                                 (delta.base_version, 1 << 62)) - 1
        retained_base, offset = segment.index[at]
        mismatch = retained_base != delta.base_version
        if not mismatch:
            with open(self.path / segment.name, "rb") as handle:
                handle.seek(offset)
                retained_line = handle.readline().rstrip(b"\n")
            mismatch = retained_line != delta_to_json_line(
                delta).encode("utf-8")
        if mismatch:
            raise OntologyError(
                f"delta {delta.base_version}..{delta.version} conflicts "
                f"with the retained record at version {retained_base}: "
                f"this log holds a different delta stream (rebuilding "
                f"into an existing log directory?) — use a fresh directory"
            )

    def _roll(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            if self._fsync:
                os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None
        self._segments.append(self._create_segment(self.last_version))
        self._write_manifest()
        if self._fsync:
            self._fsync_dir()

    def _create_segment(self, base_version: int) -> SegmentInfo:
        ordinal = 1
        if self._segments:
            last_name = self._segments[-1].name
            ordinal = int(last_name.split("-")[1].split(".")[0]) + 1
        name = f"seg-{ordinal:06d}.jsonl"
        (self.path / name).touch()
        return SegmentInfo(name, base_version, base_version, 0, 0)

    def _active_handle(self):
        if self._handle is None:
            self._handle = open(self.path / self._segments[-1].name, "ab")
        return self._handle

    def _ensure_open(self) -> None:
        if self._closed:
            raise OntologyError("the delta log is closed")
        if self._readonly:
            raise OntologyError("the delta log was opened read-only")

    # ------------------------------------------------------------------
    # range reads
    # ------------------------------------------------------------------
    def read(self, since: int = 0,
             max_count: "int | None" = None) -> "list[OntologyDelta]":
        """Deltas advancing a consumer at version ``since``, in order.

        Raises :class:`DeltaGapError` when the log's retained prefix
        starts *after* ``since`` (the needed deltas were garbage-
        collected) — the consumer must re-bootstrap from a snapshot.
        """
        if since < self.first_version:
            raise DeltaGapError.for_stream("log reader", since,
                                           self.first_version)
        out: list[OntologyDelta] = []
        for seg in self._segments:
            if seg.end_version <= since:
                continue
            parsed = 0
            with open(self.path / seg.name, encoding="utf-8") as handle:
                for line in handle:
                    if parsed >= seg.deltas:
                        break  # past the validated prefix: a torn or
                        # in-flight tail a read-only open left in place
                    line = line.strip()
                    if not line:
                        continue
                    delta = delta_from_json_line(line)
                    parsed += 1
                    if delta.version <= since:
                        continue
                    out.append(delta)
                    if max_count is not None and len(out) >= max_count:
                        return out
        return out

    # ------------------------------------------------------------------
    # retention
    # ------------------------------------------------------------------
    def drop_segments_before(self, version: int,
                             retain_tail: int = 0) -> "list[str]":
        """Garbage-collect sealed segments fully folded into a snapshot
        at ``version``, keeping the newest ``retain_tail`` of them so
        followers slightly behind the snapshot can still catch up from
        the log instead of re-bootstrapping.  The active segment is
        never dropped.  Returns the names removed.
        """
        self._ensure_open()
        candidates = [seg for seg in self._segments[:-1]
                      if seg.end_version <= version]
        if retain_tail > 0:
            candidates = candidates[:-retain_tail] if \
                len(candidates) > retain_tail else []
        if not candidates:
            return []
        dropped = [seg.name for seg in candidates]
        self._segments = [seg for seg in self._segments
                          if seg.name not in set(dropped)]
        self._write_manifest()  # manifest first: a crash here leaves
        for name in dropped:    # orphans recover() removes on next open
            (self.path / name).unlink()
        if self._fsync:
            self._fsync_dir()
        return dropped

    # ------------------------------------------------------------------
    # manifest / lifecycle
    # ------------------------------------------------------------------
    def _read_manifest(self) -> dict:
        path = self.path / _MANIFEST
        if not path.exists():
            return {}
        data = json.loads(path.read_text())
        if data.get("format") != LOG_FORMAT_VERSION:
            raise OntologyError(
                f"unsupported delta log format: {data.get('format')!r}")
        return data

    def _write_manifest(self) -> None:
        payload = {
            "format": LOG_FORMAT_VERSION,
            "segments": [{"name": seg.name,
                          "base_version": seg.base_version}
                         for seg in self._segments],
        }
        tmp = self.path / (_MANIFEST + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        os.replace(tmp, self.path / _MANIFEST)

    def _fsync_dir(self) -> None:
        try:
            fd = os.open(self.path, os.O_RDONLY)
        except OSError:  # platform without directory fds
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def sync(self) -> None:
        """Flush and fsync the active segment (regardless of ``fsync``)."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._handle is not None:
            self._handle.flush()
            if self._fsync:
                os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "DeltaLog":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
