"""SnapshotCatalog: compaction policy and snapshot retention for a log.

A long-running builder appends :class:`~repro.core.store.OntologyDelta`
batches to a :class:`~repro.replication.log.DeltaLog` forever; replaying
that history linearly gets slower every day.  The catalog implements the
retention policy (DESIGN.md §8):

* when the **un-folded prefix** of the log (segments holding deltas
  newer than the latest snapshot) crosses ``compact_bytes``,
  :meth:`maybe_compact` folds the builder's store into a snapshot via
  :meth:`OntologyStore.compact` and records it next to the log;
* folded segments are then **garbage-collected**
  (:meth:`DeltaLog.drop_segments_before`), keeping the newest
  ``retain_segments`` of them so followers slightly behind the snapshot
  catch up from the log instead of re-bootstrapping;
* a bound **GC floor** (:meth:`bind_gc_floor` — typically the
  :class:`~repro.replication.publisher.LogPublisher`'s registered
  follower positions) caps the GC point: segments a registered follower
  still needs are kept past a compaction, so slow followers never fall
  into the snapshot re-bootstrap path just because the builder
  compacted;
* old snapshots beyond ``retain_snapshots`` are pruned.

A follower cold-starts from ``latest()`` snapshot + ``log.read(version)``
tail — :meth:`OntologyStore.bootstrap` — with state identical to a full
replay; the :class:`~repro.replication.publisher.LogPublisher` serves
both halves over RPC.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Callable

from ..core.store import OntologyStore
from ..errors import OntologyError
from .log import DeltaLog

CATALOG_FORMAT_VERSION = 1
_CATALOG = "CATALOG.json"

#: Snapshot encodings the catalog can write (readers accept both).
SNAPSHOT_FORMATS = ("json", "columnar")


class SnapshotCatalog:
    """Snapshots recorded alongside a :class:`DeltaLog`.

    Args:
        log: the delta log this catalog manages retention for.
        path: snapshot directory (default ``<log dir>/snapshots``).
        compact_bytes: un-folded log prefix size that triggers
            compaction in :meth:`maybe_compact`.
        retain_segments: folded segments to keep after GC (the catch-up
            tail for slightly-stale followers).
        retain_snapshots: snapshots to keep on disk.
        readonly: open for reading snapshots only — nothing on disk is
            created or modified (``record``/``maybe_compact`` raise),
            matching a read-only :class:`DeltaLog` (the ``serve
            --from-log`` path, which must not touch a directory a live
            builder owns — possibly on a read-only mount).  Columnar
            segments referenced by the catalog are checksum-verified at
            open, so a readonly consumer refuses a corrupt snapshot
            (:class:`~repro.errors.SegmentIntegrityError`) up front
            rather than serving half-decoded columns.
        snapshot_format: encoding :meth:`record` writes — ``"json"``
            (the default, human-inspectable, the byte-identity oracle)
            or ``"columnar"`` (packed segments,
            :mod:`repro.core.columnar`).  Reading dispatches on each
            catalog entry's recorded format, so a log's history may mix
            both and old JSON snapshots stay readable forever.
    """

    def __init__(self, log: DeltaLog, path: "str | os.PathLike | None" = None,
                 *, compact_bytes: int = 256 * 1024,
                 retain_segments: int = 1,
                 retain_snapshots: int = 2,
                 readonly: bool = False,
                 snapshot_format: str = "json") -> None:
        if compact_bytes <= 0:
            raise OntologyError("compact_bytes must be positive")
        if retain_snapshots <= 0:
            raise OntologyError("retain_snapshots must be positive")
        if snapshot_format not in SNAPSHOT_FORMATS:
            raise OntologyError(
                f"unknown snapshot format {snapshot_format!r} "
                f"(choose from {', '.join(SNAPSHOT_FORMATS)})")
        self._log = log
        self._readonly = readonly
        self._snapshot_format = snapshot_format
        self.path = pathlib.Path(path) if path is not None \
            else log.path / "snapshots"
        if not readonly:
            self.path.mkdir(parents=True, exist_ok=True)
        self._compact_bytes = compact_bytes
        self._retain_segments = retain_segments
        self._retain_snapshots = retain_snapshots
        self._gc_floor: "Callable[[], int | None] | None" = None
        self._entries: list[dict] = []
        self._load()

    def bind_gc_floor(self, provider: "Callable[[], int | None]") -> None:
        """Bind a GC floor provider (e.g. ``LogPublisher.follower_floor``):
        segment GC never drops past the version it returns, so registered
        followers keep a catch-up tail; ``None`` means no registered
        follower constrains GC."""
        self._gc_floor = provider

    def _gc_version(self, version: int) -> int:
        floor = self._gc_floor() if self._gc_floor is not None else None
        return version if floor is None else min(version, floor)

    def _load(self) -> None:
        path = self.path / _CATALOG
        if not self.path.is_dir() or not path.exists():
            return
        data = json.loads(path.read_text())
        if data.get("format") != CATALOG_FORMAT_VERSION:
            raise OntologyError(
                f"unsupported snapshot catalog format: {data.get('format')!r}")
        # Entries whose file vanished (interrupted prune) are dropped.
        self._entries = [entry for entry in data.get("snapshots", [])
                         if (self.path / entry["name"]).exists()]
        if self._readonly:
            # A readonly open is a consumer about to bootstrap: verify
            # every referenced columnar segment's footer checksum now so
            # corruption surfaces as a typed refusal at open, not a
            # decode error mid-bootstrap.
            from ..core.columnar import check_segment

            for entry in self._entries:
                if entry.get("format") == "columnar":
                    check_segment((self.path / entry["name"]).read_bytes())

    def _save(self) -> None:
        payload = {"format": CATALOG_FORMAT_VERSION,
                   "snapshots": self._entries}
        tmp = self.path / (_CATALOG + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        os.replace(tmp, self.path / _CATALOG)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def latest_version(self) -> int:
        """Stream version of the newest snapshot (0 when none exists)."""
        return self._entries[-1]["version"] if self._entries else 0

    def snapshots(self) -> "list[dict]":
        return [dict(entry) for entry in self._entries]

    def latest_entry(self) -> "dict | None":
        """Newest catalog entry (name/version/format) without loading
        the snapshot itself — the publisher uses this to pass a columnar
        segment through to a follower verbatim."""
        return dict(self._entries[-1]) if self._entries else None

    def read_segment(self, entry: dict) -> bytes:
        """Raw bytes of a columnar snapshot entry (pass-through serving:
        the consumer decodes and thereby checksum-verifies them)."""
        if entry.get("format") != "columnar":
            raise OntologyError(
                f"snapshot {entry.get('name')!r} is not a columnar segment")
        return (self.path / entry["name"]).read_bytes()

    def latest(self) -> "tuple[dict | None, int]":
        """Newest snapshot document and its version (``(None, 0)`` when
        the catalog is empty — bootstrap then replays the log from 0).
        A columnar entry is decoded to the identical snapshot dict (a
        corrupt segment raises
        :class:`~repro.errors.SegmentIntegrityError`)."""
        if not self._entries:
            return None, 0
        entry = self._entries[-1]
        if entry.get("format") == "columnar":
            from ..core.columnar import decode_store_segment

            data = decode_store_segment(self.read_segment(entry))
        else:
            data = json.loads((self.path / entry["name"]).read_text())
        return data, entry["version"]

    def unfolded_bytes(self) -> int:
        """Bytes of log segments holding deltas newer than the latest
        snapshot — the prefix a cold follower would have to replay on
        top of it."""
        latest = self.latest_version
        return sum(seg.size_bytes for seg in self._log.segments()
                   if seg.end_version > latest)

    def describe(self) -> dict:
        return {
            "path": str(self.path),
            "latest_version": self.latest_version,
            "snapshots": self.snapshots(),
            "unfolded_bytes": self.unfolded_bytes(),
            "compact_bytes": self._compact_bytes,
        }

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def record(self, store: OntologyStore) -> int:
        """Fold ``store`` into a snapshot now and GC folded segments.

        The store must be a replica of this log's stream (its version is
        the snapshot's position); recording an older-than-latest state
        is rejected.  Returns the snapshot's version.
        """
        if self._readonly:
            raise OntologyError("the snapshot catalog was opened read-only")
        version = store.version
        if version < self.latest_version:
            raise OntologyError(
                f"refusing to record a snapshot at version {version} "
                f"behind the catalog's latest {self.latest_version}"
            )
        if version == self.latest_version and self._entries:
            # Idempotent fold — but a registered follower may have
            # advanced since, so re-evaluate the delayed segment GC.
            self._log.drop_segments_before(self._gc_version(version),
                                           retain_tail=self._retain_segments)
            return version
        snapshot = store.compact()
        if self._snapshot_format == "columnar":
            from ..core.columnar import encode_store_segment

            name = f"snapshot-{version:012d}.rcs"
            tmp = self.path / (name + ".tmp")
            tmp.write_bytes(encode_store_segment(snapshot))
            entry = {"name": name, "version": version,
                     "format": "columnar"}
        else:
            name = f"snapshot-{version:012d}.json"
            tmp = self.path / (name + ".tmp")
            tmp.write_text(json.dumps(snapshot, indent=1, sort_keys=True)
                           + "\n")
            entry = {"name": name, "version": version}
        os.replace(tmp, self.path / name)
        self._entries.append(entry)
        pruned = self._entries[:-self._retain_snapshots]
        self._entries = self._entries[-self._retain_snapshots:]
        self._save()  # catalog first: a crash leaves unreferenced files
        for entry in pruned:
            (self.path / entry["name"]).unlink(missing_ok=True)
        self._log.drop_segments_before(self._gc_version(version),
                                       retain_tail=self._retain_segments)
        return version

    def maybe_compact(self, store: OntologyStore) -> "int | None":
        """Compact when the un-folded prefix crossed ``compact_bytes``;
        returns the new snapshot version, or ``None`` when below the
        threshold (or the store has nothing newer than the snapshot)."""
        if store.version <= self.latest_version:
            return None
        if self.unfolded_bytes() < self._compact_bytes:
            return None
        return self.record(store)
