"""LogFollower: snapshot-plus-tail recovery over a published delta log.

A follower holds an :class:`~repro.core.store.OntologyStore` replica
whose state always equals *snapshot + contiguous delta suffix* — the
invariant incremental view-maintenance systems assume.  It is fed
through a small client interface with two implementations:

* :class:`SyncLogClient` — a blocking TCP client for
  :class:`~repro.replication.publisher.LogPublisher` (length-prefixed
  JSON frames, the :mod:`repro.serving.rpc` wire layout); used by shard
  worker processes and standalone serving replicas;
* :class:`LocalLogClient` — the same interface served directly off
  in-process :class:`~repro.replication.log.DeltaLog` /
  :class:`~repro.replication.catalog.SnapshotCatalog` objects (the CLI's
  ``serve --from-log`` path, tests).

``bootstrap()`` cold-starts from the newest catalog snapshot plus the
log tail; ``poll()`` keeps the store current.  When the follower has
fallen behind the log's garbage-collected prefix, the fetch (or the
apply) raises :class:`~repro.errors.DeltaGapError`; ``poll()`` recovers
by re-bootstrapping from the newest snapshot — the follower's store
object is *replaced*, which is why consumers reach it through
:attr:`store` rather than holding the reference.
"""

from __future__ import annotations

import base64
import json
import socket
from typing import Any

from ..core.serialize import delta_from_dict
from ..core.store import OntologyDelta, OntologyStore
from ..errors import DeltaGapError, ReproError
from ..obs.recorder import get_recorder
from ..serving.rpc import _canonical_bytes, read_frame_sync, write_frame_sync
from .catalog import SnapshotCatalog
from .log import DeltaLog


class SyncLogClient:
    """Blocking client for a :class:`LogPublisher` (one request at a
    time over one connection — followers are sequential consumers).

    With a ``follower_id`` the client identifies itself on every fetch:
    the publisher tracks the position, and the snapshot catalog delays
    segment GC until this follower passed a segment (:meth:`register` /
    the publisher's GC floor).  ``close`` deregisters best-effort so a
    departed follower stops pinning the log.
    """

    def __init__(self, sock: socket.socket,
                 follower_id: "str | None" = None) -> None:
        self._sock = sock
        self._next_id = 0
        self.follower_id = follower_id

    @classmethod
    def connect(cls, host: str, port: int, timeout: float = 30.0,
                follower_id: "str | None" = None) -> "SyncLogClient":
        sock = socket.create_connection((host, port), timeout=timeout)
        return cls(sock, follower_id=follower_id)

    def _call(self, method: str, **kwargs) -> Any:
        request_id = self._next_id
        self._next_id += 1
        payload = _canonical_bytes(
            {"id": request_id, "method": method, "kwargs": kwargs})
        write_frame_sync(self._sock, payload)
        frame = read_frame_sync(self._sock)
        if frame is None:
            raise ReproError("log publisher closed the connection")
        body = json.loads(frame.decode("utf-8"))
        if body.get("id") != request_id:
            raise ReproError("log publisher response id mismatch")
        error = body.get("error")
        if error is not None:
            if error.get("type") == "DeltaGapError":
                raise DeltaGapError(error.get("message", "delta stream gap"))
            raise ReproError(
                f"log publisher error {error.get('type')}: "
                f"{error.get('message')}")
        return body["result"]

    # ------------------------------------------------------------------
    def fetch(self, since: int = 0,
              max_count: "int | None" = None) -> "list[OntologyDelta]":
        """Deltas advancing a consumer at ``since`` (may raise
        :class:`DeltaGapError` when that prefix was GC'd)."""
        kwargs = {"since": since, "max_count": max_count}
        if self.follower_id is not None:
            kwargs["follower"] = self.follower_id
        result = self._call("log_fetch", **kwargs)
        return [delta_from_dict(d) for d in result["deltas"]]

    def register(self, since: int = 0) -> None:
        """Register this follower's position with the publisher so the
        catalog's segment GC waits for it (requires ``follower_id``)."""
        if self.follower_id is None:
            raise ReproError("registering requires a follower_id")
        self._call("log_register", follower=self.follower_id, since=since)

    def forget(self, follower_id: str) -> None:
        """Deregister *another* follower by name — the janitor path: a
        supervisor reaping a crashed follower process clears its pin on
        the GC floor (the corpse can no longer send its own goodbye)."""
        self._call("log_forget", follower=follower_id)

    def wait(self, since: int = 0, timeout: float = 10.0,
             max_count: "int | None" = None) -> "list[OntologyDelta]":
        """Long-poll fetch: blocks server-side until the log grows past
        ``since`` or ``timeout`` lapses (then returns ``[]``)."""
        previous = self._sock.gettimeout()
        # The socket must outwait the server-side long poll.
        self._sock.settimeout(max(timeout * 2, timeout + 10.0))
        try:
            kwargs = {"since": since, "timeout": timeout,
                      "max_count": max_count}
            if self.follower_id is not None:
                kwargs["follower"] = self.follower_id
            result = self._call("log_wait", **kwargs)
        finally:
            self._sock.settimeout(previous)
        return [delta_from_dict(d) for d in result["deltas"]]

    def latest_snapshot(self) -> "tuple[dict | None, int]":
        """Newest snapshot + version for bootstrap.  Advertises columnar
        acceptance so a publisher with columnar segments ships the packed
        bytes (decoded — and checksum-verified — here); an old publisher
        rejects the unknown ``accept`` kwarg, so the client retries the
        plain form and gets the decoded-JSON snapshot instead."""
        try:
            result = self._call("log_snapshot", accept=["columnar"])
        except DeltaGapError:
            raise
        except ReproError:
            result = self._call("log_snapshot")
        if result.get("format") == "columnar" \
                and result.get("segment") is not None:
            from ..core.columnar import decode_store_segment

            segment = base64.b64decode(result["segment"])
            return decode_store_segment(segment), result["version"]
        return result["snapshot"], result["version"]

    def status(self) -> dict:
        return self._call("log_status")

    def close(self) -> None:
        if self.follower_id is not None:
            try:  # best-effort: stop pinning the log's GC floor
                self._call("log_forget", follower=self.follower_id)
            except Exception:
                pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "SyncLogClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class LocalLogClient:
    """The client interface served directly off in-process objects."""

    def __init__(self, log: DeltaLog,
                 catalog: "SnapshotCatalog | None" = None,
                 follower_id: "str | None" = None) -> None:
        self._log = log
        self._catalog = catalog
        # Interface parity with SyncLogClient; an in-process reader
        # shares the builder's log, so there is no GC floor to pin.
        self.follower_id = follower_id

    def register(self, since: int = 0) -> None:
        """No-op twin of :meth:`SyncLogClient.register`."""

    def forget(self, follower_id: str) -> None:
        """No-op twin of :meth:`SyncLogClient.forget`."""

    def fetch(self, since: int = 0,
              max_count: "int | None" = None) -> "list[OntologyDelta]":
        return self._log.read(since, max_count=max_count)

    def wait(self, since: int = 0, timeout: float = 10.0,
             max_count: "int | None" = None) -> "list[OntologyDelta]":
        # In-process there is no separate producer to wait on.
        if self._log.last_version <= since:
            return []
        return self.fetch(since, max_count=max_count)

    def latest_snapshot(self) -> "tuple[dict | None, int]":
        if self._catalog is None:
            return None, 0
        return self._catalog.latest()

    def status(self) -> dict:
        status = {"log": self._log.describe()}
        if self._catalog is not None:
            status["catalog"] = self._catalog.describe()
        return status

    def close(self) -> None:  # interface parity with SyncLogClient
        pass


class LogFollower:
    """An :class:`OntologyStore` replica fed from a published log.

    Attributes:
        bootstraps: times a store was (re)built from snapshot + tail.
        recoveries: times a :class:`DeltaGapError` forced a re-bootstrap
            (the follower had fallen behind the GC'd prefix).
        deltas_applied: tail batches applied across the follower's life.
    """

    def __init__(self, client) -> None:
        self._client = client
        self._store: "OntologyStore | None" = None
        self.bootstraps = 0
        self.recoveries = 0
        self.deltas_applied = 0

    # ------------------------------------------------------------------
    @property
    def store(self) -> OntologyStore:
        if self._store is None:
            self.bootstrap()
        return self._store

    @property
    def version(self) -> int:
        return self.store.version

    # ------------------------------------------------------------------
    def bootstrap(self) -> OntologyStore:
        """(Re)build the replica from catalog snapshot + log tail."""
        snapshot, version = self._client.latest_snapshot()
        tail = self._client.fetch(version if snapshot is not None else 0)
        self._store = OntologyStore.bootstrap(snapshot, tail)
        self.bootstraps += 1
        self.deltas_applied += len(tail)
        return self._store

    def poll(self, timeout: float = 0.0) -> int:
        """Apply new batches; returns how many were applied this call
        (including a recovery re-bootstrap's tail).

        With ``timeout > 0`` the fetch long-polls (subscribe semantics).
        A :class:`DeltaGapError` from the fetch or the apply — the log's
        retained prefix moved past this follower — triggers recovery by
        re-bootstrapping from the newest snapshot.
        """
        if self._store is None:
            self.bootstrap()
            return 0
        before = self.deltas_applied
        try:
            if timeout > 0:
                deltas = self._client.wait(self._store.version,
                                           timeout=timeout)
            else:
                deltas = self._client.fetch(self._store.version)
            for delta in deltas:
                if not DeltaGapError.check("follower", self._store.version,
                                           delta):
                    continue
                self._store.apply_delta(delta)
                self.deltas_applied += 1
        except DeltaGapError as exc:
            self.recoveries += 1
            get_recorder().record(
                "replication.gap_rebootstrap", "replication.follower",
                version=self._store.version, error=str(exc))
            self.bootstrap()
        return self.deltas_applied - before
